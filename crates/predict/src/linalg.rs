//! A small dense row-major matrix with exactly the operations the OLS
//! solver needs: transpose products and Gaussian elimination with partial
//! pivoting.

use std::fmt;

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from nested rows.
    ///
    /// # Panics
    ///
    /// Panics on empty input or ragged rows.
    #[must_use]
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        let mut m = Matrix::zeros(rows.len(), cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), cols, "ragged row {i}");
            m.data[i * cols..(i + 1) * cols].copy_from_slice(row);
        }
        m
    }

    /// The identity matrix of order `n`.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The Gram matrix `AᵀA` (symmetric, `cols × cols`).
    #[must_use]
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut sum = 0.0;
                for r in 0..self.rows {
                    sum += self[(r, i)] * self[(r, j)];
                }
                g[(i, j)] = sum;
                g[(j, i)] = sum;
            }
        }
        g
    }

    /// The product `Aᵀv` for a vector `v` with one entry per row.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != rows`.
    #[must_use]
    pub fn transpose_mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "vector length must equal row count");
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let vr = v[r];
            for c in 0..self.cols {
                out[c] += self[(r, c)] * vr;
            }
        }
        out
    }

    /// Adds `lambda` to every diagonal entry (ridge regularization).
    pub fn add_diagonal(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += lambda;
        }
    }

    /// Solves `A·x = b` for square `A` by Gaussian elimination with partial
    /// pivoting. Returns `None` when the system is numerically singular.
    ///
    /// # Panics
    ///
    /// Panics if `A` is not square or `b` has the wrong length.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs length must equal matrix order");
        let n = self.rows;
        let mut a = self.data.clone();
        let mut x = b.to_vec();

        for col in 0..n {
            // Partial pivot.
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-300 {
                return None;
            }
            if pivot_row != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot_row * n + c);
                }
                x.swap(col, pivot_row);
            }
            // Eliminate below.
            let pivot = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / pivot;
                // Exact-zero elimination is a no-op; an epsilon band would
                // wrongly skip small-but-real factors.
                // lint: allow(float-eq) — intentional exact-zero shortcut
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[r * n + c] -= factor * a[col * n + c];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut sum = x[col];
            for c in (col + 1)..n {
                sum -= a[col * n + c] * x[c];
            }
            let v = sum / a[col * n + col];
            if !v.is_finite() {
                return None;
            }
            x[col] = v;
        }
        Some(x)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    f.write_str(" ")?;
                }
                write!(f, "{:10.4}", self[(r, c)])?;
            }
            f.write_str("\n")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_is_identity() {
        let a = Matrix::identity(4);
        let b = vec![1.0, -2.0, 3.5, 0.0];
        assert_eq!(a.solve(&b).unwrap(), b);
    }

    #[test]
    fn solves_a_known_system() {
        // 2x + y = 5 ; x + 3y = 10  → x = 1, y = 3.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(a.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn gram_matrix_is_symmetric_psd_diagonal() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = a.gram();
        assert_eq!(g.rows(), 2);
        assert_eq!(g[(0, 1)], g[(1, 0)]);
        assert_eq!(g[(0, 0)], 1.0 + 9.0 + 25.0);
        assert_eq!(g[(1, 1)], 4.0 + 16.0 + 36.0);
    }

    #[test]
    fn transpose_mul_vec_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let out = a.transpose_mul_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(out, vec![9.0, 12.0]);
    }

    #[test]
    fn ridge_diagonal_makes_singular_solvable() {
        let mut g = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).gram();
        // The unridged gram matrix is singular; solving it may fail (the
        // result is unspecified — only that it must not panic).
        let _ = g.solve(&[1.0, 2.0]);
        g.add_diagonal(1e-6);
        assert!(g.solve(&[1.0, 2.0]).is_some());
    }

    #[test]
    #[should_panic(expected = "square")]
    fn solve_rejects_non_square() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let _ = a.solve(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
