//! Recursive Feature Elimination (§4.2).
//!
//! "Given an external estimator that assigns weights to features (e.g., a
//! linear regression model) the goal of RFE is to select features by
//! recursively considering smaller and smaller sets of features. First,
//! the estimator is trained on the initial set of features, and weights
//! are assigned to each one of them. Then, features whose absolute weights
//! are the smallest are pruned from the current set of features. This
//! procedure is recursively repeated on the pruned set until the desired
//! number of features to select is eventually reached."

use crate::ols::{FitError, LinearRegression};
use serde::{Deserialize, Serialize};

/// The result of an RFE run: the surviving feature indices (in original
/// column order) and a model fitted on exactly those features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecursiveFeatureElimination {
    selected: Vec<usize>,
    model: LinearRegression,
}

impl RecursiveFeatureElimination {
    /// Runs RFE down to `keep` features, removing `step` features per
    /// round (at least one; never past `keep`).
    ///
    /// # Errors
    ///
    /// Propagates [`FitError`] from the underlying regressions; also
    /// rejects `keep == 0` or `keep` exceeding the feature count as
    /// [`FitError::ShapeMismatch`].
    pub fn fit(x: &[Vec<f64>], y: &[f64], keep: usize, step: usize) -> Result<Self, FitError> {
        if x.is_empty() {
            return Err(FitError::EmptyDataset);
        }
        let p = x[0].len();
        if keep == 0 || keep > p {
            return Err(FitError::ShapeMismatch);
        }
        let step = step.max(1);

        let mut remaining: Vec<usize> = (0..p).collect();
        loop {
            let sub: Vec<Vec<f64>> = x
                .iter()
                .map(|row| remaining.iter().map(|&j| row[j]).collect())
                .collect();
            let model = LinearRegression::fit(&sub, y)?;
            if remaining.len() == keep {
                return Ok(RecursiveFeatureElimination {
                    selected: remaining,
                    model,
                });
            }
            // Rank by |standardized weight| ascending; drop the weakest.
            let weights = model.standardized_coefficients();
            let mut ranked: Vec<(usize, f64)> = weights
                .iter()
                .enumerate()
                .map(|(k, w)| (k, w.abs()))
                .collect();
            ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
            let drop_count = step.min(remaining.len() - keep);
            let mut to_drop: Vec<usize> = ranked[..drop_count].iter().map(|(k, _)| *k).collect();
            to_drop.sort_unstable_by(|a, b| b.cmp(a));
            for k in to_drop {
                remaining.remove(k);
            }
        }
    }

    /// The selected feature indices, in original column order.
    #[must_use]
    pub fn selected_features(&self) -> &[usize] {
        &self.selected
    }

    /// The model fitted on the selected features.
    #[must_use]
    pub fn model(&self) -> &LinearRegression {
        &self.model
    }

    /// Projects a full feature row onto the selected features.
    #[must_use]
    pub fn project(&self, features: &[f64]) -> Vec<f64> {
        self.selected.iter().map(|&j| features[j]).collect()
    }

    /// Predicts from a *full* feature row (projection + model).
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.model.predict(&self.project(features))
    }

    /// Predicts many full feature rows.
    #[must_use]
    pub fn predict_many(&self, x: &[Vec<f64>]) -> Vec<f64> {
        x.iter().map(|r| self.predict(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::r2_score;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// y depends on features 2 and 5; the other 8 are noise.
    fn noisy_dataset(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let row: Vec<f64> = (0..10).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let target = 5.0 * row[2] - 3.0 * row[5] + 0.01 * rng.gen_range(-1.0..1.0);
            x.push(row);
            y.push(target);
        }
        (x, y)
    }

    #[test]
    fn rfe_finds_the_informative_features() {
        let (x, y) = noisy_dataset(200, 1);
        let rfe = RecursiveFeatureElimination::fit(&x, &y, 2, 1).unwrap();
        assert_eq!(rfe.selected_features(), &[2, 5]);
    }

    #[test]
    fn rfe_with_larger_steps_matches() {
        let (x, y) = noisy_dataset(200, 2);
        let rfe = RecursiveFeatureElimination::fit(&x, &y, 2, 3).unwrap();
        assert_eq!(rfe.selected_features(), &[2, 5]);
    }

    #[test]
    fn reduced_model_predicts_well_from_full_rows() {
        let (x, y) = noisy_dataset(150, 3);
        let rfe = RecursiveFeatureElimination::fit(&x, &y, 2, 1).unwrap();
        let pred = rfe.predict_many(&x);
        assert!(r2_score(&y, &pred) > 0.99);
    }

    #[test]
    fn keep_equals_p_is_a_plain_fit() {
        let (x, y) = noisy_dataset(50, 4);
        let rfe = RecursiveFeatureElimination::fit(&x, &y, 10, 1).unwrap();
        assert_eq!(rfe.selected_features().len(), 10);
    }

    #[test]
    fn invalid_keep_is_rejected() {
        let (x, y) = noisy_dataset(20, 5);
        assert!(RecursiveFeatureElimination::fit(&x, &y, 0, 1).is_err());
        assert!(RecursiveFeatureElimination::fit(&x, &y, 11, 1).is_err());
        assert!(RecursiveFeatureElimination::fit(&[], &[], 1, 1).is_err());
    }

    #[test]
    fn selection_is_order_preserving() {
        let (x, y) = noisy_dataset(120, 6);
        let rfe = RecursiveFeatureElimination::fit(&x, &y, 4, 1).unwrap();
        let s = rfe.selected_features();
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }
}
