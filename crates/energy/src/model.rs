//! The relative power/performance laws of §5 and Figure 9.
//!
//! The figure's coordinates follow directly from dynamic CMOS power,
//! `P ∝ V²·f`, summed over the four PMDs sharing one rail but clocking
//! independently, and throughput proportional to the mean PMD clock:
//!
//! * 915 mV, all PMDs at 2.4 GHz → `(915/980)² = 87.2%` power, 100% perf,
//! * 900 mV, one PMD at 1.2 GHz → `(900/980)²·0.875 = 73.8%` power,
//! * 885 mV, two at 1.2 GHz → `61.2%`, * 875 mV, three → `49.8%`,
//! * 760 mV, all four → `(760/980)²·0.5 = 30.1%` power — i.e. the §5 text's
//!   "69.9% energy savings" (the figure's printed 37.6% is inconsistent
//!   with its own other points; we follow the text — see EXPERIMENTS.md).

use margins_sim::freq::MAX_FREQ;
use margins_sim::topology::NUM_PMDS;
use margins_sim::volt::PMD_NOMINAL;
use margins_sim::{Megahertz, Millivolts};

/// Chip power at (`voltage`, per-PMD `freqs`) relative to nominal V/F on
/// all PMDs (dynamic-power law of §5).
///
/// # Panics
///
/// Panics if `freqs` is empty.
#[must_use]
pub fn relative_power(voltage: Millivolts, freqs: &[Megahertz]) -> f64 {
    assert!(!freqs.is_empty(), "at least one PMD frequency required");
    let v2 = voltage.ratio_to(PMD_NOMINAL).powi(2);
    let f_mean = freqs.iter().map(|f| f.ratio_to_max()).sum::<f64>() / freqs.len() as f64;
    v2 * f_mean
}

/// Multiprogram throughput relative to all PMDs at 2.4 GHz.
///
/// # Panics
///
/// Panics if `freqs` is empty.
#[must_use]
pub fn relative_performance(freqs: &[Megahertz]) -> f64 {
    assert!(!freqs.is_empty(), "at least one PMD frequency required");
    freqs.iter().map(|f| f.ratio_to_max()).sum::<f64>() / freqs.len() as f64
}

/// Energy savings corresponding to a relative power level.
#[must_use]
pub fn energy_savings(relative_power: f64) -> f64 {
    1.0 - relative_power
}

/// The §5 headline helper: savings from pure undervolting at full clocks.
///
/// ```
/// use margins_energy::model::undervolt_savings;
/// use margins_sim::Millivolts;
/// // "the most robust core could have 19.4%" (leslie3d at 880 mV).
/// assert!((undervolt_savings(Millivolts::new(880)) - 0.194).abs() < 0.001);
/// ```
#[must_use]
pub fn undervolt_savings(voltage: Millivolts) -> f64 {
    energy_savings(voltage.ratio_to(PMD_NOMINAL).powi(2))
}

/// All four PMDs at the same frequency.
#[must_use]
pub fn uniform_freqs(f: Megahertz) -> [Megahertz; NUM_PMDS] {
    [f; NUM_PMDS]
}

/// All four PMDs at 2.4 GHz.
#[must_use]
pub fn full_speed_freqs() -> [Megahertz; NUM_PMDS] {
    uniform_freqs(MAX_FREQ)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed(full: usize) -> Vec<Megahertz> {
        let mut v = vec![MAX_FREQ; full];
        v.extend(vec![Megahertz::new(1200); NUM_PMDS - full]);
        v
    }

    #[test]
    fn figure9_power_points() {
        // (voltage, #full-speed PMDs, expected relative power %)
        let cases = [
            (980, 4, 100.0),
            (915, 4, 87.2),
            (900, 3, 73.8),
            (885, 2, 61.2),
            (875, 1, 49.8),
            (760, 0, 30.1),
        ];
        for (mv, full, expected) in cases {
            let p = relative_power(Millivolts::new(mv), &mixed(full)) * 100.0;
            assert!(
                (p - expected).abs() < 0.15,
                "{mv}mV/{full} full PMDs: {p:.1}% vs expected {expected}%"
            );
        }
    }

    #[test]
    fn figure9_performance_points() {
        let cases = [(4, 1.0), (3, 0.875), (2, 0.75), (1, 0.625), (0, 0.5)];
        for (full, expected) in cases {
            assert!((relative_performance(&mixed(full)) - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn headline_savings_numbers() {
        // §5: 880 mV → 19.4%; 915 mV → 12.8%; "69.9% energy savings" at
        // 760 mV + 1.2 GHz everywhere.
        assert!((undervolt_savings(Millivolts::new(880)) - 0.194).abs() < 0.001);
        assert!((undervolt_savings(Millivolts::new(915)) - 0.128).abs() < 0.001);
        let p = relative_power(Millivolts::new(760), &mixed(0));
        assert!((energy_savings(p) - 0.699).abs() < 0.001);
    }

    #[test]
    fn abstract_numbers_of_the_paper() {
        // "on average, 19.4% energy saving can be achieved without
        // compromising the performance, while with 25% performance
        // reduction, the energy saving raises to 38.8%."
        let p = relative_power(Millivolts::new(885), &mixed(2));
        assert!((energy_savings(p) - 0.388).abs() < 0.001);
        assert!((relative_performance(&mixed(2)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn savings_monotone_in_voltage() {
        let f = full_speed_freqs();
        let mut last = -1.0;
        for mv in (760..=980).step_by(5) {
            let s = energy_savings(relative_power(Millivolts::new(mv), &f));
            assert!(s > -1e-12);
            if last >= 0.0 {
                assert!(s <= last + 1e-12, "savings must shrink as voltage rises");
            }
            last = s;
        }
    }
}
