//! Task-to-core scheduling (§5).
//!
//! "The predictor … can also guide task scheduling so that tasks are
//! assigned first to more robust cores to obtain higher power savings."
//!
//! Because the shared rail must satisfy the *maximum* Vmin over all
//! (core, workload) pairs, and per-pair Vmin decomposes approximately into
//! core offset + workload demand, pairing the most demanding workloads
//! with the most robust cores minimizes that maximum.

use crate::vmin::VminTable;
use margins_sim::{CoreId, Millivolts};
use serde::{Deserialize, Serialize};

/// One scheduled task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// The core running the task.
    pub core: CoreId,
    /// The workload name.
    pub workload: String,
}

/// The robust-first scheduler of §5.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Scheduler;

impl Scheduler {
    /// A scheduler.
    #[must_use]
    pub fn new() -> Self {
        Scheduler
    }

    /// Assigns `workloads` to cores, most demanding workload onto the most
    /// robust core. Returns `None` when the table lacks the data to rank
    /// (a workload unknown on every ranked core) or when there are more
    /// workloads than ranked cores.
    #[must_use]
    pub fn assign_robust_first(
        &self,
        workloads: &[String],
        table: &VminTable,
    ) -> Option<Vec<Assignment>> {
        let cores = table.cores_by_robustness();
        if workloads.len() > cores.len() {
            return None;
        }
        // Demand of a workload: its mean Vmin across ranked cores.
        let mut demands: Vec<(usize, f64)> = Vec::with_capacity(workloads.len());
        for (i, w) in workloads.iter().enumerate() {
            let vs: Vec<f64> = cores
                .iter()
                .filter_map(|c| table.get(*c, w).map(Millivolts::as_f64))
                .collect();
            if vs.is_empty() {
                return None;
            }
            demands.push((i, vs.iter().sum::<f64>() / vs.len() as f64));
        }
        demands.sort_by(|a, b| b.1.total_cmp(&a.1));
        Some(
            demands
                .into_iter()
                .zip(cores)
                .map(|((i, _), core)| Assignment {
                    core,
                    workload: workloads[i].clone(),
                })
                .collect(),
        )
    }

    /// A naive in-order assignment (task k on core k) — the baseline the
    /// robust-first policy is compared against.
    #[must_use]
    pub fn assign_in_order(&self, workloads: &[String]) -> Vec<Assignment> {
        workloads
            .iter()
            .enumerate()
            .map(|(i, w)| Assignment {
                core: CoreId::new((i % margins_sim::topology::NUM_CORES) as u8),
                workload: w.clone(),
            })
            .collect()
    }
}

/// The binding constraint: the maximum Vmin over all assignments, i.e. the
/// lowest voltage the shared rail may take with every core at full speed.
#[must_use]
pub fn binding_vmin(assignments: &[Assignment], table: &VminTable) -> Option<Millivolts> {
    assignments
        .iter()
        .map(|a| table.get(a.core, &a.workload))
        .collect::<Option<Vec<_>>>()
        .and_then(|vs| vs.into_iter().max())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic table with additive structure: Vmin = core offset +
    /// workload demand.
    fn table() -> VminTable {
        let mut t = VminTable::new();
        let offsets = [(0u8, 20u32), (2, 10), (4, 0), (6, 5)];
        let demands = [("heavy", 900u32), ("mid", 880), ("light", 860)];
        for (core, off) in offsets {
            for (w, base) in demands {
                t.insert(CoreId::new(core), w, Millivolts::new(base + off));
            }
        }
        t
    }

    #[test]
    fn robust_first_pairs_heavy_with_robust() {
        let t = table();
        let workloads: Vec<String> = ["light", "heavy", "mid"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let a = Scheduler::new()
            .assign_robust_first(&workloads, &t)
            .unwrap();
        // Most robust core is 4 (offset 0); it must take "heavy".
        let heavy = a.iter().find(|x| x.workload == "heavy").unwrap();
        assert_eq!(heavy.core, CoreId::new(4));
        // Binding Vmin: heavy@4 = 900, mid@6 = 885, light@2 = 870 → 900.
        assert_eq!(binding_vmin(&a, &t), Some(Millivolts::new(900)));
    }

    #[test]
    fn robust_first_beats_in_order() {
        let t = table();
        let workloads: Vec<String> = ["light", "heavy", "mid"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let sched = Scheduler::new();
        let smart = sched.assign_robust_first(&workloads, &t).unwrap();
        // Adversarial in-order: heavy lands on the most sensitive core 0.
        let naive = vec![
            Assignment {
                core: CoreId::new(4),
                workload: "light".into(),
            },
            Assignment {
                core: CoreId::new(0),
                workload: "heavy".into(),
            },
            Assignment {
                core: CoreId::new(2),
                workload: "mid".into(),
            },
        ];
        let smart_v = binding_vmin(&smart, &t).unwrap();
        let naive_v = binding_vmin(&naive, &t).unwrap();
        assert!(smart_v < naive_v, "{smart_v} vs {naive_v}");
    }

    #[test]
    fn too_many_tasks_or_unknown_workloads_fail() {
        let t = table();
        let sched = Scheduler::new();
        let many: Vec<String> = (0..5).map(|i| format!("w{i}")).collect();
        assert!(sched.assign_robust_first(&many, &t).is_none());
        assert!(sched
            .assign_robust_first(&["mystery".to_owned()], &t)
            .is_none());
    }

    #[test]
    fn binding_vmin_requires_complete_table() {
        let t = table();
        let a = vec![Assignment {
            core: CoreId::new(1), // not in table
            workload: "heavy".into(),
        }];
        assert_eq!(binding_vmin(&a, &t), None);
    }
}
