//! Energy/performance tradeoff analysis — §5 of the paper.
//!
//! The X-Gene 2 has a *single* voltage domain for all four PMDs but
//! *per-PMD* frequencies. System software therefore:
//!
//! 1. sets the shared rail to the **maximum** safe Vmin across everything
//!    currently scheduled ("the predictor sets the voltage according to the
//!    workload run on the most sensitive PMD"),
//! 2. can **assign tasks to robust cores first** to lower that maximum
//!    ([`schedule`]),
//! 3. can **drop weak PMDs to 1.2 GHz**, whose divided clock regime is safe
//!    down to 760 mV, trading their performance for a deeper shared rail —
//!    the staircase of Figure 9 ([`tradeoff`]).
//!
//! [`model`] holds the relative power/performance laws behind the paper's
//! numbers (12.8% / 19.4% / 38.8% / 69.9% savings); [`vmin`] holds the
//! per-(core, workload) safe-voltage table feeding the [`governor`]; and
//! [`predictor`] is the §4.4 online flow — a trained severity model
//! answering "how low may the rail go for this workload under this
//! severity budget?".
//!
//! # Example
//!
//! ```
//! use margins_energy::model::{relative_performance, relative_power, energy_savings};
//! use margins_sim::{Megahertz, Millivolts};
//!
//! // Figure 9, second point: 900 mV with one PMD dropped to 1.2 GHz.
//! let freqs = [Megahertz::new(2400), Megahertz::new(2400),
//!              Megahertz::new(2400), Megahertz::new(1200)];
//! let p = relative_power(Millivolts::new(900), &freqs);
//! assert!((p - 0.738).abs() < 0.001);
//! assert!((relative_performance(&freqs) - 0.875).abs() < 1e-12);
//! assert!((energy_savings(p) - 0.262).abs() < 0.001);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod governor;
pub mod model;
pub mod predictor;
pub mod schedule;
pub mod tradeoff;
pub mod vmin;

pub use governor::{Governor, GovernorDecision, Policy};
pub use predictor::OnlinePredictor;
pub use schedule::{Assignment, Scheduler};
pub use tradeoff::{pareto_curve, TradeoffPoint};
pub use vmin::VminTable;
