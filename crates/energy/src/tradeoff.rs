//! The Figure 9 staircase: progressively dropping the weakest PMDs to
//! 1.2 GHz unlocks deeper shared-rail undervolting.

use crate::model::{energy_savings, relative_performance, relative_power};
use crate::schedule::Assignment;
use crate::vmin::VminTable;
use margins_sim::freq::MAX_FREQ;
use margins_sim::topology::NUM_PMDS;
use margins_sim::volt::PMD_NOMINAL;
use margins_sim::{Megahertz, Millivolts, PmdId};
use serde::{Deserialize, Serialize};

/// The divided-regime safe voltage: 760 mV on every core (§3.2).
pub const DIVIDED_SAFE: Millivolts = Millivolts::new(760);

/// One point of the energy/performance staircase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeoffPoint {
    /// Human-readable description.
    pub label: String,
    /// Shared-rail voltage.
    pub voltage: Millivolts,
    /// Per-PMD frequency.
    pub freqs: [Megahertz; NUM_PMDS],
    /// Power relative to nominal V/F.
    pub relative_power: f64,
    /// Throughput relative to all-full-speed.
    pub relative_performance: f64,
    /// `1 − relative_power`.
    pub energy_savings: f64,
}

/// Builds the Figure 9 Pareto staircase for a set of assignments.
///
/// Point 0 is nominal (980 mV, all PMDs full speed). Point 1 undervolts to
/// the binding Vmin with no performance loss. Each further point drops the
/// currently *binding* PMD (the one whose worst workload pins the rail) to
/// 1.2 GHz — whose divided regime is safe at 760 mV — and re-tightens the
/// rail. Returns `None` when the table lacks a Vmin for some assignment.
#[must_use]
pub fn pareto_curve(assignments: &[Assignment], table: &VminTable) -> Option<Vec<TradeoffPoint>> {
    // Per-PMD full-speed constraint: max Vmin over its assigned workloads.
    let mut pmd_constraint: [Option<Millivolts>; NUM_PMDS] = [None; NUM_PMDS];
    for a in assignments {
        let v = table.get(a.core, &a.workload)?;
        let slot = &mut pmd_constraint[a.core.pmd().index()];
        *slot = Some(slot.map_or(v, |prev| prev.max(v)));
    }

    let mut full_speed: Vec<PmdId> = PmdId::all()
        .filter(|p| pmd_constraint[p.index()].is_some())
        .collect();
    let idle: Vec<PmdId> = PmdId::all()
        .filter(|p| pmd_constraint[p.index()].is_none())
        .collect();

    let freqs_for = |full: &[PmdId]| {
        let mut f = [Megahertz::new(1200); NUM_PMDS];
        for p in full {
            f[p.index()] = MAX_FREQ;
        }
        // PMDs with nothing scheduled idle at the bottom clock; they cost
        // performance nothing in the multiprogram metric but we keep the
        // standard denominator of Figure 9 (all four PMDs).
        for p in &idle {
            f[p.index()] = Megahertz::new(300);
        }
        f
    };

    let point = |label: String, voltage: Millivolts, full: &[PmdId]| {
        let freqs = freqs_for(full);
        // Power/performance are normalized over the *loaded* PMDs, like the
        // paper's Figure 9 (all four loaded there); idle PMDs are parked and
        // excluded from both numerator and denominator.
        let loaded: Vec<Megahertz> = PmdId::all()
            .filter(|p| pmd_constraint[p.index()].is_some())
            .map(|p| freqs[p.index()])
            .collect();
        let p = relative_power(voltage, &loaded);
        TradeoffPoint {
            label,
            voltage,
            freqs,
            relative_power: p,
            relative_performance: relative_performance(&loaded),
            energy_savings: energy_savings(p),
        }
    };

    let binding = |full: &[PmdId]| -> Millivolts {
        full.iter()
            .filter_map(|p| pmd_constraint[p.index()])
            .max()
            .unwrap_or(DIVIDED_SAFE)
            .max(DIVIDED_SAFE)
    };

    let mut points = Vec::with_capacity(full_speed.len() + 2);
    points.push(point("nominal".into(), PMD_NOMINAL, &full_speed));
    loop {
        let v = binding(&full_speed);
        let label = if full_speed.is_empty() {
            "all PMDs at 1.2GHz".to_owned()
        } else {
            format!("{} PMD(s) at 2.4GHz", full_speed.len())
        };
        points.push(point(label, v, &full_speed));
        // Drop the binding PMD (largest constraint) if any remain.
        let Some((k, _)) = full_speed
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| pmd_constraint[p.index()])
        else {
            break;
        };
        full_speed.remove(k);
    }
    Some(points)
}

/// The §6 "finer-grained voltage domains" counterfactual: the savings
/// available if every PMD had its own rail (each pinned at its own binding
/// Vmin) instead of sharing one rail pinned by the weakest PMD.
///
/// "Our characterization study shows that the coarse-grained voltage
/// domains design of X-Gene 2 … reduces the potential of energy savings
/// since the voltage value of the domain is determined by its weakest
/// core. If each PMD was designed to operate on a separate voltage domain
/// … more aggressive voltage scaling (and energy savings) would have been
/// possible." (§6)
///
/// Returns `(shared-rail point, per-PMD-rails point)` at full speed, or
/// `None` when the table lacks a Vmin for some assignment.
#[must_use]
pub fn per_pmd_rails_comparison(
    assignments: &[Assignment],
    table: &VminTable,
) -> Option<(TradeoffPoint, TradeoffPoint)> {
    let mut pmd_constraint: [Option<Millivolts>; NUM_PMDS] = [None; NUM_PMDS];
    for a in assignments {
        let v = table.get(a.core, &a.workload)?;
        let slot = &mut pmd_constraint[a.core.pmd().index()];
        *slot = Some(slot.map_or(v, |prev| prev.max(v)));
    }
    let loaded: Vec<Millivolts> = pmd_constraint.iter().flatten().copied().collect();
    if loaded.is_empty() {
        return None;
    }

    let shared_v = *loaded.iter().max()?;
    let full = vec![MAX_FREQ; loaded.len()];
    let shared_power = relative_power(shared_v, &full);
    let shared = TradeoffPoint {
        label: "shared rail (stock)".into(),
        voltage: shared_v,
        freqs: [MAX_FREQ; NUM_PMDS],
        relative_power: shared_power,
        relative_performance: 1.0,
        energy_savings: energy_savings(shared_power),
    };

    // Per-PMD rails: each loaded PMD at its own binding Vmin.
    let per_pmd_power = loaded
        .iter()
        .map(|v| relative_power(*v, &[MAX_FREQ]))
        .sum::<f64>()
        / loaded.len() as f64;
    let per_pmd = TradeoffPoint {
        label: "per-PMD rails (§6)".into(),
        voltage: shared_v, // the worst rail still sits here
        freqs: [MAX_FREQ; NUM_PMDS],
        relative_power: per_pmd_power,
        relative_performance: 1.0,
        energy_savings: energy_savings(per_pmd_power),
    };
    Some((shared, per_pmd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use margins_sim::CoreId;

    /// A table shaped like the paper's Figure 9 workload: eight benchmarks
    /// on eight cores with per-PMD worst constraints 915/900/885/875.
    fn fig9_table() -> (Vec<Assignment>, VminTable) {
        let mut t = VminTable::new();
        let data = [
            (0u8, "leslie3d", 915u32),
            (1, "bwaves", 910),
            (2, "cactusADM", 900),
            (3, "milc", 890),
            (4, "dealII", 870),
            (5, "gromacs", 875),
            (6, "namd", 885),
            (7, "mcf", 865),
        ];
        let mut assignments = Vec::new();
        for (core, wl, v) in data {
            t.insert(CoreId::new(core), wl, Millivolts::new(v));
            assignments.push(Assignment {
                core: CoreId::new(core),
                workload: wl.to_owned(),
            });
        }
        (assignments, t)
    }

    #[test]
    fn staircase_shape_matches_figure9() {
        let (assignments, table) = fig9_table();
        let points = pareto_curve(&assignments, &table).unwrap();
        // nominal + 4 full-speed levels + all-divided = 6 points.
        assert_eq!(points.len(), 6);
        // Per-PMD constraints: PMD0=915, PMD1=900, PMD2=875, PMD3=885 —
        // the staircase voltages are exactly Figure 9's 915/900/885/875/760.
        assert_eq!(points[0].voltage, PMD_NOMINAL);
        assert_eq!(points[1].voltage, Millivolts::new(915));
        assert_eq!(points[2].voltage, Millivolts::new(900));
        assert_eq!(points[3].voltage, Millivolts::new(885));
        assert_eq!(points[4].voltage, Millivolts::new(875));
        assert_eq!(points[5].voltage, DIVIDED_SAFE);
        // Performance steps down by 12.5% per dropped PMD.
        let perfs: Vec<f64> = points.iter().map(|p| p.relative_performance).collect();
        assert_eq!(perfs[0], 1.0);
        assert_eq!(perfs[1], 1.0);
        assert!((perfs[2] - 0.875).abs() < 1e-12);
        assert!((perfs[5] - 0.5).abs() < 1e-12);
        // Savings strictly increase along the staircase.
        for w in points.windows(2) {
            assert!(w[1].energy_savings > w[0].energy_savings - 1e-12);
        }
    }

    #[test]
    fn binding_pmd_is_dropped_first() {
        let (assignments, table) = fig9_table();
        let points = pareto_curve(&assignments, &table).unwrap();
        // After the first drop, PMD0 (cores 0/1: 915/910) must be at 1.2GHz.
        let freqs = points[2].freqs;
        assert_eq!(freqs[0], Megahertz::new(1200));
        assert_eq!(freqs[1], MAX_FREQ);
    }

    #[test]
    fn missing_entry_yields_none() {
        let (mut assignments, table) = fig9_table();
        assignments.push(Assignment {
            core: CoreId::new(0),
            workload: "unknown".into(),
        });
        assert!(pareto_curve(&assignments, &table).is_none());
    }

    #[test]
    fn per_pmd_rails_beat_the_shared_rail() {
        let (assignments, table) = fig9_table();
        let (shared, per_pmd) = per_pmd_rails_comparison(&assignments, &table).unwrap();
        assert!(per_pmd.energy_savings > shared.energy_savings);
        assert_eq!(shared.relative_performance, 1.0);
        assert_eq!(per_pmd.relative_performance, 1.0);
        // Shared rail pinned at 915 mV → 12.8% savings; per-PMD rails at
        // (915, 900, 875, 885) → mean of the four V² terms.
        assert!((shared.energy_savings - 0.128).abs() < 0.001);
        let expected = 1.0
            - (915f64.powi(2) + 900f64.powi(2) + 875f64.powi(2) + 885f64.powi(2))
                / (4.0 * 980f64.powi(2));
        assert!((per_pmd.energy_savings - expected).abs() < 1e-9);
    }

    #[test]
    fn partially_loaded_chip_keeps_idle_pmds_parked() {
        let mut t = VminTable::new();
        t.insert(CoreId::new(0), "solo", Millivolts::new(905));
        let a = vec![Assignment {
            core: CoreId::new(0),
            workload: "solo".into(),
        }];
        let points = pareto_curve(&a, &t).unwrap();
        // nominal + one full-speed level + all-divided.
        assert_eq!(points.len(), 3);
        assert_eq!(points[1].voltage, Millivolts::new(905));
        // Idle PMDs parked at 300 MHz in every point.
        for p in &points {
            assert_eq!(p.freqs[2], Megahertz::new(300));
        }
        assert_eq!(points[2].voltage, DIVIDED_SAFE);
    }
}
