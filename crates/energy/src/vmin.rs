//! The per-(core, workload) safe-voltage table feeding the governor.
//!
//! Entries come either from offline characterization (Figure 4 data via
//! `margins-core`) or from the online §4 prediction models; the governor
//! does not care which.

use margins_core::regions::CharacterizationResult;
use margins_sim::{CoreId, Millivolts};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A table of safe Vmin values per (core, workload).
///
/// Serializes as a flat list of `{core, workload, vmin}` entries so the
/// archived artifact is valid JSON (tuple map keys are not).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
#[serde(into = "Vec<VminEntry>", from = "Vec<VminEntry>")]
pub struct VminTable {
    entries: BTreeMap<(u8, String), Millivolts>,
}

/// The serialized form of one [`VminTable`] entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VminEntry {
    /// Core index (0–7).
    pub core: u8,
    /// Workload name.
    pub workload: String,
    /// Safe Vmin.
    pub vmin: Millivolts,
}

impl From<VminTable> for Vec<VminEntry> {
    fn from(table: VminTable) -> Self {
        table
            .entries
            .into_iter()
            .map(|((core, workload), vmin)| VminEntry {
                core,
                workload,
                vmin,
            })
            .collect()
    }
}

impl From<Vec<VminEntry>> for VminTable {
    fn from(entries: Vec<VminEntry>) -> Self {
        VminTable {
            entries: entries
                .into_iter()
                .map(|e| ((e.core, e.workload), e.vmin))
                .collect(),
        }
    }
}

impl VminTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        VminTable::default()
    }

    /// Inserts/overwrites an entry, returning the previous value if any.
    pub fn insert(
        &mut self,
        core: CoreId,
        workload: impl Into<String>,
        vmin: Millivolts,
    ) -> Option<Millivolts> {
        self.entries
            .insert((core.index() as u8, workload.into()), vmin)
    }

    /// Looks an entry up.
    #[must_use]
    pub fn get(&self, core: CoreId, workload: &str) -> Option<Millivolts> {
        self.entries
            .get(&(core.index() as u8, workload.to_owned()))
            .copied()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Imports every measured safe Vmin from a characterization result
    /// (`ref`-dataset entries keyed by benchmark name).
    #[must_use]
    pub fn from_characterization(result: &CharacterizationResult) -> Self {
        let mut table = VminTable::new();
        for s in &result.summaries {
            if let Some(v) = s.safe_vmin {
                table.insert(s.core, s.program.clone(), v);
            }
        }
        table
    }

    /// Mean Vmin of a core across all its workloads — the robustness
    /// ranking used by robust-first scheduling (§5). Lower is more robust.
    #[must_use]
    pub fn core_mean_vmin(&self, core: CoreId) -> Option<f64> {
        let values: Vec<f64> = self
            .entries
            .iter()
            .filter(|((c, _), _)| usize::from(*c) == core.index())
            .map(|(_, v)| v.as_f64())
            .collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }

    /// Cores present in the table, ordered most-robust first.
    #[must_use]
    pub fn cores_by_robustness(&self) -> Vec<CoreId> {
        let mut cores: Vec<(CoreId, f64)> = CoreId::all()
            .filter_map(|c| self.core_mean_vmin(c).map(|v| (c, v)))
            .collect();
        cores.sort_by(|a, b| a.1.total_cmp(&b.1));
        cores.into_iter().map(|(c, _)| c).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut t = VminTable::new();
        assert!(t.is_empty());
        assert_eq!(
            t.insert(CoreId::new(0), "bwaves", Millivolts::new(905)),
            None
        );
        assert_eq!(
            t.insert(CoreId::new(0), "bwaves", Millivolts::new(910)),
            Some(Millivolts::new(905))
        );
        assert_eq!(t.get(CoreId::new(0), "bwaves"), Some(Millivolts::new(910)));
        assert_eq!(t.get(CoreId::new(1), "bwaves"), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn robustness_ranking_orders_by_mean_vmin() {
        let mut t = VminTable::new();
        for (core, v) in [(0u8, 905), (4, 880), (2, 895)] {
            t.insert(CoreId::new(core), "a", Millivolts::new(v));
            t.insert(CoreId::new(core), "b", Millivolts::new(v - 10));
        }
        let order = t.cores_by_robustness();
        assert_eq!(order, vec![CoreId::new(4), CoreId::new(2), CoreId::new(0)]);
        assert_eq!(t.core_mean_vmin(CoreId::new(4)), Some(875.0));
        assert_eq!(t.core_mean_vmin(CoreId::new(7)), None);
    }
}
