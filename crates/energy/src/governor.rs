//! The predictor-guided undervolting governor (§5).
//!
//! "According to the worst-case behavior of the core-benchmark pair, the
//! predictor can decide what is the safe voltage for all the cores, which
//! is practically the maximum among them."
//!
//! The governor consumes a [`VminTable`] (measured or predicted), applies a
//! configurable guardband, and picks the best point of the Figure 9
//! staircase subject to the operator's performance budget.

use crate::schedule::Assignment;
use crate::tradeoff::{pareto_curve, TradeoffPoint};
use crate::vmin::VminTable;
use margins_sim::topology::NUM_PMDS;
use margins_sim::{Megahertz, Millivolts};
use serde::{Deserialize, Serialize};

/// Governor policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Policy {
    /// Extra 5 mV steps added above every safe Vmin (a software guardband
    /// against dynamic conditions the table did not see).
    pub guardband_steps: u32,
    /// Maximum acceptable multiprogram performance loss (0.0 = none,
    /// 0.25 = the paper's 38.8%-savings point, 0.5 = the 1.2 GHz floor).
    pub max_performance_loss: f64,
}

impl Default for Policy {
    fn default() -> Self {
        Policy {
            guardband_steps: 0,
            max_performance_loss: 0.0,
        }
    }
}

/// What the governor decided for the current schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GovernorDecision {
    /// The shared-rail voltage to program.
    pub voltage: Millivolts,
    /// Per-PMD frequencies to program.
    pub freqs: [Megahertz; NUM_PMDS],
    /// Expected power relative to nominal.
    pub relative_power: f64,
    /// Expected throughput relative to all-full-speed.
    pub relative_performance: f64,
    /// Expected energy savings.
    pub energy_savings: f64,
}

impl From<&TradeoffPoint> for GovernorDecision {
    fn from(p: &TradeoffPoint) -> Self {
        GovernorDecision {
            voltage: p.voltage,
            freqs: p.freqs,
            relative_power: p.relative_power,
            relative_performance: p.relative_performance,
            energy_savings: p.energy_savings,
        }
    }
}

/// The governor.
#[derive(Debug, Clone, PartialEq)]
pub struct Governor {
    table: VminTable,
    policy: Policy,
}

impl Governor {
    /// Creates a governor over a safe-voltage table.
    #[must_use]
    pub fn new(table: VminTable, policy: Policy) -> Self {
        Governor { table, policy }
    }

    /// The underlying table.
    #[must_use]
    pub fn table(&self) -> &VminTable {
        &self.table
    }

    /// The active policy.
    #[must_use]
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Chooses the deepest staircase point whose performance stays within
    /// budget, with the guardband applied to the voltage. Returns `None`
    /// when the table lacks an entry for some assignment — the safe
    /// fallback is nominal operation.
    #[must_use]
    pub fn decide(&self, assignments: &[Assignment]) -> Option<GovernorDecision> {
        let curve = pareto_curve(assignments, &self.table)?;
        let min_perf = 1.0 - self.policy.max_performance_loss;
        let chosen = curve
            .iter()
            .filter(|p| p.relative_performance + 1e-12 >= min_perf)
            .max_by(|a, b| a.energy_savings.total_cmp(&b.energy_savings))?;
        let mut decision = GovernorDecision::from(chosen);
        let guarded = decision.voltage.up_steps(self.policy.guardband_steps);
        let guarded = guarded.min(margins_sim::volt::PMD_NOMINAL);
        // Rescale power by V² for the guardband, preserving the staircase's
        // loaded-PMD normalization (idle PMDs are excluded there).
        decision.relative_power *= guarded.ratio_to(decision.voltage).powi(2);
        decision.voltage = guarded;
        decision.energy_savings = crate::model::energy_savings(decision.relative_power);
        Some(decision)
    }

    /// Like [`Governor::decide`], but reports any decision made to
    /// `observer` as a [`TraceEvent::VoltageDecision`] — the governor's
    /// contribution to a campaign telemetry stream.
    ///
    /// [`TraceEvent::VoltageDecision`]: margins_trace::TraceEvent::VoltageDecision
    pub fn decide_observed(
        &self,
        assignments: &[Assignment],
        observer: &dyn margins_trace::Observer,
    ) -> Option<GovernorDecision> {
        let decision = self.decide(assignments)?;
        if observer.enabled() {
            observer.record(&margins_trace::TraceEvent::VoltageDecision {
                voltage_mv: decision.voltage.get(),
                guardband_steps: self.policy.guardband_steps,
                relative_power: decision.relative_power,
                relative_performance: decision.relative_performance,
                energy_savings: decision.energy_savings,
            });
        }
        Some(decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use margins_sim::CoreId;

    fn table() -> (Vec<Assignment>, VminTable) {
        let mut t = VminTable::new();
        let data = [
            (0u8, "leslie3d", 915u32),
            (2, "cactusADM", 900),
            (4, "dealII", 870),
            (6, "namd", 885),
        ];
        let mut a = Vec::new();
        for (core, wl, v) in data {
            t.insert(CoreId::new(core), wl, Millivolts::new(v));
            a.push(Assignment {
                core: CoreId::new(core),
                workload: wl.to_owned(),
            });
        }
        (a, t)
    }

    #[test]
    fn zero_loss_budget_picks_the_binding_vmin() {
        let (a, t) = table();
        let g = Governor::new(t, Policy::default());
        let d = g.decide(&a).unwrap();
        assert_eq!(d.voltage, Millivolts::new(915));
        assert_eq!(d.relative_performance, 1.0);
        assert!(
            (d.energy_savings - 0.128).abs() < 0.001,
            "{}",
            d.energy_savings
        );
    }

    #[test]
    fn quarter_loss_budget_drops_two_pmds() {
        let (a, t) = table();
        let g = Governor::new(
            t,
            Policy {
                guardband_steps: 0,
                max_performance_loss: 0.25,
            },
        );
        let d = g.decide(&a).unwrap();
        assert!((d.relative_performance - 0.75).abs() < 1e-12);
        assert_eq!(d.voltage, Millivolts::new(885));
        assert!(
            (d.energy_savings - 0.388).abs() < 0.002,
            "{}",
            d.energy_savings
        );
    }

    #[test]
    fn half_loss_budget_reaches_the_divided_floor() {
        let (a, t) = table();
        let g = Governor::new(
            t,
            Policy {
                guardband_steps: 0,
                max_performance_loss: 0.5,
            },
        );
        let d = g.decide(&a).unwrap();
        assert_eq!(d.voltage, crate::tradeoff::DIVIDED_SAFE);
        assert!(
            (d.energy_savings - 0.699).abs() < 0.002,
            "{}",
            d.energy_savings
        );
    }

    #[test]
    fn guardband_raises_the_voltage() {
        let (a, t) = table();
        let g = Governor::new(
            t,
            Policy {
                guardband_steps: 2,
                max_performance_loss: 0.0,
            },
        );
        let d = g.decide(&a).unwrap();
        assert_eq!(d.voltage, Millivolts::new(925));
        assert!(d.energy_savings < 0.128);
    }

    #[test]
    fn observed_decision_matches_decide_and_reports_one_event() {
        use margins_trace::{EventBuffer, NullObserver, TraceEvent};
        let (a, t) = table();
        let g = Governor::new(
            t,
            Policy {
                guardband_steps: 1,
                max_performance_loss: 0.25,
            },
        );
        let plain = g.decide(&a).unwrap();
        let buffer = EventBuffer::new();
        let observed = g.decide_observed(&a, &buffer).unwrap();
        assert_eq!(plain, observed);
        let events = buffer.drain();
        assert_eq!(events.len(), 1);
        match &events[0] {
            TraceEvent::VoltageDecision {
                voltage_mv,
                guardband_steps,
                energy_savings,
                ..
            } => {
                assert_eq!(*voltage_mv, plain.voltage.get());
                assert_eq!(*guardband_steps, 1);
                assert!((energy_savings - plain.energy_savings).abs() < 1e-12);
            }
            other => panic!("unexpected event {}", other.name()),
        }
        // A disabled observer sees nothing and changes nothing.
        assert_eq!(g.decide_observed(&a, &NullObserver).unwrap(), plain);
    }

    #[test]
    fn missing_workload_falls_back_to_none() {
        let (mut a, t) = table();
        a.push(Assignment {
            core: CoreId::new(1),
            workload: "ghost".into(),
        });
        assert!(Governor::new(t, Policy::default()).decide(&a).is_none());
    }
}
