//! The online voltage predictor of §4.4/§5.
//!
//! "Therefore, having knowledge about the severity below the safe Vmin for
//! each workload, the predictor can decide if it is possible to be more
//! aggressive to set the voltage below the safe Vmin, and thus, to save
//! more power."
//!
//! An [`OnlinePredictor`] wraps a trained severity regression (counters +
//! candidate voltage → severity) and answers the governor's question: *how
//! low may the rail go for this workload under this severity budget?* A
//! budget of 0 is the conservative §4.4 "nothing abnormal" policy; budgets
//! up to 4 ("SDCs alone") suit the fault-tolerant application classes the
//! paper lists (approximate computing, video processing, jammer detectors).

use margins_predict::RecursiveFeatureElimination;
use margins_sim::volt::{PMD_NOMINAL, VOLTAGE_STEP_MV};
use margins_sim::Millivolts;
use serde::{Deserialize, Serialize};

/// The conservative severity budget: no predicted abnormality (§4.4
/// "Nothing abnormal (severity=0)").
pub const BUDGET_CONSERVATIVE: f64 = 0.0;

/// The fault-tolerant-application budget (§4.4: "for such applications,
/// severity <= 4 can be used for improving energy efficiency").
pub const BUDGET_SDC_TOLERANT: f64 = 4.0;

/// A trained severity model driving online voltage decisions.
///
/// The model's feature layout must match `margins-core::dataset`'s severity
/// samples: the 101 PMU counters followed by the candidate voltage in mV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlinePredictor {
    model: RecursiveFeatureElimination,
}

impl OnlinePredictor {
    /// Wraps a trained severity regression.
    #[must_use]
    pub fn new(model: RecursiveFeatureElimination) -> Self {
        OnlinePredictor { model }
    }

    /// The underlying model.
    #[must_use]
    pub fn model(&self) -> &RecursiveFeatureElimination {
        &self.model
    }

    /// Predicted severity of running a workload with nominal-conditions
    /// `counters` at `voltage`.
    #[must_use]
    pub fn predicted_severity(&self, counters: &[f64], voltage: Millivolts) -> f64 {
        let mut features = counters.to_vec();
        features.push(voltage.as_f64());
        self.model.predict(&features)
    }

    /// The lowest voltage on the 5 mV grid — scanning from nominal down to
    /// `floor` — such that the predicted severity stays within `budget` at
    /// that voltage *and every voltage above it* (the usable prefix).
    ///
    /// Returns `None` when even nominal is predicted over budget (the
    /// model distrusts this workload entirely; stay at nominal).
    #[must_use]
    pub fn safe_voltage(
        &self,
        counters: &[f64],
        budget: f64,
        floor: Millivolts,
    ) -> Option<Millivolts> {
        let mut best = None;
        let mut v = PMD_NOMINAL;
        loop {
            let severity = self.predicted_severity(counters, v);
            if severity > budget + 1e-9 {
                break;
            }
            best = Some(v);
            if v <= floor {
                break;
            }
            v = v.down_steps(1);
        }
        best
    }

    /// Convenience: the §4.4 policy pair — (conservative voltage,
    /// SDC-tolerant voltage) for one workload.
    #[must_use]
    pub fn policy_pair(
        &self,
        counters: &[f64],
        floor: Millivolts,
    ) -> (Option<Millivolts>, Option<Millivolts>) {
        (
            self.safe_voltage(counters, BUDGET_CONSERVATIVE, floor),
            self.safe_voltage(counters, BUDGET_SDC_TOLERANT, floor),
        )
    }
}

/// Grid helper: the number of 5 mV steps between two voltages.
#[must_use]
pub fn steps_between(high: Millivolts, low: Millivolts) -> u32 {
    high.get().saturating_sub(low.get()) / VOLTAGE_STEP_MV
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trains a model on synthetic samples with a known linear law:
    /// severity = 0.4·(onset − v) + 0.001·c0, clipped to the sampled band.
    fn trained() -> OnlinePredictor {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for c0 in [1000.0f64, 2000.0, 3000.0] {
            for vk in 0..30 {
                let v = 930.0 - f64::from(vk) * 5.0;
                let onset = 860.0 + c0 / 100.0; // workload-dependent onset
                let severity = (0.4 * (onset - v)).max(0.0);
                if severity > 0.0 {
                    x.push(vec![c0, 1.0, v]);
                    y.push(severity);
                }
            }
        }
        let model = RecursiveFeatureElimination::fit(&x, &y, 2, 1).expect("fits");
        OnlinePredictor::new(model)
    }

    #[test]
    fn severity_prediction_decreases_with_voltage() {
        let p = trained();
        let counters = [2000.0, 1.0];
        let high = p.predicted_severity(&counters, Millivolts::new(900));
        let low = p.predicted_severity(&counters, Millivolts::new(860));
        assert!(
            low > high,
            "severity must grow as voltage drops: {high} vs {low}"
        );
    }

    #[test]
    fn larger_budgets_allow_deeper_voltages() {
        let p = trained();
        let counters = [2000.0, 1.0];
        let floor = Millivolts::new(800);
        let conservative = p.safe_voltage(&counters, BUDGET_CONSERVATIVE, floor);
        let tolerant = p.safe_voltage(&counters, BUDGET_SDC_TOLERANT, floor);
        let (c2, t2) = p.policy_pair(&counters, floor);
        assert_eq!(conservative, c2);
        assert_eq!(tolerant, t2);
        let (c, t) = (conservative.unwrap(), tolerant.unwrap());
        assert!(t <= c, "tolerant {t} must be at or below conservative {c}");
        assert!(t < c, "a 4-unit budget buys real depth here");
    }

    #[test]
    fn heavier_workloads_get_higher_safe_voltages() {
        let p = trained();
        let floor = Millivolts::new(800);
        let light = p
            .safe_voltage(&[1000.0, 1.0], BUDGET_CONSERVATIVE, floor)
            .unwrap();
        let heavy = p
            .safe_voltage(&[3000.0, 1.0], BUDGET_CONSERVATIVE, floor)
            .unwrap();
        assert!(heavy > light, "heavy {heavy} vs light {light}");
    }

    #[test]
    fn safe_voltage_respects_the_floor_and_grid() {
        let p = trained();
        let floor = Millivolts::new(900);
        let v = p
            .safe_voltage(&[1000.0, 1.0], BUDGET_SDC_TOLERANT, floor)
            .unwrap();
        assert!(v >= floor);
        assert_eq!(v.get() % VOLTAGE_STEP_MV, 0);
        assert!(v <= PMD_NOMINAL);
    }

    #[test]
    fn steps_between_counts_grid_steps() {
        assert_eq!(
            steps_between(Millivolts::new(980), Millivolts::new(900)),
            16
        );
        assert_eq!(steps_between(Millivolts::new(900), Millivolts::new(980)), 0);
    }
}
