//! Workload signature tests: the prediction study needs the 26 kernels to
//! have genuinely distinct microarchitectural profiles, and every kernel
//! must behave like a real program (deterministic golden output, nonzero
//! fundamental counters).

use margins_sim::{ChipSpec, CoreId, Corner, CounterFile, PmuEvent, System, SystemConfig};
use margins_workloads::suite;

fn profile_all() -> Vec<(String, String, CounterFile, u64)> {
    let mut sys = System::new(ChipSpec::new(Corner::Ttt, 0), SystemConfig::default());
    suite::prediction_suite()
        .iter()
        .map(|p| {
            let r = sys.run(p.as_ref(), CoreId::new(0), 7).expect("responsive");
            assert_eq!(
                r.outcome,
                margins_sim::RunOutcome::Completed,
                "{} must complete at nominal",
                p.name()
            );
            (
                p.name().to_owned(),
                p.dataset().to_owned(),
                r.counters,
                r.digest.value(),
            )
        })
        .collect()
}

#[test]
fn all_40_pairs_have_distinct_goldens_and_counter_signatures() {
    let profiles = profile_all();
    assert_eq!(profiles.len(), 40);

    // Distinct golden outputs.
    let mut digests = std::collections::HashSet::new();
    for (name, dataset, _, digest) in &profiles {
        assert!(
            digests.insert(*digest),
            "{name}/{dataset} shares a golden digest with another pair"
        );
    }

    // Pairwise-distinct counter signatures: any two programs must differ by
    // ≥20% in at least one informative rate.
    let rates = |c: &CounterFile| {
        [
            c.rate(PmuEvent::FpInstRetired, PmuEvent::InstRetired),
            c.rate(PmuEvent::ReadMemAccess, PmuEvent::InstRetired),
            c.rate(PmuEvent::CondBrRetired, PmuEvent::InstRetired),
            c.rate(PmuEvent::L2DCacheRefill, PmuEvent::InstRetired),
            c.rate(PmuEvent::BrMisPred, PmuEvent::InstRetired),
            c.get(PmuEvent::InstRetired) as f64,
        ]
    };
    for i in 0..profiles.len() {
        for j in (i + 1)..profiles.len() {
            let a = rates(&profiles[i].2);
            let b = rates(&profiles[j].2);
            let distinct = a.iter().zip(&b).any(|(x, y)| {
                let denom = x.abs().max(y.abs());
                denom > 1e-12 && (x - y).abs() / denom > 0.2
            });
            assert!(
                distinct,
                "{}/{} and {}/{} have near-identical signatures: {a:?} vs {b:?}",
                profiles[i].0, profiles[i].1, profiles[j].0, profiles[j].1
            );
        }
    }
}

#[test]
fn kernel_classes_have_the_expected_counter_character() {
    let profiles = profile_all();
    let get = |name: &str| {
        &profiles
            .iter()
            .find(|(n, d, _, _)| n == name && d == "ref")
            .unwrap()
            .2
    };
    let fp_rate = |c: &CounterFile| c.rate(PmuEvent::FpInstRetired, PmuEvent::InstRetired);
    let mem_rate = |c: &CounterFile| c.rate(PmuEvent::L2DCacheRefill, PmuEvent::InstRetired);

    // FP stencils are FP-dense; integer codes are not.
    assert!(fp_rate(get("bwaves")) > 0.3, "bwaves fp rate");
    assert!(fp_rate(get("leslie3d")) > 0.3);
    assert!(fp_rate(get("mcf")) < 0.01, "mcf is integer");
    assert!(fp_rate(get("gcc")) < 0.01);

    // mcf/lbm stream past the L2; namd is table-resident.
    assert!(mem_rate(get("mcf")) > mem_rate(get("namd")) * 5.0);
    assert!(mem_rate(get("lbm")) > mem_rate(get("namd")) * 5.0);

    // The big-code kernels take instruction-cache refills.
    let icache = |c: &CounterFile| c.get(PmuEvent::L1ICacheRefill);
    assert!(icache(get("xalancbmk")) > icache(get("namd")) * 4);
    assert!(icache(get("gcc")) > icache(get("namd")) * 4);

    // Data-dependent search branches mispredict more than the skewed
    // numeric guards of the stencils.
    let misp = |c: &CounterFile| c.rate(PmuEvent::BrMisPred, PmuEvent::BrRetired);
    assert!(misp(get("gobmk")) > misp(get("bwaves")));
}

#[test]
fn train_datasets_shrink_instruction_counts() {
    let profiles = profile_all();
    for name in suite::TRAIN_DATASET_NAMES {
        let insts = |ds: &str| {
            profiles
                .iter()
                .find(|(n, d, _, _)| n == name && d == ds)
                .map(|(_, _, c, _)| c.get(PmuEvent::InstRetired))
                .unwrap()
        };
        let (r, t) = (insts("ref"), insts("train"));
        assert!(t < r, "{name}: train {t} must be smaller than ref {r}");
        assert!(t * 3 > r, "{name}: but not degenerate ({t} vs {r})");
    }
}
