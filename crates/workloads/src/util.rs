//! Deterministic data generation shared by the kernels.

/// A tiny splitmix64 generator used to synthesize input datasets.
///
/// Kernels must be bit-deterministic at nominal conditions (their digest is
/// the SDC reference), so all "input data" comes from this seeded stream —
/// never from global state or the machine's fault RNG.
#[derive(Debug, Clone)]
pub struct DataGen {
    state: u64,
}

impl DataGen {
    pub fn new(seed: u64) -> Self {
        DataGen {
            state: seed ^ 0xD6E8_FEB8_6659_FD93,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = DataGen::new(5);
        let mut b = DataGen::new(5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = DataGen::new(1);
        let mut b = DataGen::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = DataGen::new(9);
        for _ in 0..1000 {
            let v = g.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut g = DataGen::new(3);
        for _ in 0..1000 {
            assert!(g.below(17) < 17);
        }
    }
}
