//! SPEC CPU2006-like workload kernels for the voltage-margin study.
//!
//! The paper characterizes ten SPEC CPU2006 benchmarks (Figures 3–5) and
//! trains its prediction models on 26 programs / 40 program-input pairs
//! (§4.1). Since the real suite cannot ship here, this crate provides 26
//! kernels that span the same microarchitectural axes — floating-point
//! stencil codes, sparse/dense linear algebra, molecular dynamics, and
//! pointer-chasing/branchy integer codes — all written against the
//! simulator's [`Machine`] op API so that every arithmetic op, memory
//! access and branch passes through the timing-fault, droop, cache and
//! counter machinery.
//!
//! Each kernel computes a *real* result folded into an [`OutputDigest`];
//! silent data corruptions manifest as digest mismatches against a golden
//! nominal-conditions run, exactly like the physical framework's output
//! comparison (Table 3).
//!
//! The crate also contains the component-focused **self-tests** of §3.4
//! ([`selftest`]): cache march tests that fill and flip every bit of an
//! array level, and ALU/FPU stress tests — used to demonstrate that the
//! simulated chip, like the real X-Gene 2, is dominated by timing-path
//! failures rather than SRAM failures.
//!
//! # Example
//!
//! ```
//! use margins_workloads::{suite, Dataset};
//! use margins_sim::{ChipSpec, Corner, System, SystemConfig, CoreId};
//!
//! let program = suite::by_name("namd", Dataset::Ref).expect("namd exists");
//! let mut sys = System::new(ChipSpec::new(Corner::Ttt, 0), SystemConfig::default());
//! let record = sys.run(program.as_ref(), CoreId::new(4), 1).unwrap();
//! assert_eq!(record.program, "namd");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
pub mod selftest;
pub mod suite;
#[cfg(test)]
pub(crate) mod testutil;
mod util;

pub use margins_sim::{Machine, OutputDigest, Program};
pub use suite::Dataset;
