//! The workload registry: kernel construction by name, the ten-benchmark
//! characterization suite of Figures 3–5 and the 26-program / 40-pair
//! prediction suite of §4.1.

use crate::kernels::*;
use margins_sim::Program;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An input dataset for a kernel (the paper runs each SPEC program "with
/// all their input datasets", reaching 40 program-input pairs from 26
/// programs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// The reference (full-size) input.
    Ref,
    /// The smaller training input.
    Train,
}

impl Dataset {
    /// The dataset label used in logs and CSV output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Dataset::Ref => "ref",
            Dataset::Train => "train",
        }
    }

    /// Linear scale factor applied to the kernel's working size.
    #[must_use]
    pub fn scale(self) -> f64 {
        match self {
            Dataset::Ref => 1.0,
            Dataset::Train => 0.6,
        }
    }

    /// Scales an item count by the dataset factor (minimum 1).
    #[must_use]
    pub fn scaled(self, n: usize) -> usize {
        ((n as f64 * self.scale()) as usize).max(1)
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// All 26 kernel names, in suite order.
pub const ALL_NAMES: [&str; 26] = [
    "bwaves",
    "cactusADM",
    "dealII",
    "gromacs",
    "leslie3d",
    "mcf",
    "milc",
    "namd",
    "soplex",
    "zeusmp",
    "lbm",
    "GemsFDTD",
    "calculix",
    "tonto",
    "gamess",
    "gcc",
    "gobmk",
    "sjeng",
    "hmmer",
    "libquantum",
    "h264ref",
    "omnetpp",
    "astar",
    "bzip2",
    "xalancbmk",
    "perlbench",
];

/// The ten benchmarks of the Figure 3/4/5 characterization study.
pub const FIGURE4_NAMES: [&str; 10] = [
    "bwaves",
    "cactusADM",
    "dealII",
    "gromacs",
    "leslie3d",
    "mcf",
    "milc",
    "namd",
    "soplex",
    "zeusmp",
];

/// Kernels that ship a second (`train`) input dataset; 26 programs + these
/// 14 extra pairs = the paper's 40 samples (§4.3.1).
pub const TRAIN_DATASET_NAMES: [&str; 14] = [
    "bwaves",
    "cactusADM",
    "dealII",
    "gromacs",
    "leslie3d",
    "mcf",
    "milc",
    "namd",
    "gcc",
    "hmmer",
    "bzip2",
    "h264ref",
    "soplex",
    "zeusmp",
];

/// Builds a kernel by benchmark name.
///
/// Returns `None` for unknown names or a `train` request on a kernel that
/// only ships a `ref` dataset.
#[must_use]
pub fn by_name(name: &str, dataset: Dataset) -> Option<Box<dyn Program>> {
    if dataset == Dataset::Train && !TRAIN_DATASET_NAMES.contains(&name) {
        return None;
    }
    let program: Box<dyn Program> = match name {
        "bwaves" => Box::new(Bwaves::new(dataset)),
        "cactusADM" => Box::new(CactusAdm::new(dataset)),
        "dealII" => Box::new(DealII::new(dataset)),
        "gromacs" => Box::new(Gromacs::new(dataset)),
        "leslie3d" => Box::new(Leslie3d::new(dataset)),
        "mcf" => Box::new(Mcf::new(dataset)),
        "milc" => Box::new(Milc::new(dataset)),
        "namd" => Box::new(Namd::new(dataset)),
        "soplex" => Box::new(Soplex::new(dataset)),
        "zeusmp" => Box::new(Zeusmp::new(dataset)),
        "lbm" => Box::new(Lbm::new(dataset)),
        "GemsFDTD" => Box::new(GemsFdtd::new(dataset)),
        "calculix" => Box::new(Calculix::new(dataset)),
        "tonto" => Box::new(Tonto::new(dataset)),
        "gamess" => Box::new(Gamess::new(dataset)),
        "gcc" => Box::new(Gcc::new(dataset)),
        "gobmk" => Box::new(Gobmk::new(dataset)),
        "sjeng" => Box::new(Sjeng::new(dataset)),
        "hmmer" => Box::new(Hmmer::new(dataset)),
        "libquantum" => Box::new(Libquantum::new(dataset)),
        "h264ref" => Box::new(H264Ref::new(dataset)),
        "omnetpp" => Box::new(Omnetpp::new(dataset)),
        "astar" => Box::new(Astar::new(dataset)),
        "bzip2" => Box::new(Bzip2::new(dataset)),
        "xalancbmk" => Box::new(Xalancbmk::new(dataset)),
        "perlbench" => Box::new(Perlbench::new(dataset)),
        // The §3.4 component self-tests are addressable too, so campaigns
        // can characterize them like any benchmark.
        "selftest-alu" => Box::new(crate::selftest::AluTest::new()),
        "selftest-fpu" => Box::new(crate::selftest::FpuTest::new()),
        "selftest-l1d" => Box::new(crate::selftest::CacheTest::new(
            margins_sim::topology::CacheLevel::L1D,
        )),
        "selftest-l2" => Box::new(crate::selftest::CacheTest::new(
            margins_sim::topology::CacheLevel::L2,
        )),
        "selftest-l3" => Box::new(crate::selftest::CacheTest::new(
            margins_sim::topology::CacheLevel::L3,
        )),
        _ => return None,
    };
    Some(program)
}

/// The ten-benchmark suite of the Figure 3/4/5 characterization.
#[must_use]
pub fn figure4_suite() -> Vec<Box<dyn Program>> {
    FIGURE4_NAMES
        .iter()
        .map(|n| by_name(n, Dataset::Ref).expect("figure-4 kernels all exist"))
        .collect()
}

/// The full prediction suite: all 26 programs with every available input
/// dataset — 40 program-input pairs, as in §4.3.1.
#[must_use]
pub fn prediction_suite() -> Vec<Box<dyn Program>> {
    let mut out: Vec<Box<dyn Program>> = Vec::with_capacity(40);
    for name in ALL_NAMES {
        out.push(by_name(name, Dataset::Ref).expect("all kernels exist"));
        if TRAIN_DATASET_NAMES.contains(&name) {
            out.push(by_name(name, Dataset::Train).expect("train dataset exists"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_the_paper() {
        assert_eq!(ALL_NAMES.len(), 26, "26 SPEC CPU2006 benchmarks (§4.1)");
        assert_eq!(figure4_suite().len(), 10, "10 characterized benchmarks");
        assert_eq!(
            prediction_suite().len(),
            40,
            "40 program-input pairs (§4.3.1)"
        );
    }

    #[test]
    fn figure4_names_are_a_subset_of_all() {
        for n in FIGURE4_NAMES {
            assert!(ALL_NAMES.contains(&n), "{n}");
        }
    }

    #[test]
    fn every_name_constructs() {
        for n in ALL_NAMES {
            let p = by_name(n, Dataset::Ref).unwrap_or_else(|| panic!("{n} missing"));
            assert_eq!(p.name(), n);
            assert_eq!(p.dataset(), "ref");
        }
    }

    #[test]
    fn train_datasets_construct_only_where_declared() {
        for n in ALL_NAMES {
            let built = by_name(n, Dataset::Train).is_some();
            assert_eq!(built, TRAIN_DATASET_NAMES.contains(&n), "{n}");
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("fortnite", Dataset::Ref).is_none());
    }

    #[test]
    fn dataset_scaling() {
        assert_eq!(Dataset::Ref.scaled(100), 100);
        assert_eq!(Dataset::Train.scaled(100), 60);
        assert_eq!(Dataset::Train.scaled(1), 1);
        assert_eq!(Dataset::Train.label(), "train");
    }
}

#[cfg(test)]
mod mass_dump {
    use super::*;
    use crate::testutil::nominal_digest;

    #[test]
    #[ignore = "diagnostic dump"]
    fn dump_masses() {
        for p in prediction_suite() {
            let (_, mass, _) = nominal_digest(p.as_ref());
            println!("{:<12} {:<6} {:>10.0}", p.name(), p.dataset(), mass);
        }
    }
}
