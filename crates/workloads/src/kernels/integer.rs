//! Integer/pointer kernels: the low-stress end of the suite (mcf lowest).
//! Their tiny per-op path stress gives them the deepest safe undervolting
//! in Figure 4, while their memory and branch behaviour diversifies the
//! counter signatures the §4 prediction models consume.

use crate::suite::Dataset;
use crate::util::DataGen;
use margins_sim::{Machine, OutputDigest, Program};

/// `mcf`-like: network-simplex pointer chasing over a multi-megabyte arc
/// array — almost pure loads and address arithmetic, DRAM-bound. The
/// lowest stress mass of the suite (≈ 0.6k `ref`), anchoring the bottom of
/// the Vmin band.
#[derive(Debug, Clone)]
pub struct Mcf {
    dataset: Dataset,
}

impl Mcf {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Mcf { dataset }
    }
}

impl Program for Mcf {
    fn name(&self) -> &str {
        "mcf"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        // 1.5M-word (12 MB) successor array: bigger than L3.
        let nodes = self.dataset.scaled(1_500_000);
        let next = m.alloc(nodes);
        let cost = m.alloc(nodes / 64 + 1);
        let mut gen = DataGen::new(0x3CF);
        // Sparse initialization of a permutation-ish successor chain.
        for i in (0..nodes).step_by(127) {
            m.store_u64(next.offset(i as u64), gen.below(nodes as u64));
        }
        let steps = self.dataset.scaled(9_500);
        let mut digest = OutputDigest::new();
        let mut cur = 1u64;
        let mut total_cost = 0u64;
        for s in 0..steps {
            if m.halted() {
                return digest;
            }
            let succ = m.load_u64(next.offset(cur));
            let hop = m.iadd(succ, (s % 8191) as u64);
            cur = hop % nodes as u64;
            let c = m.load_u64(cost.offset(cur / 64));
            total_cost = m.iadd(total_cost, c & 0xFF);
            if m.branch(total_cost.is_multiple_of(3)) {
                total_cost = m.iadd(total_cost, 1);
            }
        }
        digest.absorb_u64(total_cost);
        digest.absorb_u64(cur);
        digest
    }
}

/// `gcc`-like: compiler passes — branchy integer work over medium arrays
/// with a large instruction footprint (drives L1I refills). Stress mass
/// ≈ 0.9k (`ref`).
#[derive(Debug, Clone)]
pub struct Gcc {
    dataset: Dataset,
}

impl Gcc {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Gcc { dataset }
    }
}

impl Program for Gcc {
    fn name(&self) -> &str {
        "gcc"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        m.set_code_footprint(192 * 1024);
        let items = self.dataset.scaled(8_200);
        let ir = m.alloc(items);
        let mut gen = DataGen::new(0x6CC);
        for i in 0..items {
            m.store_u64(ir.offset(i as u64), gen.next_u64());
        }
        let mut digest = OutputDigest::new();
        let mut hash = 0xCBF2_9CE4u64;
        for i in 0..items {
            if m.halted() {
                return digest;
            }
            let insn = m.load_u64(ir.offset(i as u64));
            let opcode = m.iand(insn, 0x3F);
            // "Pattern match" on the opcode — data-dependent branches.
            if m.branch(opcode < 16) {
                let folded = m.ixor(hash, insn);
                hash = m.ishl(folded, 3);
            } else if m.branch(opcode < 40) {
                let sum = m.iadd(hash, insn);
                hash = m.ishr(sum, 1);
            } else {
                hash = m.imul(hash | 1, 0x100_0193);
            }
        }
        digest.absorb_u64(hash);
        digest
    }
}

/// `gobmk`-like: Go position evaluation — bitboard operations with
/// hard-to-predict branches. Stress mass ≈ 0.9k (`ref`).
#[derive(Debug, Clone)]
pub struct Gobmk {
    dataset: Dataset,
}

impl Gobmk {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Gobmk { dataset }
    }
}

impl Program for Gobmk {
    fn name(&self) -> &str {
        "gobmk"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        m.set_code_footprint(96 * 1024);
        let moves = self.dataset.scaled(9_800);
        let board = m.alloc(64);
        let mut gen = DataGen::new(0x60B);
        for i in 0..64 {
            m.store_u64(board.offset(i), gen.next_u64());
        }
        let mut digest = OutputDigest::new();
        let mut territory = 0u64;
        for mv in 0..moves {
            if m.halted() {
                return digest;
            }
            let row = gen.below(62) + 1;
            let above = m.load_u64(board.offset(row - 1));
            let here = m.load_u64(board.offset(row));
            let below = m.load_u64(board.offset(row + 1));
            let neighbours = m.ior(above, below);
            let liberties = m.iand(here, neighbours);
            // Unpredictable: depends on synthesized board data.
            if m.branch(liberties.count_ones().is_multiple_of(2)) {
                let gained = m.ixor(here, liberties);
                m.store_u64(board.offset(row), gained);
                territory = m.iadd(territory, gained.count_ones() as u64);
            } else {
                territory = m.iadd(territory, (mv % 3) as u64);
            }
        }
        digest.absorb_u64(territory);
        digest
    }
}

/// `sjeng`-like: chess search — shift-heavy bitboard move generation with
/// data-dependent branches. Stress mass ≈ 0.85k (`ref`).
#[derive(Debug, Clone)]
pub struct Sjeng {
    dataset: Dataset,
}

impl Sjeng {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Sjeng { dataset }
    }
}

impl Program for Sjeng {
    fn name(&self) -> &str {
        "sjeng"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        let nodes = self.dataset.scaled(9_600);
        let tt = m.alloc(4096);
        let mut gen = DataGen::new(0x51E6);
        for i in (0..4096).step_by(3) {
            m.store_u64(tt.offset(i as u64), gen.next_u64());
        }
        let mut digest = OutputDigest::new();
        let mut score = 0u64;
        let mut occupancy = 0x00FF_0000_0000_FF00u64;
        for n in 0..nodes {
            if m.halted() {
                return digest;
            }
            let attacks = m.ishl(occupancy, (n % 7) as u32 + 1);
            let defended = m.ishr(occupancy, (n % 5) as u32 + 1);
            let contested = m.iand(attacks, defended);
            let key = m.ixor(contested, occupancy);
            let slot = key % 4096;
            let entry = m.load_u64(tt.offset(slot));
            if m.branch(entry & 1 == key & 1) {
                score = m.iadd(score, entry & 0xFFFF);
            } else {
                m.store_u64(tt.offset(slot), key);
                occupancy = m.ior(occupancy, contested);
            }
        }
        digest.absorb_u64(score);
        digest.absorb_u64(occupancy);
        digest
    }
}

/// `hmmer`-like: profile HMM dynamic programming — a predictable
/// add/compare inner loop over score matrices. Stress mass ≈ 1.1k (`ref`).
#[derive(Debug, Clone)]
pub struct Hmmer {
    dataset: Dataset,
}

impl Hmmer {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Hmmer { dataset }
    }
}

impl Program for Hmmer {
    fn name(&self) -> &str {
        "hmmer"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        let cells = self.dataset.scaled(12_800);
        let width = 128usize;
        let match_row = m.alloc(width);
        let insert_row = m.alloc(width);
        let mut gen = DataGen::new(0x4333);
        for i in 0..width {
            m.store_u64(match_row.offset(i as u64), gen.below(1000));
            m.store_u64(insert_row.offset(i as u64), gen.below(1000));
        }
        let mut digest = OutputDigest::new();
        let mut best = 0u64;
        for c in 0..cells {
            if m.halted() {
                return digest;
            }
            let j = (c % (width - 1) + 1) as u64;
            let diag = m.load_u64(match_row.offset(j - 1));
            let up = m.load_u64(insert_row.offset(j));
            let emit = (c * 37 % 97) as u64;
            let via_match = m.iadd(diag, emit);
            let via_insert = m.iadd(up, emit / 2);
            // max() with a predictable-ish branch.
            let score = if m.branch(via_match >= via_insert) {
                via_match
            } else {
                via_insert
            };
            m.store_u64(match_row.offset(j), score % 100_000);
            if m.branch(score > best) {
                best = score;
            }
        }
        digest.absorb_u64(best);
        digest.absorb_u64(cells as u64);
        // The final DP row is part of the program output.
        for j in (0..width).step_by(17) {
            let v = m.load_u64(match_row.offset(j as u64));
            digest.absorb_u64(v);
        }
        digest
    }
}

/// `libquantum`-like: quantum gate simulation — streaming XOR over a large
/// state vector. Stress mass ≈ 0.7k (`ref`).
#[derive(Debug, Clone)]
pub struct Libquantum {
    dataset: Dataset,
}

impl Libquantum {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Libquantum { dataset }
    }
}

impl Program for Libquantum {
    fn name(&self) -> &str {
        "libquantum"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        let state = self.dataset.scaled(600_000);
        let reg = m.alloc(state);
        let mut gen = DataGen::new(0x11B0);
        for i in (0..state).step_by(211) {
            m.store_u64(reg.offset(i as u64), gen.next_u64());
        }
        let gates = self.dataset.scaled(14_000);
        let mut digest = OutputDigest::new();
        let mut parity = 0u64;
        let mut pos = 0usize;
        for g in 0..gates {
            if m.halted() {
                return digest;
            }
            pos = (pos + 4093) % state;
            let amp = m.load_u64(reg.offset(pos as u64));
            let mask = 1u64 << (g % 64);
            let flipped = m.ixor(amp, mask);
            m.store_u64(reg.offset(pos as u64), flipped);
            parity = m.ixor(parity, flipped);
        }
        digest.absorb_u64(parity);
        digest
    }
}

/// `h264ref`-like: video encoding — sum-of-absolute-differences over
/// macroblocks; streaming loads with a compare/branch per pixel. Stress
/// mass ≈ 1.0k (`ref`).
#[derive(Debug, Clone)]
pub struct H264Ref {
    dataset: Dataset,
}

impl H264Ref {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        H264Ref { dataset }
    }
}

impl Program for H264Ref {
    fn name(&self) -> &str {
        "h264ref"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        let pixels = self.dataset.scaled(15_500);
        let frame_a = m.alloc(pixels);
        let frame_b = m.alloc(pixels);
        let mut gen = DataGen::new(0x4264);
        for i in 0..pixels {
            m.store_u64(frame_a.offset(i as u64), gen.below(256));
            m.store_u64(frame_b.offset(i as u64), gen.below(256));
        }
        let mut digest = OutputDigest::new();
        let mut sad = 0u64;
        for i in 0..pixels {
            if m.halted() {
                return digest;
            }
            let a = m.load_u64(frame_a.offset(i as u64));
            let b = m.load_u64(frame_b.offset(i as u64));
            let diff = if m.branch(a >= b) {
                m.isub(a, b)
            } else {
                m.isub(b, a)
            };
            sad = m.iadd(sad, diff);
        }
        digest.absorb_u64(sad);
        digest
    }
}

/// `omnetpp`-like: discrete-event simulation — binary-heap event queue
/// operations, pointer-y with data-dependent branches. Stress mass ≈ 0.75k
/// (`ref`).
#[derive(Debug, Clone)]
pub struct Omnetpp {
    dataset: Dataset,
}

impl Omnetpp {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Omnetpp { dataset }
    }
}

impl Program for Omnetpp {
    fn name(&self) -> &str {
        "omnetpp"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        let events = self.dataset.scaled(7_800);
        let cap = 2048usize;
        let heap = m.alloc(cap);
        let mut gen = DataGen::new(0x03E7);
        let mut size = 0usize;
        let mut digest = OutputDigest::new();
        let mut clock = 0u64;
        for e in 0..events {
            if m.halted() {
                return digest;
            }
            if size < cap - 1 && (e % 3 != 0 || size == 0) {
                // Insert: sift up.
                let t = clock + gen.below(500) + 1;
                let mut i = size;
                size += 1;
                m.store_u64(heap.offset(i as u64), t);
                while i > 0 {
                    let parent = (i - 1) / 2;
                    let pv = m.load_u64(heap.offset(parent as u64));
                    let cv = m.load_u64(heap.offset(i as u64));
                    if m.branch(cv < pv) {
                        m.store_u64(heap.offset(parent as u64), cv);
                        m.store_u64(heap.offset(i as u64), pv);
                        i = parent;
                    } else {
                        break;
                    }
                }
            } else {
                // Pop min: replace root with last, sift down one level.
                let root = m.load_u64(heap.offset(0));
                clock = clock.max(root);
                size -= 1;
                let last = m.load_u64(heap.offset(size as u64));
                m.store_u64(heap.offset(0), last);
                let l = m.load_u64(heap.offset(1));
                let r = m.load_u64(heap.offset(2));
                let child = if m.branch(l <= r) { 1u64 } else { 2u64 };
                let cv = m.load_u64(heap.offset(child));
                if m.branch(cv < last) {
                    m.store_u64(heap.offset(0), cv);
                    m.store_u64(heap.offset(child), last);
                }
            }
        }
        digest.absorb_u64(clock);
        digest.absorb_u64(size as u64);
        digest
    }
}

/// `astar`-like: pathfinding — grid neighbour expansion with open-list
/// updates; loads and unpredictable branches. Stress mass ≈ 0.8k (`ref`).
#[derive(Debug, Clone)]
pub struct Astar {
    dataset: Dataset,
}

impl Astar {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Astar { dataset }
    }
}

impl Program for Astar {
    fn name(&self) -> &str {
        "astar"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        let expansions = self.dataset.scaled(7_200);
        let side = 256usize;
        let gmap = m.alloc(side * side / 8);
        let mut gen = DataGen::new(0xA57A);
        for i in (0..side * side / 8).step_by(5) {
            m.store_u64(gmap.offset(i as u64), gen.next_u64());
        }
        let mut digest = OutputDigest::new();
        let mut cur = (side / 2 * side + side / 2) as u64;
        let mut path_cost = 0u64;
        for e in 0..expansions {
            if m.halted() {
                return digest;
            }
            let dir = gen.below(4);
            let cand = match dir {
                0 => cur.wrapping_add(1),
                1 => cur.wrapping_sub(1),
                2 => cur.wrapping_add(side as u64),
                _ => cur.wrapping_sub(side as u64),
            } % (side * side) as u64;
            let word = m.load_u64(gmap.offset(cand / 512));
            let blocked = word >> (cand % 64) & 1 == 1;
            if m.branch(blocked) {
                path_cost = m.iadd(path_cost, 5);
            } else {
                cur = cand;
                // f = g + h with a weighted Manhattan heuristic.
                let h = m.imul(cand % side as u64 + 1, 3);
                let g = m.iadd(path_cost, (e % 3) as u64 + 1);
                path_cost = m.iadd(g, h & 0x7);
            }
        }
        digest.absorb_u64(path_cost);
        digest.absorb_u64(cur);
        digest
    }
}

/// `bzip2`-like: block compression — byte histogram + counting-sort pass.
/// Stress mass ≈ 0.9k (`ref`).
#[derive(Debug, Clone)]
pub struct Bzip2 {
    dataset: Dataset,
}

impl Bzip2 {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Bzip2 { dataset }
    }
}

impl Program for Bzip2 {
    fn name(&self) -> &str {
        "bzip2"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        let bytes = self.dataset.scaled(13_000);
        let data = m.alloc(bytes);
        let hist = m.alloc(256);
        let mut gen = DataGen::new(0xB21B);
        for i in 0..bytes {
            m.store_u64(data.offset(i as u64), gen.below(256));
        }
        let mut digest = OutputDigest::new();
        // Histogram.
        for i in 0..bytes {
            if m.halted() {
                return digest;
            }
            let b = m.load_u64(data.offset(i as u64));
            let slot = b % 256;
            let c = m.load_u64(hist.offset(slot));
            let inc = m.iadd(c, 1);
            m.store_u64(hist.offset(slot), inc);
        }
        // Prefix sums + entropy-ish checksum.
        let mut run = 0u64;
        let mut checksum = 0u64;
        for s in 0..256u64 {
            let c = m.load_u64(hist.offset(s));
            run = m.iadd(run, c);
            if m.branch(c > (bytes / 300) as u64) {
                let weighted = m.imul(c, s + 1);
                checksum = m.ixor(checksum, weighted);
            }
        }
        digest.absorb_u64(run);
        digest.absorb_u64(checksum);
        digest
    }
}

/// `xalancbmk`-like: XSLT processing — DOM-tree walking with virtual
/// dispatch (indirect branches) and a huge instruction footprint. Stress
/// mass ≈ 0.6k (`ref`).
#[derive(Debug, Clone)]
pub struct Xalancbmk {
    dataset: Dataset,
}

impl Xalancbmk {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Xalancbmk { dataset }
    }
}

impl Program for Xalancbmk {
    fn name(&self) -> &str {
        "xalancbmk"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        m.set_code_footprint(256 * 1024);
        let visits = self.dataset.scaled(8_600);
        let nodes = 50_000usize;
        // Node records: [first_child, next_sibling] pairs.
        let tree = m.alloc(nodes * 2);
        let mut gen = DataGen::new(0xA1A4);
        for i in 0..nodes {
            m.store_u64(tree.offset((2 * i) as u64), gen.below(nodes as u64));
            m.store_u64(tree.offset((2 * i + 1) as u64), gen.below(nodes as u64));
        }
        let mut digest = OutputDigest::new();
        let mut cur = 1u64;
        let mut depth_sum = 0u64;
        for v in 0..visits {
            if m.halted() {
                return digest;
            }
            let child = m.load_u64(tree.offset(2 * cur));
            let sibling = m.load_u64(tree.offset(2 * cur + 1));
            // "Virtual dispatch" on the node kind.
            m.indirect_branch(0x7000 + (cur % 13) * 64);
            cur = if m.branch(v % 3 == 0) { child } else { sibling } % nodes as u64;
            depth_sum = m.iadd(depth_sum, cur & 0xF);
        }
        digest.absorb_u64(depth_sum);
        digest.absorb_u64(cur);
        digest
    }
}

/// `perlbench`-like: interpreter — hash-table churn with multiply/xor
/// string hashing. Stress mass ≈ 1.0k (`ref`).
#[derive(Debug, Clone)]
pub struct Perlbench {
    dataset: Dataset,
}

impl Perlbench {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Perlbench { dataset }
    }
}

impl Program for Perlbench {
    fn name(&self) -> &str {
        "perlbench"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        m.set_code_footprint(128 * 1024);
        let keys = self.dataset.scaled(3_600);
        let buckets = 4096usize;
        let table = m.alloc(buckets);
        let mut gen = DataGen::new(0x9E71);
        let mut digest = OutputDigest::new();
        let mut collisions = 0u64;
        for k in 0..keys {
            if m.halted() {
                return digest;
            }
            let key = gen.next_u64();
            // FNV-ish hash through machine ops.
            let h1 = m.imul(key | 1, 0x100_0000_01B3);
            let h2 = m.ixor(h1, key >> 17);
            let h3 = m.imul(h2 | 1, 0x9E37_79B9);
            let slot = h3 % buckets as u64;
            let existing = m.load_u64(table.offset(slot));
            if m.branch(existing != 0) {
                collisions = m.iadd(collisions, 1);
                let merged = m.ixor(existing, h3);
                m.store_u64(table.offset(slot), merged);
            } else {
                m.store_u64(table.offset(slot), h3 | 1);
            }
            let _ = k;
        }
        digest.absorb_u64(collisions);
        // Fold a sample of the table into the digest.
        for s in (0..buckets).step_by(37) {
            let v = m.load_u64(table.offset(s as u64));
            digest.absorb_u64(v);
        }
        digest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::nominal_digest;
    use margins_sim::machine::MachineStatus;

    fn all_integer_kernels() -> Vec<Box<dyn Program>> {
        vec![
            Box::new(Mcf::new(Dataset::Ref)),
            Box::new(Gcc::new(Dataset::Ref)),
            Box::new(Gobmk::new(Dataset::Ref)),
            Box::new(Sjeng::new(Dataset::Ref)),
            Box::new(Hmmer::new(Dataset::Ref)),
            Box::new(Libquantum::new(Dataset::Ref)),
            Box::new(H264Ref::new(Dataset::Ref)),
            Box::new(Omnetpp::new(Dataset::Ref)),
            Box::new(Astar::new(Dataset::Ref)),
            Box::new(Bzip2::new(Dataset::Ref)),
            Box::new(Xalancbmk::new(Dataset::Ref)),
            Box::new(Perlbench::new(Dataset::Ref)),
        ]
    }

    #[test]
    fn integer_kernels_deterministic_and_healthy() {
        for p in all_integer_kernels() {
            let (a, _, s) = nominal_digest(p.as_ref());
            let (b, _, _) = nominal_digest(p.as_ref());
            assert_eq!(a, b, "{} digest unstable", p.name());
            assert_eq!(s, MachineStatus::Healthy, "{}", p.name());
        }
    }

    #[test]
    fn integer_kernels_sit_at_the_low_stress_end() {
        for p in all_integer_kernels() {
            let (_, mass, _) = nominal_digest(p.as_ref());
            assert!(
                mass < 3_000.0,
                "{}: integer kernels must be low-stress, got {mass}",
                p.name()
            );
            assert!(mass > 100.0, "{}: but not trivial, got {mass}", p.name());
        }
    }

    #[test]
    fn mcf_is_the_lightest() {
        let (_, mcf, _) = nominal_digest(&Mcf::new(Dataset::Ref));
        for p in all_integer_kernels() {
            if p.name() == "mcf" {
                continue;
            }
            let (_, mass, _) = nominal_digest(p.as_ref());
            assert!(mcf <= mass * 1.4, "mcf {mcf} vs {} {mass}", p.name());
        }
    }
}
