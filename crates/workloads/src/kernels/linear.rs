//! Linear-algebra and field-theory kernels: the middle of the stress-mass
//! range (dealII, soplex, calculix, milc, tonto, gamess).

use crate::suite::Dataset;
use crate::util::DataGen;
use margins_sim::{Machine, OutputDigest, Program};

/// `dealII`-like: adaptive FEM — a sparse matrix–vector product plus a dot
/// product, i.e. a conjugate-gradient step. Indexed loads dominate; FP is
/// light. Stress mass ≈ 3.2k (`ref`).
#[derive(Debug, Clone)]
pub struct DealII {
    dataset: Dataset,
}

impl DealII {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        DealII { dataset }
    }
}

impl Program for DealII {
    fn name(&self) -> &str {
        "dealII"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        let rows = self.dataset.scaled(480);
        let nnz_per_row = 5usize;
        let vals = m.alloc(rows * nnz_per_row);
        let cols = m.alloc(rows * nnz_per_row);
        let x = m.alloc(rows);
        let y = m.alloc(rows);
        let mut gen = DataGen::new(0xDEA111);
        for r in 0..rows {
            m.store_f64(x.offset(r as u64), gen.range_f64(-1.0, 1.0));
            for k in 0..nnz_per_row {
                let slot = (r * nnz_per_row + k) as u64;
                m.store_f64(vals.offset(slot), gen.range_f64(-0.5, 0.5));
                m.store_u64(cols.offset(slot), gen.below(rows as u64));
            }
        }
        let mut digest = OutputDigest::new();
        // SpMV: y = A x.
        for r in 0..rows {
            if m.halted() {
                return digest;
            }
            let mut acc = 0.0;
            for k in 0..nnz_per_row {
                let slot = (r * nnz_per_row + k) as u64;
                let col = m.load_u64(cols.offset(slot));
                let a = m.load_f64(vals.offset(slot));
                // A corrupted column index segfaults, like real dealII would.
                let xv = m.load_f64(x.offset(col));
                acc = m.fma(a, xv, acc);
            }
            m.store_f64(y.offset(r as u64), acc);
        }
        // Dot products for the CG alpha.
        let mut xy = 0.0;
        let mut yy = 0.0;
        for r in 0..rows {
            if m.halted() {
                return digest;
            }
            let xv = m.load_f64(x.offset(r as u64));
            let yv = m.load_f64(y.offset(r as u64));
            xy = m.fma(xv, yv, xy);
            yy = m.fma(yv, yv, yy);
        }
        let alpha = m.fdiv(xy, yy + 1e-9);
        digest.absorb_f64(alpha);
        digest.absorb_f64(xy);
        digest.absorb_f64(yy);
        digest
    }
}

/// `soplex`-like: LP simplex — a ratio test (branch-heavy scan with
/// divides) followed by a pivot row update. Stress mass ≈ 1.6k (`ref`).
#[derive(Debug, Clone)]
pub struct Soplex {
    dataset: Dataset,
}

impl Soplex {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Soplex { dataset }
    }
}

impl Program for Soplex {
    fn name(&self) -> &str {
        "soplex"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        let cols = self.dataset.scaled(900);
        let pivots = 4usize;
        let tableau = m.alloc(cols * 2);
        let rhs = m.alloc(cols);
        let mut gen = DataGen::new(0x50_97E4);
        let mut digest = OutputDigest::new();
        for c in 0..cols {
            m.store_f64(tableau.offset(c as u64), gen.range_f64(0.1, 2.0));
            m.store_f64(tableau.offset((cols + c) as u64), gen.range_f64(-1.0, 1.0));
            m.store_f64(rhs.offset(c as u64), gen.range_f64(0.5, 3.0));
        }
        let mut objective = 0.0;
        for _ in 0..pivots {
            if m.halted() {
                return digest;
            }
            // Ratio test: find the entering column.
            let mut best = f64::INFINITY;
            let mut best_col = 0usize;
            for c in 0..cols {
                let a = m.load_f64(tableau.offset(c as u64));
                let b = m.load_f64(rhs.offset(c as u64));
                if m.branch(a > 1.85) {
                    let ratio = m.fdiv(b, a);
                    if m.branch(ratio < best) {
                        best = ratio;
                        best_col = c;
                    }
                }
            }
            // Pivot update on the second tableau row.
            let pivot = m.load_f64(tableau.offset(best_col as u64));
            let inv = m.fdiv(1.0, pivot + 1e-9);
            for c in (0..cols).step_by(3) {
                let v = m.load_f64(tableau.offset((cols + c) as u64));
                let scaled = m.fmul(v, inv);
                m.store_f64(tableau.offset((cols + c) as u64), scaled);
            }
            objective = m.fadd(objective, best);
            digest.absorb_u64(best_col as u64);
        }
        digest.absorb_u64(cols as u64);
        digest.absorb_f64(objective);
        digest
    }
}

/// `calculix`-like: structural FEM — blocked dense Cholesky factorization
/// with square roots and divides on the diagonal. Stress mass ≈ 5.5k
/// (`ref`).
#[derive(Debug, Clone)]
pub struct Calculix {
    dataset: Dataset,
}

impl Calculix {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Calculix { dataset }
    }
}

impl Program for Calculix {
    fn name(&self) -> &str {
        "calculix"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        let nb = 24usize;
        let blocks = self.dataset.scaled(2);
        let a = m.alloc(nb * nb);
        let mut digest = OutputDigest::new();
        for block in 0..blocks {
            let mut gen = DataGen::new(0xCA1C + block as u64);
            // SPD-ish matrix: diagonal dominance.
            for i in 0..nb {
                for j in 0..nb {
                    let v = if i == j {
                        gen.range_f64(float_of(nb), float_of(nb) + 4.0)
                    } else {
                        gen.range_f64(-0.5, 0.5)
                    };
                    m.store_f64(a.offset((i * nb + j) as u64), v);
                }
            }
            // In-place Cholesky (lower).
            for k in 0..nb {
                if m.halted() {
                    return digest;
                }
                let akk = m.load_f64(a.offset((k * nb + k) as u64));
                let lkk = m.fsqrt(akk.max(1e-9));
                m.store_f64(a.offset((k * nb + k) as u64), lkk);
                let inv = m.fdiv(1.0, lkk);
                for i in (k + 1)..nb {
                    let aik = m.load_f64(a.offset((i * nb + k) as u64));
                    let lik = m.fmul(aik, inv);
                    m.store_f64(a.offset((i * nb + k) as u64), lik);
                }
                for j in (k + 1)..nb {
                    let ljk = m.load_f64(a.offset((j * nb + k) as u64));
                    for i in j..nb {
                        let lik = m.load_f64(a.offset((i * nb + k) as u64));
                        let aij = m.load_f64(a.offset((i * nb + j) as u64));
                        let prod = m.fmul(lik, ljk);
                        let upd = m.fsub(aij, prod);
                        m.store_f64(a.offset((i * nb + j) as u64), upd);
                    }
                }
            }
            // Determinant-ish: product of diagonal entries.
            let mut logdet = 0.0;
            for k in 0..nb {
                let lkk = m.load_f64(a.offset((k * nb + k) as u64));
                logdet = m.fadd(logdet, lkk);
            }
            digest.absorb_f64(logdet);
        }
        digest
    }
}

fn float_of(n: usize) -> f64 {
    n as f64
}

/// `milc`-like: lattice QCD — SU(3) complex 3×3 matrix products. Dense
/// multiply/add chains. Stress mass ≈ 10k (`ref`).
#[derive(Debug, Clone)]
pub struct Milc {
    dataset: Dataset,
}

impl Milc {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Milc { dataset }
    }
}

impl Program for Milc {
    fn name(&self) -> &str {
        "milc"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        let links = self.dataset.scaled(78);
        // Each SU(3) matrix: 9 complex entries (re, im) = 18 f64.
        let a = m.alloc(18 * links);
        let b = m.alloc(18 * links);
        let mut gen = DataGen::new(0x311C);
        for i in 0..18 * links {
            m.store_f64(a.offset(i as u64), gen.range_f64(-1.0, 1.0));
            m.store_f64(b.offset(i as u64), gen.range_f64(-1.0, 1.0));
        }
        let mut digest = OutputDigest::new();
        let mut plaquette = 0.0;
        for l in 0..links {
            if m.halted() {
                return digest;
            }
            let abase = (18 * l) as u64;
            let bbase = (18 * l) as u64;
            // C = A × B, complex 3×3.
            for i in 0..3u64 {
                for j in 0..3u64 {
                    let mut cre = 0.0;
                    let mut cim = 0.0;
                    for k in 0..3u64 {
                        let are = m.load_f64(a.offset(abase + 2 * (3 * i + k)));
                        let aim = m.load_f64(a.offset(abase + 2 * (3 * i + k) + 1));
                        let bre = m.load_f64(b.offset(bbase + 2 * (3 * k + j)));
                        let bim = m.load_f64(b.offset(bbase + 2 * (3 * k + j) + 1));
                        let rr = m.fmul(are, bre);
                        let ii = m.fmul(aim, bim);
                        let ri = m.fmul(are, bim);
                        let ir = m.fmul(aim, bre);
                        let re = m.fsub(rr, ii);
                        let im = m.fadd(ri, ir);
                        cre = m.fadd(cre, re);
                        cim = m.fadd(cim, im);
                    }
                    if i == j {
                        plaquette = m.fadd(plaquette, cre);
                        plaquette = m.fadd(plaquette, cim);
                    }
                }
            }
        }
        digest.absorb_f64(plaquette);
        digest
    }
}

/// `tonto`-like: quantum chemistry — two-electron integral evaluation with
/// square roots and divides per shell pair. Stress mass ≈ 7k (`ref`).
#[derive(Debug, Clone)]
pub struct Tonto {
    dataset: Dataset,
}

impl Tonto {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Tonto { dataset }
    }
}

impl Program for Tonto {
    fn name(&self) -> &str {
        "tonto"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        let pairs = self.dataset.scaled(850);
        let centers = m.alloc(pairs * 2);
        let mut gen = DataGen::new(0x70470);
        for i in 0..pairs * 2 {
            m.store_f64(centers.offset(i as u64), gen.range_f64(0.1, 4.0));
        }
        let mut digest = OutputDigest::new();
        let mut fock = 0.0;
        for p in 0..pairs {
            if m.halted() {
                return digest;
            }
            let za = m.load_f64(centers.offset((2 * p) as u64));
            let zb = m.load_f64(centers.offset((2 * p + 1) as u64));
            let zsum = m.fadd(za, zb);
            let zprod = m.fmul(za, zb);
            let xi = m.fdiv(zprod, zsum);
            let root = m.fsqrt(xi);
            let overlap = m.fmul(root, 0.7978845608);
            let kinetic = m.fmul(xi, overlap);
            if m.branch(kinetic > 0.3) {
                fock = m.fadd(fock, kinetic);
            } else {
                fock = m.fma(overlap, 0.5, fock);
            }
        }
        digest.absorb_f64(fock);
        digest
    }
}

/// `gamess`-like: lighter quantum-chemistry SCF iteration — mostly
/// multiply/add with occasional square roots. Stress mass ≈ 2.5k (`ref`).
#[derive(Debug, Clone)]
pub struct Gamess {
    dataset: Dataset,
}

impl Gamess {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Gamess { dataset }
    }
}

impl Program for Gamess {
    fn name(&self) -> &str {
        "gamess"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        let items = self.dataset.scaled(860);
        let density = m.alloc(items);
        let mut gen = DataGen::new(0x6A3E55);
        for i in 0..items {
            m.store_f64(density.offset(i as u64), gen.range_f64(0.0, 1.0));
        }
        let mut digest = OutputDigest::new();
        let mut scf = 0.0;
        for i in 0..items {
            if m.halted() {
                return digest;
            }
            let d = m.load_f64(density.offset(i as u64));
            let h = m.fmul(d, 1.375);
            let g = m.fma(d, d, 0.25);
            let e = m.fadd(h, g);
            let mixed = if i % 4 == 0 {
                m.fsqrt(e)
            } else {
                m.fmul(e, 0.5)
            };
            scf = m.fadd(scf, mixed);
            m.store_f64(density.offset(i as u64), mixed);
        }
        digest.absorb_f64(scf);
        digest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::nominal_digest;
    use margins_sim::machine::MachineStatus;

    #[test]
    fn kernels_are_deterministic_and_healthy_at_nominal() {
        let kernels: [Box<dyn Program>; 6] = [
            Box::new(DealII::new(Dataset::Ref)),
            Box::new(Soplex::new(Dataset::Ref)),
            Box::new(Calculix::new(Dataset::Ref)),
            Box::new(Milc::new(Dataset::Ref)),
            Box::new(Tonto::new(Dataset::Ref)),
            Box::new(Gamess::new(Dataset::Ref)),
        ];
        for p in &kernels {
            let (a, _, s) = nominal_digest(p.as_ref());
            let (b, _, _) = nominal_digest(p.as_ref());
            assert_eq!(a, b, "{}", p.name());
            assert_eq!(s, MachineStatus::Healthy, "{}", p.name());
        }
    }

    #[test]
    fn stress_ordering_milc_above_dealii_above_soplex() {
        let (_, milc, _) = nominal_digest(&Milc::new(Dataset::Ref));
        let (_, dealii, _) = nominal_digest(&DealII::new(Dataset::Ref));
        let (_, soplex, _) = nominal_digest(&Soplex::new(Dataset::Ref));
        assert!(milc > dealii, "milc {milc} dealII {dealii}");
        assert!(dealii > soplex, "dealII {dealii} soplex {soplex}");
    }

    #[test]
    fn stress_masses_in_band() {
        let cases: [(Box<dyn Program>, f64, f64); 6] = [
            (Box::new(Milc::new(Dataset::Ref)), 6_000.0, 16_000.0),
            (Box::new(Tonto::new(Dataset::Ref)), 4_500.0, 11_000.0),
            (Box::new(Calculix::new(Dataset::Ref)), 3_500.0, 9_000.0),
            (Box::new(DealII::new(Dataset::Ref)), 2_000.0, 5_000.0),
            (Box::new(Gamess::new(Dataset::Ref)), 1_400.0, 4_200.0),
            (Box::new(Soplex::new(Dataset::Ref)), 800.0, 3_000.0),
        ];
        for (p, lo, hi) in cases {
            let (_, mass, _) = nominal_digest(p.as_ref());
            assert!(
                mass >= lo && mass <= hi,
                "{}: stress mass {mass} outside [{lo}, {hi}]",
                p.name()
            );
        }
    }
}
