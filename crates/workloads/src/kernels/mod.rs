//! The 26 SPEC CPU2006-like kernels.
//!
//! Grouped by microarchitectural character:
//!
//! * [`fp_stencil`] — FP stencil/grid codes (bwaves, leslie3d, cactusADM,
//!   zeusmp, lbm, GemsFDTD): high FP stress, regular memory.
//! * [`linear`] — linear algebra & field theory (dealII, soplex, calculix,
//!   milc, tonto, gamess): mixed FP, indexed accesses.
//! * [`md`] — molecular dynamics (gromacs, namd): pair-force loops with
//!   divide/sqrt (gromacs) vs. regular multiply-add (namd).
//! * [`integer`] — integer/pointer codes (mcf, gcc, gobmk, sjeng, hmmer,
//!   libquantum, h264ref, omnetpp, astar, bzip2, xalancbmk, perlbench):
//!   low FP stress, heavy branches/memory — these carry the low end of the
//!   Vmin spread of Figure 4.
//!
//! Every kernel documents its approximate *stress mass* (Σ of per-op path
//! stress weights), the quantity that positions its safe Vmin inside the
//! 860–885 mV robust-core band.

pub mod fp_stencil;
pub mod integer;
pub mod linear;
pub mod md;

pub use fp_stencil::{Bwaves, CactusAdm, GemsFdtd, Lbm, Leslie3d, Zeusmp};
pub use integer::{
    Astar, Bzip2, Gcc, Gobmk, H264Ref, Hmmer, Libquantum, Mcf, Omnetpp, Perlbench, Sjeng, Xalancbmk,
};
pub use linear::{Calculix, DealII, Gamess, Milc, Soplex, Tonto};
pub use md::{Gromacs, Namd};
