//! Floating-point stencil/grid kernels: the high-stress end of the suite.
//!
//! These mirror the CFD/field codes of SPEC CPU2006 (bwaves, leslie3d,
//! cactusADM, zeusmp, lbm, GemsFDTD): regular sweeps over multi-dimensional
//! grids with dense FP arithmetic. Their large stress masses put their safe
//! Vmin at the *top* of the per-core band in Figure 4 (bwaves highest), and
//! their long FP chains make them the SDC-prone workloads of §3.4.

use crate::suite::Dataset;
use crate::util::DataGen;
use margins_sim::machine::Addr;
use margins_sim::{Machine, OutputDigest, Program};

fn fill_grid(m: &mut Machine<'_>, base: Addr, n: usize, gen: &mut DataGen) {
    for i in 0..n {
        m.store_f64(base.offset(i as u64), gen.range_f64(0.5, 2.0));
    }
}

/// `bwaves`-like: blast-wave 3D Euler stencil — 7-point neighbourhood with
/// a divide per point. Stress mass ≈ 45k (`ref`): the highest of the suite,
/// anchoring the top of the Vmin band and the wide unsafe region the paper
/// highlights for bwaves (Figure 5).
#[derive(Debug, Clone)]
pub struct Bwaves {
    dataset: Dataset,
}

impl Bwaves {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Bwaves { dataset }
    }
}

impl Program for Bwaves {
    fn name(&self) -> &str {
        "bwaves"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        let (nx, ny, nz) = (18, 18, self.dataset.scaled(20));
        let n = nx * ny * nz;
        let grid = m.alloc(n);
        let out = m.alloc(n);
        let mut gen = DataGen::new(0xB3A7E5);
        fill_grid(m, grid, n, &mut gen);

        let idx = |x: usize, y: usize, z: usize| (x + nx * (y + ny * z)) as u64;
        let mut digest = OutputDigest::new();
        let mut total = 0.0f64;
        for z in 1..nz - 1 {
            for y in 1..ny - 1 {
                for x in 1..nx - 1 {
                    if m.halted() {
                        return digest;
                    }
                    let c = m.load_f64(grid.offset(idx(x, y, z)));
                    let e = m.load_f64(grid.offset(idx(x + 1, y, z)));
                    let w = m.load_f64(grid.offset(idx(x - 1, y, z)));
                    let no = m.load_f64(grid.offset(idx(x, y + 1, z)));
                    let s = m.load_f64(grid.offset(idx(x, y - 1, z)));
                    let u = m.load_f64(grid.offset(idx(x, y, z + 1)));
                    let d = m.load_f64(grid.offset(idx(x, y, z - 1)));
                    let ew = m.fadd(e, w);
                    let ns = m.fadd(no, s);
                    let ud = m.fadd(u, d);
                    let t1 = m.fmul(ew, 0.18);
                    let t2 = m.fmul(ns, 0.16);
                    let t3 = m.fmul(ud, 0.14);
                    let t12 = m.fadd(t1, t2);
                    let lap = m.fadd(t12, t3);
                    let denom = m.fadd(c, 2.0);
                    let flux = m.fdiv(lap, denom);
                    let diff = m.fsub(flux, c);
                    let new = m.fmul(diff, 0.93);
                    m.store_f64(out.offset(idx(x, y, z)), new);
                    if m.branch(new > 0.0) {
                        total = m.fadd(total, new);
                    } else {
                        total = m.fsub(total, new);
                    }
                }
            }
        }
        digest.absorb_f64(total);
        for i in (0..n).step_by(97) {
            let v = m.load_f64(out.offset(i as u64));
            digest.absorb_f64(v);
        }
        digest
    }
}

/// `leslie3d`-like: large-eddy CFD — a 9-point fused-multiply-add stencil
/// over a wide 2D slab. Stress mass ≈ 30k (`ref`); the benchmark the paper
/// uses for its §5 domain-limit example (robust PMD 880 mV vs sensitive
/// PMD 915 mV).
#[derive(Debug, Clone)]
pub struct Leslie3d {
    dataset: Dataset,
}

impl Leslie3d {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Leslie3d { dataset }
    }
}

impl Program for Leslie3d {
    fn name(&self) -> &str {
        "leslie3d"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        let nx = 120;
        let ny = self.dataset.scaled(36);
        let n = nx * ny;
        let grid = m.alloc(n);
        let out = m.alloc(n);
        let mut gen = DataGen::new(0x1E511E);
        fill_grid(m, grid, n, &mut gen);
        let idx = |x: usize, y: usize| (x + nx * y) as u64;
        let mut digest = OutputDigest::new();
        let mut energy = 0.0;
        for y in 1..ny - 1 {
            for x in 1..nx - 1 {
                if m.halted() {
                    return digest;
                }
                let c = m.load_f64(grid.offset(idx(x, y)));
                let mut acc = m.fmul(c, -0.82);
                for (dx, dy, w) in [
                    (1isize, 0isize, 0.21),
                    (-1, 0, 0.21),
                    (0, 1, 0.19),
                    (0, -1, 0.19),
                    (1, 1, 0.055),
                    (1, -1, 0.055),
                    (-1, 1, 0.055),
                    (-1, -1, 0.055),
                ] {
                    let v = m.load_f64(
                        grid.offset(idx((x as isize + dx) as usize, (y as isize + dy) as usize)),
                    );
                    acc = m.fma(v, w, acc);
                }
                let damped = m.fmul(acc, 0.97);
                m.store_f64(out.offset(idx(x, y)), damped);
                energy = m.fma(damped, damped, energy);
            }
        }
        digest.absorb_f64(energy);
        for i in (0..n).step_by(61) {
            let v = m.load_f64(out.offset(i as u64));
            digest.absorb_f64(v);
        }
        digest
    }
}

/// `cactusADM`-like: numerical relativity — staggered-grid update with a
/// square root in the lapse computation. Stress mass ≈ 19k (`ref`).
#[derive(Debug, Clone)]
pub struct CactusAdm {
    dataset: Dataset,
}

impl CactusAdm {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        CactusAdm { dataset }
    }
}

impl Program for CactusAdm {
    fn name(&self) -> &str {
        "cactusADM"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        let (nx, ny, nz) = (16, 16, self.dataset.scaled(16));
        let n = nx * ny * nz;
        let metric = m.alloc(n);
        let curv = m.alloc(n);
        let mut gen = DataGen::new(0xCAC105);
        fill_grid(m, metric, n, &mut gen);
        fill_grid(m, curv, n, &mut gen);
        let idx = |x: usize, y: usize, z: usize| (x + nx * (y + ny * z)) as u64;
        let mut digest = OutputDigest::new();
        let mut trace = 0.0;
        for z in 1..nz - 1 {
            for y in 1..ny - 1 {
                for x in 1..nx - 1 {
                    if m.halted() {
                        return digest;
                    }
                    let g = m.load_f64(metric.offset(idx(x, y, z)));
                    let k = m.load_f64(curv.offset(idx(x, y, z)));
                    let gx = m.load_f64(metric.offset(idx(x + 1, y, z)));
                    let gy = m.load_f64(metric.offset(idx(x, y + 1, z)));
                    let gz = m.load_f64(metric.offset(idx(x, y, z + 1)));
                    let s1 = m.fmul(gx, gy);
                    let s2 = m.fmul(s1, gz);
                    let s3 = m.fadd(s2, 0.1);
                    // Lapse ~ sqrt(det g) every fourth point.
                    let lapse = if (x + y + z) % 4 == 0 {
                        m.fsqrt(s3)
                    } else {
                        m.fmul(s3, 0.5)
                    };
                    let dk = m.fmul(lapse, k);
                    let step = m.fmul(dk, 0.02);
                    let knew = m.fsub(k, step);
                    m.store_f64(curv.offset(idx(x, y, z)), knew);
                    let gnew = m.fma(g, 0.995, 0.002);
                    m.store_f64(metric.offset(idx(x, y, z)), gnew);
                    trace = m.fadd(trace, knew);
                }
            }
        }
        digest.absorb_f64(trace);
        for i in (0..n).step_by(83) {
            let v = m.load_f64(curv.offset(i as u64));
            digest.absorb_f64(v);
        }
        digest
    }
}

/// `zeusmp`-like: magnetohydrodynamics — two alternating directional passes
/// of a lighter stencil. Stress mass ≈ 15k (`ref`).
#[derive(Debug, Clone)]
pub struct Zeusmp {
    dataset: Dataset,
}

impl Zeusmp {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Zeusmp { dataset }
    }
}

impl Program for Zeusmp {
    fn name(&self) -> &str {
        "zeusmp"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        let nx = 80;
        let ny = self.dataset.scaled(44);
        let n = nx * ny;
        let v_field = m.alloc(n);
        let b_field = m.alloc(n);
        let mut gen = DataGen::new(0x2E05);
        fill_grid(m, v_field, n, &mut gen);
        fill_grid(m, b_field, n, &mut gen);
        let idx = |x: usize, y: usize| (x + nx * y) as u64;
        let mut digest = OutputDigest::new();
        let mut flux = 0.0;
        // X pass: advect v against b.
        for y in 0..ny {
            for x in 1..nx - 1 {
                if m.halted() {
                    return digest;
                }
                let v0 = m.load_f64(v_field.offset(idx(x, y)));
                let vl = m.load_f64(v_field.offset(idx(x - 1, y)));
                let b = m.load_f64(b_field.offset(idx(x, y)));
                let grad = m.fsub(v0, vl);
                let adv = m.fmul(grad, 0.4);
                let push = m.fmul(b, 0.05);
                let delta = m.fadd(adv, push);
                let vn = m.fsub(v0, delta);
                m.store_f64(v_field.offset(idx(x, y)), vn);
            }
        }
        // Y pass: update b from v curl.
        for y in 1..ny - 1 {
            for x in 0..nx {
                if m.halted() {
                    return digest;
                }
                let b0 = m.load_f64(b_field.offset(idx(x, y)));
                let vd = m.load_f64(v_field.offset(idx(x, y - 1)));
                let vu = m.load_f64(v_field.offset(idx(x, y)));
                let curl = m.fsub(vu, vd);
                let bn = m.fma(curl, 0.12, b0);
                m.store_f64(b_field.offset(idx(x, y)), bn);
                if m.branch(bn > 1.0) {
                    flux = m.fadd(flux, bn);
                }
            }
        }
        digest.absorb_f64(flux);
        for i in (0..n).step_by(71) {
            let v = m.load_f64(b_field.offset(i as u64));
            digest.absorb_f64(v);
        }
        digest
    }
}

/// `lbm`-like: lattice Boltzmann — streaming-dominated with moderate FP;
/// its working set far exceeds the L2 so it stresses L3/DRAM. Stress mass
/// ≈ 8k (`ref`).
#[derive(Debug, Clone)]
pub struct Lbm {
    dataset: Dataset,
}

impl Lbm {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Lbm { dataset }
    }
}

impl Program for Lbm {
    fn name(&self) -> &str {
        "lbm"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        // 9 distributions × a large cell count: working set ≈ 3 MB so the
        // streaming sweep spills past L2 into L3.
        let cells = self.dataset.scaled(40_000);
        let q = 9usize;
        let f = m.alloc(cells * q);
        let mut gen = DataGen::new(0x1B3);
        // Initialize a sparse subset; untouched cells stay zero (the
        // allocator zero-fills), keeping initialization cheap.
        for i in (0..cells * q).step_by(7) {
            m.store_f64(f.offset(i as u64), gen.range_f64(0.0, 0.1));
        }
        let sweep = self.dataset.scaled(1_100);
        let mut digest = OutputDigest::new();
        let mut mass = 0.0;
        let stride = 613usize; // co-prime with cells: a scattered stream
        let mut cell = 0usize;
        for _ in 0..sweep {
            if m.halted() {
                return digest;
            }
            cell = (cell + stride) % cells;
            let base = (cell * q) as u64;
            let mut rho = 0.0;
            for k in 0..q {
                let fi = m.load_f64(f.offset(base + k as u64));
                rho = m.fadd(rho, fi);
            }
            let eq = m.fmul(rho, 1.0 / 9.0);
            let f0 = m.load_f64(f.offset(base));
            let delta = m.fsub(eq, f0);
            let relaxed = m.fma(delta, 0.6, f0);
            m.store_f64(f.offset(base), relaxed);
            mass = m.fadd(mass, rho);
        }
        digest.absorb_f64(mass);
        digest
    }
}

/// `GemsFDTD`-like: finite-difference time domain — interleaved E/H field
/// updates, memory heavy with moderate FP. Stress mass ≈ 12k (`ref`).
#[derive(Debug, Clone)]
pub struct GemsFdtd {
    dataset: Dataset,
}

impl GemsFdtd {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        GemsFdtd { dataset }
    }
}

impl Program for GemsFdtd {
    fn name(&self) -> &str {
        "GemsFDTD"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        let nx = 96;
        let ny = self.dataset.scaled(42);
        let n = nx * ny;
        let e_field = m.alloc(n);
        let h_field = m.alloc(n);
        let mut gen = DataGen::new(0xFD7D);
        fill_grid(m, e_field, n, &mut gen);
        fill_grid(m, h_field, n, &mut gen);
        let idx = |x: usize, y: usize| (x + nx * y) as u64;
        let mut digest = OutputDigest::new();
        let mut poynting = 0.0;
        for y in 1..ny - 1 {
            for x in 1..nx - 1 {
                if m.halted() {
                    return digest;
                }
                let e0 = m.load_f64(e_field.offset(idx(x, y)));
                let hx = m.load_f64(h_field.offset(idx(x + 1, y)));
                let h0 = m.load_f64(h_field.offset(idx(x, y)));
                let curl_h = m.fsub(hx, h0);
                let en = m.fma(curl_h, 0.45, e0);
                m.store_f64(e_field.offset(idx(x, y)), en);

                let ey = m.load_f64(e_field.offset(idx(x, y + 1)));
                let curl_e = m.fsub(ey, en);
                let hn = m.fma(curl_e, 0.45, h0);
                m.store_f64(h_field.offset(idx(x, y)), hn);
                poynting = m.fma(en, hn, poynting);
            }
        }
        digest.absorb_f64(poynting);
        for i in (0..n).step_by(89) {
            let v = m.load_f64(e_field.offset(i as u64));
            digest.absorb_f64(v);
        }
        digest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::nominal_digest;
    use margins_sim::machine::MachineStatus;

    #[test]
    fn kernels_are_deterministic_at_nominal() {
        for p in [
            Box::new(Bwaves::new(Dataset::Ref)) as Box<dyn Program>,
            Box::new(Leslie3d::new(Dataset::Ref)),
            Box::new(CactusAdm::new(Dataset::Ref)),
            Box::new(Zeusmp::new(Dataset::Ref)),
            Box::new(Lbm::new(Dataset::Ref)),
            Box::new(GemsFdtd::new(Dataset::Ref)),
        ] {
            let (a, _, s) = nominal_digest(p.as_ref());
            let (b, _, _) = nominal_digest(p.as_ref());
            assert_eq!(a, b, "{} digest unstable", p.name());
            assert_eq!(s, MachineStatus::Healthy, "{}", p.name());
        }
    }

    #[test]
    fn stress_masses_land_in_their_design_bands() {
        let cases: [(Box<dyn Program>, f64, f64); 6] = [
            (Box::new(Bwaves::new(Dataset::Ref)), 30_000.0, 65_000.0),
            (Box::new(Leslie3d::new(Dataset::Ref)), 20_000.0, 42_000.0),
            (Box::new(CactusAdm::new(Dataset::Ref)), 12_000.0, 28_000.0),
            (Box::new(Zeusmp::new(Dataset::Ref)), 9_000.0, 21_000.0),
            (Box::new(GemsFdtd::new(Dataset::Ref)), 7_000.0, 16_000.0),
            (Box::new(Lbm::new(Dataset::Ref)), 4_500.0, 12_000.0),
        ];
        for (p, lo, hi) in cases {
            let (_, mass, _) = nominal_digest(p.as_ref());
            assert!(
                mass >= lo && mass <= hi,
                "{}: stress mass {mass} outside [{lo}, {hi}]",
                p.name()
            );
        }
    }

    #[test]
    fn train_dataset_is_smaller() {
        let (_, mref, _) = nominal_digest(&Bwaves::new(Dataset::Ref));
        let (_, mtrain, _) = nominal_digest(&Bwaves::new(Dataset::Train));
        assert!(mtrain < mref);
        assert!(mtrain > mref * 0.3);
    }

    #[test]
    fn bwaves_has_the_highest_stress() {
        let (_, bwaves, _) = nominal_digest(&Bwaves::new(Dataset::Ref));
        for other in [
            &Leslie3d::new(Dataset::Ref) as &dyn Program,
            &CactusAdm::new(Dataset::Ref),
            &Zeusmp::new(Dataset::Ref),
            &Lbm::new(Dataset::Ref),
            &GemsFdtd::new(Dataset::Ref),
        ] {
            let (_, mass, _) = nominal_digest(other);
            assert!(bwaves > mass, "bwaves {bwaves} vs {} {mass}", other.name());
        }
    }
}
