//! Molecular-dynamics kernels: gromacs (divide/sqrt-heavy pair forces) and
//! namd (regular multiply-add force loop).

use crate::suite::Dataset;
use crate::util::DataGen;
use margins_sim::{Machine, OutputDigest, Program};

/// `gromacs`-like: Lennard-Jones pair forces with reciprocal distances —
/// divides and square roots inside the cutoff make it mid/high-stress.
/// Stress mass ≈ 6k (`ref`).
#[derive(Debug, Clone)]
pub struct Gromacs {
    dataset: Dataset,
}

impl Gromacs {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Gromacs { dataset }
    }
}

impl Program for Gromacs {
    fn name(&self) -> &str {
        "gromacs"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        let pairs = self.dataset.scaled(820);
        let atoms = 512usize;
        let pos = m.alloc(atoms * 3);
        let force = m.alloc(atoms * 3);
        let mut gen = DataGen::new(0x6A0);
        for i in 0..atoms * 3 {
            m.store_f64(pos.offset(i as u64), gen.range_f64(0.0, 8.0));
        }
        let mut digest = OutputDigest::new();
        let mut potential = 0.0;
        for p in 0..pairs {
            if m.halted() {
                return digest;
            }
            let i = (p * 7) % atoms;
            let j = (p * 13 + 1) % atoms;
            let mut rsq = 1e-6;
            let mut dx = [0.0f64; 3];
            for (d, slot) in dx.iter_mut().enumerate() {
                let xi = m.load_f64(pos.offset((3 * i + d) as u64));
                let xj = m.load_f64(pos.offset((3 * j + d) as u64));
                let diff = m.fsub(xi, xj);
                *slot = diff;
                rsq = m.fma(diff, diff, rsq);
            }
            // Cutoff: within range compute the LJ force with 1/r terms.
            if m.branch(rsq < 18.0) {
                let r = m.fsqrt(rsq);
                let inv_r = m.fdiv(1.0, r);
                let inv_r2 = m.fmul(inv_r, inv_r);
                let inv_r6 = {
                    let t = m.fmul(inv_r2, inv_r2);
                    m.fmul(t, inv_r2)
                };
                let inv_r12 = m.fmul(inv_r6, inv_r6);
                let e = m.fsub(inv_r12, inv_r6);
                potential = m.fadd(potential, e);
                let scale = m.fmul(e, 4.0);
                for (d, diff) in dx.iter().enumerate() {
                    let fi = m.load_f64(force.offset((3 * i + d) as u64));
                    let fn_ = m.fma(*diff, scale, fi);
                    m.store_f64(force.offset((3 * i + d) as u64), fn_);
                }
            } else {
                potential = m.fadd(potential, 0.001);
            }
        }
        digest.absorb_f64(potential);
        for i in (0..atoms * 3).step_by(29) {
            let f = m.load_f64(force.offset(i as u64));
            digest.absorb_f64(f);
        }
        digest
    }
}

/// `namd`-like: a regular neighbour-list force loop — multiply-add only
/// (the reciprocals come from a precomputed interpolation table, as in the
/// real NAMD). Low/mid stress mass ≈ 2k (`ref`).
#[derive(Debug, Clone)]
pub struct Namd {
    dataset: Dataset,
}

impl Namd {
    /// Creates the kernel for `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset) -> Self {
        Namd { dataset }
    }
}

impl Program for Namd {
    fn name(&self) -> &str {
        "namd"
    }

    fn dataset(&self) -> &str {
        self.dataset.label()
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        let interactions = self.dataset.scaled(830);
        let table_size = 1024usize;
        let table = m.alloc(table_size);
        let charges = m.alloc(table_size);
        let mut gen = DataGen::new(0x4A3D);
        for i in 0..table_size {
            m.store_f64(table.offset(i as u64), gen.range_f64(0.0, 2.0));
            m.store_f64(charges.offset(i as u64), gen.range_f64(-1.0, 1.0));
        }
        let mut digest = OutputDigest::new();
        let mut virial = 0.0;
        for k in 0..interactions {
            if m.halted() {
                return digest;
            }
            let slot = ((k * 37) % table_size) as u64;
            let qslot = ((k * 11 + 3) % table_size) as u64;
            let tabled = m.load_f64(table.offset(slot));
            let q = m.load_f64(charges.offset(qslot));
            let f = m.fmul(tabled, q);
            let e = m.fma(f, 0.5, 0.01);
            virial = m.fadd(virial, e);
            m.store_f64(table.offset(slot), e);
        }
        digest.absorb_f64(virial);
        digest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::nominal_digest;
    use margins_sim::machine::MachineStatus;

    #[test]
    fn md_kernels_deterministic_and_healthy() {
        for p in [
            Box::new(Gromacs::new(Dataset::Ref)) as Box<dyn Program>,
            Box::new(Namd::new(Dataset::Ref)),
        ] {
            let (a, _, s) = nominal_digest(p.as_ref());
            let (b, _, _) = nominal_digest(p.as_ref());
            assert_eq!(a, b, "{}", p.name());
            assert_eq!(s, MachineStatus::Healthy);
        }
    }

    #[test]
    fn gromacs_outweighs_namd() {
        let (_, g, _) = nominal_digest(&Gromacs::new(Dataset::Ref));
        let (_, n, _) = nominal_digest(&Namd::new(Dataset::Ref));
        assert!(g > n, "gromacs {g} vs namd {n}");
    }

    #[test]
    fn masses_in_band() {
        let (_, g, _) = nominal_digest(&Gromacs::new(Dataset::Ref));
        assert!((3_500.0..11_000.0).contains(&g), "gromacs {g}");
        let (_, n, _) = nominal_digest(&Namd::new(Dataset::Ref));
        assert!((1_000.0..3_500.0).contains(&n), "namd {n}");
    }
}
