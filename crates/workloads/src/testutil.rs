//! Shared helpers for kernel unit tests.

use margins_sim::cache::CacheHierarchy;
use margins_sim::edac::EdacLog;
use margins_sim::freq::TimingRegime;
use margins_sim::machine::{MachineParams, MachineStatus};
use margins_sim::{ChipSpec, CoreId, Corner, Machine, OutputDigest, Program};

/// Runs `p` once at nominal conditions on a fresh TTT chip and returns
/// (digest, stress mass, final machine status).
pub(crate) fn nominal_digest(p: &dyn Program) -> (OutputDigest, f64, MachineStatus) {
    let mut caches = CacheHierarchy::new(ChipSpec::new(Corner::Ttt, 0));
    let mut edac = EdacLog::new();
    let params = MachineParams {
        core: CoreId::new(0),
        pmd_mv: 980.0,
        soc_mv: 950.0,
        regime: TimingRegime::FullSpeed,
        vcrit_mv: 886.0,
        thermal_shift_mv: 0.0,
        seed: 42,
        enhancements: margins_sim::Enhancements::stock(),
    };
    let mut m = Machine::new(params, &mut caches, &mut edac);
    let d = p.run(&mut m);
    let rep = m.finalize();
    (d, rep.stress_mass, rep.status)
}
