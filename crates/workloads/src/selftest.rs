//! The component-focused self-tests of §3.4.
//!
//! "We developed and ran self-tests that separately stress each cache level
//! independently as well as the ALU and FPU. Cache tests completely fill
//! the cache arrays and flip all the bits of each cache block to check for
//! cell bit errors during undervolting. ALU and FPU tests perform multiple
//! different concurrent operations in each unit with random values to
//! stress different paths and conditions."
//!
//! On the simulated chip, as on the real X-Gene 2, the ALU/FPU tests start
//! failing (SDCs) at much *higher* voltages than the cache tests — the chip
//! is timing-path dominated, not SRAM dominated.

use crate::util::DataGen;
use margins_sim::topology::{CacheLevel, LINE_BYTES};
use margins_sim::{Machine, OutputDigest, Program};

/// A march-style cache test targeting one cache level: fills an array of
/// exactly that level's capacity, writes a pattern, flips every bit (writes
/// the complement), and checks the read-back, folding mismatches into the
/// digest.
#[derive(Debug, Clone)]
pub struct CacheTest {
    level: CacheLevel,
    passes: usize,
}

impl CacheTest {
    /// A test for the given cache level (one march pass).
    #[must_use]
    pub fn new(level: CacheLevel) -> Self {
        CacheTest { level, passes: 1 }
    }

    /// Overrides the number of march passes.
    #[must_use]
    pub fn with_passes(mut self, passes: usize) -> Self {
        self.passes = passes.max(1);
        self
    }

    /// The targeted cache level.
    #[must_use]
    pub fn level(&self) -> CacheLevel {
        self.level
    }
}

impl Program for CacheTest {
    fn name(&self) -> &str {
        match self.level {
            CacheLevel::L1I => "selftest-l1i",
            CacheLevel::L1D => "selftest-l1d",
            CacheLevel::L2 => "selftest-l2",
            CacheLevel::L3 => "selftest-l3",
        }
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        // Cover the array twice over so every set/way gets occupied even
        // with imperfect index spreading. Cap the footprint for the L3 so a
        // single run stays tractable (the march still covers every set).
        let words = (self.level.capacity_bytes() * 2 / 8).min(1 << 21);
        let buf = m.alloc(words);
        let mut digest = OutputDigest::new();
        let mut mismatches = 0u64;
        for pass in 0..self.passes {
            let pattern = if pass % 2 == 0 {
                0xAAAA_AAAA_AAAA_AAAAu64
            } else {
                0x5555_5555_5555_5555u64
            };
            // March element 1: ascending write of the pattern.
            for i in 0..words {
                if m.halted() {
                    return digest;
                }
                m.store_u64(buf.offset(i as u64), pattern);
            }
            // March element 2: ascending read-verify + write complement.
            for i in 0..words {
                if m.halted() {
                    return digest;
                }
                let v = m.load_u64(buf.offset(i as u64));
                if v != pattern {
                    mismatches += 1;
                    digest.absorb_u64(i as u64);
                    digest.absorb_u64(v);
                }
                m.store_u64(buf.offset(i as u64), !pattern);
            }
            // March element 3: descending read-verify of the complement.
            for i in (0..words).rev().step_by(LINE_BYTES / 8) {
                if m.halted() {
                    return digest;
                }
                let v = m.load_u64(buf.offset(i as u64));
                if v != !pattern {
                    mismatches += 1;
                    digest.absorb_u64(i as u64);
                    digest.absorb_u64(v);
                }
            }
        }
        digest.absorb_u64(mismatches);
        digest
    }
}

/// The ALU stress test: dense chains of integer operations over
/// pseudo-random values, exercising many operand patterns.
#[derive(Debug, Clone)]
pub struct AluTest {
    rounds: usize,
}

impl AluTest {
    /// The default-size ALU test.
    #[must_use]
    pub fn new() -> Self {
        AluTest { rounds: 12_000 }
    }

    /// Overrides the number of rounds.
    #[must_use]
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds.max(1);
        self
    }
}

impl Default for AluTest {
    fn default() -> Self {
        AluTest::new()
    }
}

impl Program for AluTest {
    fn name(&self) -> &str {
        "selftest-alu"
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        let mut gen = DataGen::new(0xA10);
        let mut digest = OutputDigest::new();
        let mut acc = 0x0123_4567_89AB_CDEFu64;
        for r in 0..self.rounds {
            if m.halted() {
                return digest;
            }
            let a = gen.next_u64();
            let b = gen.next_u64() | 1;
            let s = m.iadd(acc, a);
            let p = m.imul(s | 1, b);
            let q = m.idiv(p, b);
            let x = m.ixor(q, a);
            let sh = m.ishl(x, (r % 31) as u32);
            let other = m.ishr(x, (64 - (r % 31) as u32) % 64);
            let rot = m.ior(sh, other);
            acc = m.isub(rot, b);
        }
        digest.absorb_u64(acc);
        digest
    }
}

/// The FPU stress test: dense chains of FP multiply/divide/sqrt over
/// random values — the deepest timing paths of the machine (§3.4: this is
/// where SDCs show up first).
#[derive(Debug, Clone)]
pub struct FpuTest {
    rounds: usize,
}

impl FpuTest {
    /// The default-size FPU test.
    #[must_use]
    pub fn new() -> Self {
        FpuTest { rounds: 10_000 }
    }

    /// Overrides the number of rounds.
    #[must_use]
    pub fn with_rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds.max(1);
        self
    }
}

impl Default for FpuTest {
    fn default() -> Self {
        FpuTest::new()
    }
}

impl Program for FpuTest {
    fn name(&self) -> &str {
        "selftest-fpu"
    }

    fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
        let mut gen = DataGen::new(0xF40);
        let mut digest = OutputDigest::new();
        let mut acc = 1.0f64;
        for _ in 0..self.rounds {
            if m.halted() {
                return digest;
            }
            let a = gen.range_f64(0.5, 3.0);
            let b = gen.range_f64(0.5, 3.0);
            let prod = m.fmul(acc, a);
            let quot = m.fdiv(prod, b);
            let root = m.fsqrt(quot.abs() + 0.25);
            let fused = m.fma(root, 1.0001, -0.3);
            acc = m.fadd(fused, 0.1);
            // Keep the accumulator in a sane range without machine ops.
            if !(0.01..1e6).contains(&acc) {
                acc = 1.0;
            }
        }
        digest.absorb_f64(acc);
        digest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::nominal_digest;
    use margins_sim::machine::MachineStatus;

    #[test]
    fn selftests_deterministic_and_healthy_at_nominal() {
        let tests: [Box<dyn Program>; 4] = [
            Box::new(CacheTest::new(CacheLevel::L1D)),
            Box::new(CacheTest::new(CacheLevel::L2)),
            Box::new(AluTest::new()),
            Box::new(FpuTest::new()),
        ];
        for p in &tests {
            let (a, _, s) = nominal_digest(p.as_ref());
            let (b, _, _) = nominal_digest(p.as_ref());
            assert_eq!(a, b, "{}", p.name());
            assert_eq!(s, MachineStatus::Healthy, "{}", p.name());
        }
    }

    #[test]
    fn fpu_test_stress_dwarfs_cache_test_stress() {
        // §3.4's key asymmetry: the FPU test leans on deep timing paths,
        // the cache test barely touches them.
        let (_, fpu, _) = nominal_digest(&FpuTest::new());
        let (_, cache, _) = nominal_digest(&CacheTest::new(CacheLevel::L2));
        assert!(
            fpu > cache * 10.0,
            "fpu stress {fpu} must dwarf cache-test stress {cache}"
        );
    }

    #[test]
    fn alu_test_sits_between() {
        let (_, fpu, _) = nominal_digest(&FpuTest::new());
        let (_, alu, _) = nominal_digest(&AluTest::new());
        let (_, cache, _) = nominal_digest(&CacheTest::new(CacheLevel::L1D));
        assert!(fpu > alu, "fpu {fpu} vs alu {alu}");
        assert!(alu > cache, "alu {alu} vs cache {cache}");
    }

    #[test]
    fn cache_test_names_follow_level() {
        assert_eq!(CacheTest::new(CacheLevel::L2).name(), "selftest-l2");
        assert_eq!(CacheTest::new(CacheLevel::L3).name(), "selftest-l3");
    }
}
