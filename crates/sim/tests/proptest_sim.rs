//! Property-based tests of the simulator substrate.

use margins_sim::cache::{CacheHierarchy, SetAssocCache, WAYS};
use margins_sim::edac::EdacLog;
use margins_sim::freq::TimingRegime;
use margins_sim::machine::{Machine, MachineParams};
use margins_sim::topology::CacheLevel;
use margins_sim::volt::SupplyState;
use margins_sim::{ChipSpec, CoreId, Corner, Enhancements, Millivolts};
use proptest::prelude::*;

fn params(seed: u64) -> MachineParams {
    MachineParams {
        core: CoreId::new(0),
        pmd_mv: 980.0,
        soc_mv: 950.0,
        regime: TimingRegime::FullSpeed,
        vcrit_mv: 886.0,
        thermal_shift_mv: 0.0,
        seed,
        enhancements: Enhancements::stock(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cache_most_recent_line_always_hits(
        lines in prop::collection::vec(0u64..10_000, 1..200),
    ) {
        let mut cache = SetAssocCache::new(ChipSpec::new(Corner::Ttt, 0), CacheLevel::L1D, 0);
        for &line in &lines {
            cache.access(line, false);
            // An immediate re-access of the same line is always a hit.
            prop_assert!(cache.access(line, false).hit, "line {line}");
        }
    }

    #[test]
    fn cache_placement_stays_inside_geometry(
        lines in prop::collection::vec(any::<u64>(), 1..100),
    ) {
        let mut cache = SetAssocCache::new(ChipSpec::new(Corner::Ttt, 0), CacheLevel::L2, 1);
        for &line in &lines {
            let a = cache.access(line, line % 2 == 0);
            prop_assert!(a.set < cache.sets());
            prop_assert!(a.way < WAYS);
            prop_assert_eq!(a.set, (line % u64::from(cache.sets())) as u32);
        }
    }

    #[test]
    fn working_set_smaller_than_associativity_never_misses_twice(
        base in 0u64..1_000_000,
        count in 1u64..8, // ≤ WAYS distinct lines in distinct sets
    ) {
        let mut cache = SetAssocCache::new(ChipSpec::new(Corner::Ttt, 0), CacheLevel::L1D, 0);
        let lines: Vec<u64> = (0..count).map(|k| base + k).collect();
        for &l in &lines {
            cache.access(l, false);
        }
        // A second pass over a tiny working set is all hits.
        for &l in &lines {
            prop_assert!(cache.access(l, false).hit);
        }
    }

    #[test]
    fn machine_runs_are_deterministic_per_seed(seed in any::<u64>()) {
        let digest = |seed: u64| {
            let mut caches = CacheHierarchy::new(ChipSpec::new(Corner::Ttt, 0));
            let mut edac = EdacLog::new();
            let mut m = Machine::new(params(seed), &mut caches, &mut edac);
            let base = m.alloc(64);
            let mut acc = 0.0f64;
            for i in 0..64u64 {
                m.store_f64(base.offset(i), i as f64);
                let v = m.load_f64(base.offset(i));
                acc = m.fma(v, 1.5, acc);
                let _ = m.branch(i % 2 == 0);
            }
            (acc.to_bits(), m.finalize().counters)
        };
        let (a, ca) = digest(seed);
        let (b, cb) = digest(seed);
        prop_assert_eq!(a, b);
        prop_assert_eq!(ca, cb);
    }

    #[test]
    fn nominal_machine_output_is_seed_independent(s1 in any::<u64>(), s2 in any::<u64>()) {
        // At nominal voltage no faults fire, so the computed value cannot
        // depend on the fault RNG seed.
        let value = |seed: u64| {
            let mut caches = CacheHierarchy::new(ChipSpec::new(Corner::Ttt, 0));
            let mut edac = EdacLog::new();
            let mut m = Machine::new(params(seed), &mut caches, &mut edac);
            let mut acc = 1.0f64;
            for _ in 0..500 {
                acc = m.fmul(acc, 1.001);
                acc = m.fadd(acc, 0.01);
            }
            acc.to_bits()
        };
        prop_assert_eq!(value(s1), value(s2));
    }

    #[test]
    fn supply_state_rejects_exactly_offstep_or_above_nominal(mv in 0u32..1100) {
        let mut s = SupplyState::nominal();
        let result = s.set_pmd(Millivolts::new(mv));
        let should_succeed = mv % 5 == 0 && mv <= 980;
        prop_assert_eq!(result.is_ok(), should_succeed, "{}mV", mv);
    }

    #[test]
    fn chip_variation_is_pure(corner_idx in 0u8..3, serial in any::<u64>()) {
        let corner = [Corner::Ttt, Corner::Tff, Corner::Tss][corner_idx as usize];
        let a = ChipSpec::new(corner, serial).variation();
        let b = ChipSpec::new(corner, serial).variation();
        prop_assert_eq!(&a, &b);
        // Divided-regime collapse is corner- and serial-independent.
        prop_assert_eq!(
            a.vcrit_mv(CoreId::new(3), TimingRegime::Divided).to_bits(),
            760.0f64.to_bits()
        );
    }
}
