//! EDAC-style hardware error reporting.
//!
//! The paper's framework reads corrected/uncorrected error reports from the
//! Linux EDAC driver (§2.2, Table 3). In the simulator, the cache hierarchy
//! pushes [`EdacRecord`]s into an [`EdacLog`] as protection logic catches
//! weak-cell corruption; the management processor (SLIMpro) and the
//! characterization framework drain the log after each run.

use crate::topology::CacheLevel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Kind of reported hardware error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdacKind {
    /// Corrected error — detected and repaired by hardware (CE in Table 3).
    Corrected,
    /// Uncorrected error — detected but not repaired (UE in Table 3).
    Uncorrected,
}

impl fmt::Display for EdacKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdacKind::Corrected => f.write_str("CE"),
            EdacKind::Uncorrected => f.write_str("UE"),
        }
    }
}

/// A single error report, tagged with its physical location — the parser of
/// the characterization framework "can also report the exact location that
/// the correctable errors occurred (e.g. the cache level, the memory, etc.)"
/// (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdacRecord {
    /// Whether the error was corrected.
    pub kind: EdacKind,
    /// The array that reported it.
    pub level: CacheLevel,
    /// Array instance (core index for L1, PMD index for L2, 0 for L3).
    pub instance: u8,
    /// Set index inside the array.
    pub set: u32,
    /// Way index inside the set.
    pub way: u8,
}

/// The accumulating error log of one machine.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EdacLog {
    records: Vec<EdacRecord>,
}

impl EdacLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        EdacLog::default()
    }

    /// Appends a record.
    pub fn report(&mut self, record: EdacRecord) {
        self.records.push(record);
    }

    /// All records since the last drain.
    #[must_use]
    pub fn records(&self) -> &[EdacRecord] {
        &self.records
    }

    /// Number of corrected-error records pending.
    #[must_use]
    pub fn corrected_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.kind == EdacKind::Corrected)
            .count()
    }

    /// Number of uncorrected-error records pending.
    #[must_use]
    pub fn uncorrected_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.kind == EdacKind::Uncorrected)
            .count()
    }

    /// Removes and returns all pending records (the SLIMpro mailbox read).
    pub fn drain(&mut self) -> Vec<EdacRecord> {
        std::mem::take(&mut self.records)
    }

    /// Whether any record is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kind: EdacKind) -> EdacRecord {
        EdacRecord {
            kind,
            level: CacheLevel::L2,
            instance: 1,
            set: 17,
            way: 3,
        }
    }

    #[test]
    fn counting_by_kind() {
        let mut log = EdacLog::new();
        log.report(record(EdacKind::Corrected));
        log.report(record(EdacKind::Corrected));
        log.report(record(EdacKind::Uncorrected));
        assert_eq!(log.corrected_count(), 2);
        assert_eq!(log.uncorrected_count(), 1);
        assert!(!log.is_empty());
    }

    #[test]
    fn drain_empties_the_log() {
        let mut log = EdacLog::new();
        log.report(record(EdacKind::Corrected));
        let drained = log.drain();
        assert_eq!(drained.len(), 1);
        assert!(log.is_empty());
        assert_eq!(log.corrected_count(), 0);
    }

    #[test]
    fn display_kinds_match_table3_vocabulary() {
        assert_eq!(EdacKind::Corrected.to_string(), "CE");
        assert_eq!(EdacKind::Uncorrected.to_string(), "UE");
    }
}
