//! The performance-monitoring-unit counter file.
//!
//! §4.1: "The X-Gene 2 provides 101 performance counters in total which
//! report microarchitectural events of the entire system for individual
//! cores, for the memory hierarchy (accesses and misses of all cache, TLB
//! and page walks levels, unaligned accesses, prefetches, etc.), the
//! pipeline (flushes, mispredictions, etc.), and the system (bus accesses,
//! etc.)."
//!
//! [`PmuEvent`] enumerates exactly 101 events in the ARM PMUv3 /
//! implementation-defined style. The five events the paper's RFE selects
//! (§4.2) are present under the names the simulator maintains natively:
//! [`PmuEvent::DispatchStallCycles`], [`PmuEvent::ExcTaken`],
//! [`PmuEvent::ReadMemAccess`], [`PmuEvent::BtbMisPred`] and
//! [`PmuEvent::CondBrRetired`]/[`PmuEvent::IndBrRetired`].

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

macro_rules! pmu_events {
    ($(#[$enum_meta:meta])* $vis:vis enum $name:ident { $($(#[$meta:meta])* $variant:ident => $label:literal,)+ }) => {
        $(#[$enum_meta])*
        $vis enum $name {
            $($(#[$meta])* $variant,)+
        }

        impl $name {
            /// All events, in counter-file order.
            pub const ALL: &'static [$name] = &[$($name::$variant,)+];

            /// The perf-style event mnemonic.
            #[must_use]
            pub fn label(self) -> &'static str {
                match self {
                    $($name::$variant => $label,)+
                }
            }

            /// The event's fixed index in the counter file.
            #[must_use]
            pub fn index(self) -> usize {
                self as usize
            }

            /// Looks an event up by its mnemonic.
            #[must_use]
            pub fn from_label(label: &str) -> Option<$name> {
                match label {
                    $($label => Some($name::$variant),)+
                    _ => None,
                }
            }
        }
    };
}

pmu_events! {
    /// One of the 101 microarchitectural events of the simulated PMU.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
    #[allow(missing_docs)] // the mnemonic labels are the documentation
    pub enum PmuEvent {
        SwIncr => "SW_INCR",
        CpuCycles => "CPU_CYCLES",
        InstRetired => "INST_RETIRED",
        InstSpec => "INST_SPEC",
        LdRetired => "LD_RETIRED",
        StRetired => "ST_RETIRED",
        MemAccess => "MEM_ACCESS",
        ReadMemAccess => "READ_MEM_ACCESS",
        WriteMemAccess => "WRITE_MEM_ACCESS",
        UnalignedLdstRetired => "UNALIGNED_LDST_RETIRED",
        ExcTaken => "EXC_TAKEN",
        ExcReturn => "EXC_RETURN",
        ExcUndef => "EXC_UNDEF",
        ExcSvc => "EXC_SVC",
        ExcIrq => "EXC_IRQ",
        ExcDabort => "EXC_DABORT",
        CidWriteRetired => "CID_WRITE_RETIRED",
        TtbrWriteRetired => "TTBR_WRITE_RETIRED",
        PcWriteRetired => "PC_WRITE_RETIRED",
        BrRetired => "BR_RETIRED",
        BrImmedRetired => "BR_IMMED_RETIRED",
        BrReturnRetired => "BR_RETURN_RETIRED",
        BrIndirectSpec => "BR_INDIRECT_SPEC",
        CondBrRetired => "COND_BR_RETIRED",
        IndBrRetired => "IND_BR_RETIRED",
        BrMisPred => "BR_MIS_PRED",
        BrMisPredRetired => "BR_MIS_PRED_RETIRED",
        BrPred => "BR_PRED",
        BtbMisPred => "BTB_MIS_PRED",
        BtbHit => "BTB_HIT",
        CpuCyclesUser => "CPU_CYCLES_USER",
        CpuCyclesKernel => "CPU_CYCLES_KERNEL",
        StallFrontend => "STALL_FRONTEND",
        StallBackend => "STALL_BACKEND",
        DispatchStallCycles => "DISPATCH_STALL_CYCLES",
        IssueStallCycles => "ISSUE_STALL_CYCLES",
        DecodeStallCycles => "DECODE_STALL_CYCLES",
        RobFullCycles => "ROB_FULL_CYCLES",
        LsqFullCycles => "LSQ_FULL_CYCLES",
        PipelineFlush => "PIPELINE_FLUSH",
        UopsRetired => "UOPS_RETIRED",
        FpInstRetired => "FP_INST_RETIRED",
        FpAddRetired => "FP_ADD_RETIRED",
        FpMulRetired => "FP_MUL_RETIRED",
        FpDivRetired => "FP_DIV_RETIRED",
        FpFmaRetired => "FP_FMA_RETIRED",
        FpSqrtRetired => "FP_SQRT_RETIRED",
        FpCvtRetired => "FP_CVT_RETIRED",
        SimdInstRetired => "SIMD_INST_RETIRED",
        IntAluRetired => "INT_ALU_RETIRED",
        IntMulRetired => "INT_MUL_RETIRED",
        IntDivRetired => "INT_DIV_RETIRED",
        CryptoSpec => "CRYPTO_SPEC",
        L1ICache => "L1I_CACHE",
        L1ICacheRefill => "L1I_CACHE_REFILL",
        L1ITlb => "L1I_TLB",
        L1ITlbRefill => "L1I_TLB_REFILL",
        L1DCache => "L1D_CACHE",
        L1DCacheRefill => "L1D_CACHE_REFILL",
        L1DCacheWb => "L1D_CACHE_WB",
        L1DCacheAllocate => "L1D_CACHE_ALLOCATE",
        L1DCacheRd => "L1D_CACHE_RD",
        L1DCacheWr => "L1D_CACHE_WR",
        L1DTlb => "L1D_TLB",
        L1DTlbRefill => "L1D_TLB_REFILL",
        L2DCache => "L2D_CACHE",
        L2DCacheRefill => "L2D_CACHE_REFILL",
        L2DCacheWb => "L2D_CACHE_WB",
        L2DCacheAllocate => "L2D_CACHE_ALLOCATE",
        L2DCacheRd => "L2D_CACHE_RD",
        L2DCacheWr => "L2D_CACHE_WR",
        L2DTlbRefill => "L2D_TLB_REFILL",
        L3Cache => "L3_CACHE",
        L3CacheRefill => "L3_CACHE_REFILL",
        L3CacheWb => "L3_CACHE_WB",
        L3CacheRd => "L3_CACHE_RD",
        DtlbWalk => "DTLB_WALK",
        ItlbWalk => "ITLB_WALK",
        TlbFlush => "TLB_FLUSH",
        PageWalkCycles => "PAGE_WALK_CYCLES",
        PrefetchLinefill => "PREFETCH_LINEFILL",
        PrefetchLinefillDrop => "PREFETCH_LINEFILL_DROP",
        ReadAlloc => "READ_ALLOC",
        WriteAlloc => "WRITE_ALLOC",
        BusAccess => "BUS_ACCESS",
        BusAccessRd => "BUS_ACCESS_RD",
        BusAccessWr => "BUS_ACCESS_WR",
        BusCycles => "BUS_CYCLES",
        MemoryError => "MEMORY_ERROR",
        LocalMemoryRd => "LOCAL_MEMORY_RD",
        LocalMemoryWr => "LOCAL_MEMORY_WR",
        DramRefreshStall => "DRAM_REFRESH_STALL",
        SnoopProbe => "SNOOP_PROBE",
        CoherencyMiss => "COHERENCY_MISS",
        ExclusiveFail => "EXCLUSIVE_FAIL",
        ExclusivePass => "EXCLUSIVE_PASS",
        WfiWfeCycles => "WFI_WFE_CYCLES",
        IrqDisabledCycles => "IRQ_DISABLED_CYCLES",
        ContextSwitches => "CONTEXT_SWITCHES",
        CpuMigrations => "CPU_MIGRATIONS",
        AlignmentFaults => "ALIGNMENT_FAULTS",
    }
}

/// Number of PMU events (§4.1: "101 performance counters in total").
pub const NUM_EVENTS: usize = 101;

impl fmt::Display for PmuEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A full counter file: one 64-bit counter per [`PmuEvent`].
///
/// ```
/// use margins_sim::counters::{CounterFile, PmuEvent};
///
/// let mut c = CounterFile::new();
/// c.add(PmuEvent::InstRetired, 100);
/// c[PmuEvent::CpuCycles] += 250;
/// assert_eq!(c[PmuEvent::InstRetired], 100);
/// assert!((c.rate(PmuEvent::InstRetired, PmuEvent::CpuCycles) - 0.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterFile {
    counts: Vec<u64>,
}

impl CounterFile {
    /// A zeroed counter file.
    #[must_use]
    pub fn new() -> Self {
        CounterFile {
            counts: vec![0; NUM_EVENTS],
        }
    }

    /// Adds `n` to the counter for `event`, saturating at `u64::MAX` —
    /// hardware counter files pin rather than wrap, and a wrapped count
    /// would silently corrupt every rate and profile derived from it.
    pub fn add(&mut self, event: PmuEvent, n: u64) {
        let c = &mut self.counts[event.index()];
        *c = c.saturating_add(n);
    }

    /// Increments the counter for `event` by one.
    pub fn incr(&mut self, event: PmuEvent) {
        self.add(event, 1);
    }

    /// The current count for `event`.
    #[must_use]
    pub fn get(&self, event: PmuEvent) -> u64 {
        self.counts[event.index()]
    }

    /// Ratio of two counters, `0.0` when the denominator is zero.
    #[must_use]
    pub fn rate(&self, numerator: PmuEvent, denominator: PmuEvent) -> f64 {
        let d = self.get(denominator);
        if d == 0 {
            return 0.0;
        }
        self.get(numerator) as f64 / d as f64
    }

    /// Accumulates another counter file into this one, saturating at
    /// `u64::MAX` per counter.
    pub fn merge(&mut self, other: &CounterFile) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
    }

    /// Iterates over `(event, count)` pairs in counter-file order.
    pub fn iter(&self) -> impl Iterator<Item = (PmuEvent, u64)> + '_ {
        PmuEvent::ALL.iter().map(move |e| (*e, self.get(*e)))
    }

    /// The counter values as a dense `f64` feature vector in counter-file
    /// order (the shape the prediction crate consumes).
    #[must_use]
    pub fn to_feature_vector(&self) -> Vec<f64> {
        self.counts.iter().map(|&c| c as f64).collect()
    }
}

impl Default for CounterFile {
    fn default() -> Self {
        CounterFile::new()
    }
}

impl Index<PmuEvent> for CounterFile {
    type Output = u64;
    fn index(&self, event: PmuEvent) -> &u64 {
        &self.counts[event.index()]
    }
}

impl IndexMut<PmuEvent> for CounterFile {
    fn index_mut(&mut self, event: PmuEvent) -> &mut u64 {
        &mut self.counts[event.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_101_events() {
        assert_eq!(PmuEvent::ALL.len(), NUM_EVENTS);
    }

    #[test]
    fn labels_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for e in PmuEvent::ALL {
            assert!(seen.insert(e.label()), "duplicate label {}", e.label());
        }
    }

    #[test]
    fn label_roundtrip() {
        for e in PmuEvent::ALL {
            assert_eq!(PmuEvent::from_label(e.label()), Some(*e));
        }
        assert_eq!(PmuEvent::from_label("NO_SUCH_EVENT"), None);
    }

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, e) in PmuEvent::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
    }

    #[test]
    fn rfe_selected_events_exist() {
        // §4.2's five most important features must be expressible.
        for label in [
            "DISPATCH_STALL_CYCLES",
            "EXC_TAKEN",
            "READ_MEM_ACCESS",
            "BTB_MIS_PRED",
            "COND_BR_RETIRED",
            "IND_BR_RETIRED",
        ] {
            assert!(PmuEvent::from_label(label).is_some(), "{label} missing");
        }
    }

    #[test]
    fn counter_file_arithmetic() {
        let mut c = CounterFile::new();
        c.add(PmuEvent::LdRetired, 10);
        c.incr(PmuEvent::LdRetired);
        assert_eq!(c[PmuEvent::LdRetired], 11);

        let mut d = CounterFile::new();
        d.add(PmuEvent::LdRetired, 9);
        d.add(PmuEvent::StRetired, 5);
        c.merge(&d);
        assert_eq!(c[PmuEvent::LdRetired], 20);
        assert_eq!(c[PmuEvent::StRetired], 5);

        c.reset();
        assert!(c.iter().all(|(_, v)| v == 0));
    }

    #[test]
    fn add_and_merge_saturate_instead_of_wrapping() {
        let mut c = CounterFile::new();
        c.add(PmuEvent::CpuCycles, u64::MAX - 1);
        c.add(PmuEvent::CpuCycles, 5);
        assert_eq!(c[PmuEvent::CpuCycles], u64::MAX);

        let mut d = CounterFile::new();
        d.add(PmuEvent::CpuCycles, u64::MAX);
        d.add(PmuEvent::InstRetired, 3);
        c.merge(&d);
        assert_eq!(c[PmuEvent::CpuCycles], u64::MAX);
        assert_eq!(c[PmuEvent::InstRetired], 3);
    }

    #[test]
    fn feature_vector_shape() {
        let c = CounterFile::new();
        assert_eq!(c.to_feature_vector().len(), NUM_EVENTS);
    }

    #[test]
    fn rate_handles_zero_denominator() {
        let c = CounterFile::new();
        assert_eq!(c.rate(PmuEvent::InstRetired, PmuEvent::CpuCycles), 0.0);
    }
}
