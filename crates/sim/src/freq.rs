//! Clock frequencies and the X-Gene 2 clocking rules of §2.1/§3.2.
//!
//! Each PMD can run at 300 MHz–2.4 GHz in 300 MHz steps. Ratios relative to
//! the 2.4 GHz source greater than 1/2 are implemented by *clock skipping*
//! (the critical-path timing still sees 2.4 GHz edges), while the 1/2 ratio
//! and below are implemented by *clock division* (relaxed edges). The paper
//! therefore characterizes only 2.4 GHz and 1.2 GHz: every frequency above
//! 1.2 GHz behaves like 2.4 GHz and every frequency at or below behaves like
//! 1.2 GHz. [`Megahertz::timing_regime`] encodes exactly that rule.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A clock frequency in megahertz.
///
/// ```
/// use margins_sim::freq::{Megahertz, TimingRegime};
/// assert_eq!(Megahertz::new(1500).timing_regime(), TimingRegime::FullSpeed);
/// assert_eq!(Megahertz::new(1200).timing_regime(), TimingRegime::Divided);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Megahertz(u32);

/// Clock source of the PMD domain: 2.4 GHz (§2.1).
pub const MAX_FREQ: Megahertz = Megahertz(2400);
/// Lowest supported PMD frequency: 300 MHz (§2.1).
pub const MIN_FREQ: Megahertz = Megahertz(300);
/// PMD frequency granularity: 300 MHz steps (§2.1).
pub const FREQ_STEP: u32 = 300;

impl Megahertz {
    /// Creates a frequency from a raw megahertz count.
    #[must_use]
    pub const fn new(mhz: u32) -> Self {
        Megahertz(mhz)
    }

    /// The raw megahertz value.
    #[must_use]
    pub const fn get(self) -> u32 {
        self.0
    }

    /// The value as `f64` for model math.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        f64::from(self.0)
    }

    /// Whether this is a frequency the PMD clock generator can produce
    /// (a multiple of 300 MHz between 300 MHz and 2.4 GHz).
    #[must_use]
    pub fn is_valid_pmd_frequency(self) -> bool {
        self >= MIN_FREQ && self <= MAX_FREQ && self.0.is_multiple_of(FREQ_STEP)
    }

    /// The effective timing regime under the clock-skipping/division rule of
    /// §3.2.
    #[must_use]
    pub fn timing_regime(self) -> TimingRegime {
        if self.0 > MAX_FREQ.0 / 2 {
            TimingRegime::FullSpeed
        } else {
            TimingRegime::Divided
        }
    }

    /// Frequency relative to the 2.4 GHz source.
    #[must_use]
    pub fn ratio_to_max(self) -> f64 {
        self.as_f64() / MAX_FREQ.as_f64()
    }
}

impl fmt::Display for Megahertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}MHz", self.0)
    }
}

/// The two effective critical-path timing regimes of §3.2.
///
/// "Clock frequencies greater than 1.2 GHz have similar behavior as in
/// 2.4 GHz, and frequencies less than 1.2 GHz have similar behavior as in
/// 1.2 GHz. For this reason, we haven't characterized the chips in the
/// intermediate frequencies."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimingRegime {
    /// Ratio > 1/2, implemented via clock *skipping*: paths are timed by the
    /// full-rate 2.4 GHz clock and see the tight margins of Figure 3/4.
    FullSpeed,
    /// Ratio ≤ 1/2, implemented via clock *division*: relaxed edges; the
    /// whole chip shares a uniform, much lower Vmin (760 mV on the TTT part)
    /// with crash-only behaviour below it (§3.2).
    Divided,
}

impl fmt::Display for TimingRegime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TimingRegime::FullSpeed => "full-speed (clock-skipping)",
            TimingRegime::Divided => "divided (clock-division)",
        };
        f.write_str(name)
    }
}

/// Iterator over every valid PMD frequency, ascending.
///
/// ```
/// use margins_sim::freq::valid_frequencies;
/// let all: Vec<_> = valid_frequencies().map(|f| f.get()).collect();
/// assert_eq!(all.first(), Some(&300));
/// assert_eq!(all.last(), Some(&2400));
/// assert_eq!(all.len(), 8);
/// ```
pub fn valid_frequencies() -> impl Iterator<Item = Megahertz> {
    (1..=MAX_FREQ.0 / FREQ_STEP).map(|k| Megahertz(k * FREQ_STEP))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validity_of_steps() {
        assert!(Megahertz::new(300).is_valid_pmd_frequency());
        assert!(Megahertz::new(2400).is_valid_pmd_frequency());
        assert!(!Megahertz::new(2500).is_valid_pmd_frequency());
        assert!(!Megahertz::new(250).is_valid_pmd_frequency());
        assert!(!Megahertz::new(1000).is_valid_pmd_frequency());
    }

    #[test]
    fn regime_boundary_is_half_rate() {
        assert_eq!(
            Megahertz::new(2400).timing_regime(),
            TimingRegime::FullSpeed
        );
        assert_eq!(
            Megahertz::new(1500).timing_regime(),
            TimingRegime::FullSpeed
        );
        assert_eq!(Megahertz::new(1200).timing_regime(), TimingRegime::Divided);
        assert_eq!(Megahertz::new(300).timing_regime(), TimingRegime::Divided);
    }

    #[test]
    fn all_valid_frequencies_enumerated() {
        let freqs: Vec<_> = valid_frequencies().collect();
        assert_eq!(freqs.len(), 8);
        assert!(freqs.iter().all(|f| f.is_valid_pmd_frequency()));
        assert!(freqs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn ratio_to_max() {
        assert!((Megahertz::new(1200).ratio_to_max() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display() {
        assert_eq!(Megahertz::new(2400).to_string(), "2400MHz");
        assert!(TimingRegime::Divided.to_string().contains("division"));
    }
}
