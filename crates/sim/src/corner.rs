//! Process corners and static (fabrication-time) variation.
//!
//! The paper characterizes three physical parts of the same design (§3):
//! the nominal-rated **TTT** part and two sigma parts — **TFF** (fast
//! corner: high leakage, lower Vmin) and **TSS** (slow corner: low leakage,
//! higher Vmin). On top of the corner, each individual core carries a static
//! threshold-voltage offset ("core-to-core variation", §3.3), which we
//! derive deterministically from the chip's serial number so that a chip is
//! a pure function of its [`ChipSpec`].

use crate::calib;
use crate::freq::TimingRegime;
use crate::topology::{CoreId, NUM_CORES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fabrication process corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Corner {
    /// Typical/typical — the "normal" nominal-rated part.
    Ttt,
    /// Fast corner — high leakage, can run at higher frequency, slightly
    /// lower Vmin (§3.3).
    Tff,
    /// Slow corner — low leakage, works at lower frequency, noticeably
    /// higher Vmin (§3.3).
    Tss,
}

impl Corner {
    /// All three corners in the order the paper presents them.
    #[must_use]
    pub fn all() -> [Corner; 3] {
        [Corner::Ttt, Corner::Tff, Corner::Tss]
    }

    /// Corner shift (mV) of the timing-critical voltage.
    #[must_use]
    pub fn vcrit_shift_mv(self) -> f64 {
        match self {
            Corner::Ttt => 0.0,
            Corner::Tff => calib::VCRIT_SHIFT_TFF_MV,
            Corner::Tss => calib::VCRIT_SHIFT_TSS_MV,
        }
    }

    /// Relative leakage-power multiplier.
    #[must_use]
    pub fn leakage_multiplier(self) -> f64 {
        calib::leakage_multiplier(self)
    }
}

impl fmt::Display for Corner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Corner::Ttt => "TTT",
            Corner::Tff => "TFF",
            Corner::Tss => "TSS",
        };
        f.write_str(name)
    }
}

/// The complete static identity of one physical chip: its corner and a
/// serial number seeding all per-die variation.
///
/// ```
/// use margins_sim::{ChipSpec, Corner};
/// let a = ChipSpec::new(Corner::Ttt, 7);
/// let b = ChipSpec::new(Corner::Ttt, 7);
/// // Same spec ⇒ identical silicon, including per-core variation.
/// assert_eq!(a.variation(), b.variation());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChipSpec {
    corner: Corner,
    serial: u64,
}

impl ChipSpec {
    /// Creates a chip identity.
    #[must_use]
    pub fn new(corner: Corner, serial: u64) -> Self {
        ChipSpec { corner, serial }
    }

    /// The chip's process corner.
    #[must_use]
    pub fn corner(self) -> Corner {
        self.corner
    }

    /// The chip's serial number.
    #[must_use]
    pub fn serial(self) -> u64 {
        self.serial
    }

    /// Derives the chip's static variation map (per-core critical-voltage
    /// offsets), a pure function of this spec.
    #[must_use]
    pub fn variation(self) -> VariationMap {
        VariationMap::derive(self)
    }

    /// A deterministic sub-seed for the given named component of this chip
    /// (weak-cell maps, etc.). Mixing uses splitmix64 steps so nearby
    /// serials produce uncorrelated streams.
    #[must_use]
    pub fn component_seed(self, component: &str) -> u64 {
        let mut h = self.serial ^ 0x9E37_79B9_7F4A_7C15;
        for b in component.bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        h = splitmix64(
            h ^ match self.corner {
                Corner::Ttt => 1,
                Corner::Tff => 2,
                Corner::Tss => 3,
            },
        );
        h
    }
}

impl fmt::Display for ChipSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.corner, self.serial)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Static per-die variation: each core's critical-voltage offset (mV) at the
/// full-speed timing regime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationMap {
    corner: Corner,
    core_offset_mv: [f64; NUM_CORES],
}

impl VariationMap {
    fn derive(spec: ChipSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(spec.component_seed("core-variation"));
        let mut core_offset_mv = [0.0; NUM_CORES];
        for (i, slot) in core_offset_mv.iter_mut().enumerate() {
            // Gaussian jitter via Box–Muller on two uniforms.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            *slot = calib::CORE_OFFSET_MV[i] + z * calib::CORE_JITTER_SIGMA_MV;
        }
        VariationMap {
            corner: spec.corner(),
            core_offset_mv,
        }
    }

    /// The core's total static offset (mV) above the corner base.
    #[must_use]
    pub fn core_offset_mv(&self, core: CoreId) -> f64 {
        self.core_offset_mv[core.index()]
    }

    /// The absolute timing-critical voltage (mV) of `core` in `regime`.
    ///
    /// In the full-speed regime this is the corner base plus the core's
    /// static offset; in the divided regime the whole chip collapses at a
    /// uniform threshold (§3.2) — core-to-core variation is hidden by the
    /// huge slack.
    #[must_use]
    pub fn vcrit_mv(&self, core: CoreId, regime: TimingRegime) -> f64 {
        match regime {
            TimingRegime::FullSpeed => {
                calib::VCRIT_BASE_TTT_MV + self.corner.vcrit_shift_mv() + self.core_offset_mv(core)
            }
            TimingRegime::Divided => calib::DIVIDED_COLLAPSE_MV,
        }
    }

    /// The most robust core (lowest critical voltage) of the chip.
    #[must_use]
    pub fn most_robust_core(&self) -> CoreId {
        CoreId::all()
            .min_by(|a, b| self.core_offset_mv(*a).total_cmp(&self.core_offset_mv(*b)))
            // lint: allow(no-panic) — CoreId::all() is a fixed non-empty topology
            .expect("there is always a core")
    }

    /// The most sensitive core (highest critical voltage) of the chip.
    #[must_use]
    pub fn most_sensitive_core(&self) -> CoreId {
        CoreId::all()
            .max_by(|a, b| self.core_offset_mv(*a).total_cmp(&self.core_offset_mv(*b)))
            // lint: allow(no-panic) — CoreId::all() is a fixed non-empty topology
            .expect("there is always a core")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::TimingRegime;

    #[test]
    fn variation_is_deterministic_per_spec() {
        let a = ChipSpec::new(Corner::Tff, 42).variation();
        let b = ChipSpec::new(Corner::Tff, 42).variation();
        assert_eq!(a, b);
    }

    #[test]
    fn different_serials_differ() {
        let a = ChipSpec::new(Corner::Ttt, 1).variation();
        let b = ChipSpec::new(Corner::Ttt, 2).variation();
        assert_ne!(a, b);
    }

    #[test]
    fn corner_ordering_of_vcrit() {
        let core = CoreId::new(4);
        let regime = TimingRegime::FullSpeed;
        // Same serial so the jitter is identical across corners? It is not —
        // the corner feeds the seed. Compare corner *bases* instead.
        assert!(Corner::Tff.vcrit_shift_mv() < Corner::Ttt.vcrit_shift_mv());
        assert!(Corner::Tss.vcrit_shift_mv() > Corner::Ttt.vcrit_shift_mv());
        let v = ChipSpec::new(Corner::Ttt, 0).variation();
        assert!(v.vcrit_mv(core, regime) > 870.0 && v.vcrit_mv(core, regime) < 900.0);
    }

    #[test]
    fn divided_regime_is_uniform() {
        let v = ChipSpec::new(Corner::Ttt, 0).variation();
        let values: Vec<f64> = CoreId::all()
            .map(|c| v.vcrit_mv(c, TimingRegime::Divided))
            .collect();
        assert!(values.iter().all(|x| (*x - values[0]).abs() < 1e-12));
        assert!((values[0] - calib::DIVIDED_COLLAPSE_MV).abs() < 1e-12);
    }

    #[test]
    fn pmd2_cores_are_most_robust_for_reference_chips() {
        // The jitter sigma (2 mV) is far below the PMD0↔PMD2 gap (~20 mV),
        // so the paper's cross-chip ordering must hold for the three
        // reference chips used throughout the experiments.
        for (corner, serial) in [(Corner::Ttt, 0), (Corner::Tff, 1), (Corner::Tss, 2)] {
            let v = ChipSpec::new(corner, serial).variation();
            let robust = v.most_robust_core();
            assert!(
                robust == CoreId::new(4) || robust == CoreId::new(5),
                "{corner}: robust core was {robust}"
            );
            let sensitive = v.most_sensitive_core();
            assert!(
                sensitive == CoreId::new(0) || sensitive == CoreId::new(1),
                "{corner}: sensitive core was {sensitive}"
            );
        }
    }

    #[test]
    fn component_seed_is_stable_and_distinct() {
        let spec = ChipSpec::new(Corner::Ttt, 5);
        assert_eq!(spec.component_seed("a"), spec.component_seed("a"));
        assert_ne!(spec.component_seed("a"), spec.component_seed("b"));
        assert_ne!(
            spec.component_seed("a"),
            ChipSpec::new(Corner::Tff, 5).component_seed("a")
        );
    }

    #[test]
    fn display() {
        assert_eq!(ChipSpec::new(Corner::Tss, 9).to_string(), "TSS#9");
    }
}
