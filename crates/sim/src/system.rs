//! The whole micro-server: chip + supplies + clocks + thermal + error
//! reporting, with run execution, a heartbeat, and power/reset control.
//!
//! This is the boundary the characterization framework drives: it sets
//! voltages and frequencies through the SLIMpro ([`crate::mgmt`]), executes
//! benchmark runs, reads the outcome and the EDAC log, and — when the
//! machine hangs — power-cycles it through the watchdog lines, exactly the
//! loop of Figure 2 in the paper.

use crate::cache::CacheHierarchy;
use crate::corner::{ChipSpec, VariationMap};
use crate::counters::{CounterFile, PmuEvent};
use crate::edac::{EdacKind, EdacLog};
use crate::freq::{Megahertz, MAX_FREQ};
use crate::machine::{Machine, MachineParams, MachineStatus};
use crate::power::{EnergyMeter, OperatingPoint, PowerModel};
use crate::program::{OutputDigest, Program};
use crate::thermal::ThermalModel;
use crate::topology::{CoreId, PmdId, NUM_PMDS};
use crate::volt::{Millivolts, SupplyState};
use margins_trace::{Observer, TraceEvent};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Static configuration of the simulated board.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Die-temperature setpoint the fan controller regulates to, °C
    /// (§3.1 uses 43 °C).
    pub temp_setpoint_c: f64,
    /// Maximum serial-console lines retained.
    pub console_capacity: usize,
    /// §6 hardware enhancements of this chip revision (stock by default).
    pub enhancements: crate::enhance::Enhancements,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            temp_setpoint_c: crate::calib::TEMP_SETPOINT_C,
            console_capacity: 256,
            enhancements: crate::enhance::Enhancements::stock(),
        }
    }
}

/// Outcome of a single benchmark run, before output comparison.
///
/// Note that SDC detection is *not* the system's job: like the physical
/// framework, the caller compares [`RunRecord::digest`] against a golden
/// nominal-conditions digest (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The process exited normally (output may still mismatch → SDC).
    Completed,
    /// The process died abnormally (AC).
    AppCrashed,
    /// The machine hung; the watchdog must power-cycle it (SC).
    SystemCrashed,
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RunOutcome::Completed => "completed",
            RunOutcome::AppCrashed => "application crash",
            RunOutcome::SystemCrashed => "system crash",
        };
        f.write_str(s)
    }
}

/// Everything observable about one benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Benchmark name.
    pub program: String,
    /// Input dataset label.
    pub dataset: String,
    /// Core the benchmark ran on.
    pub core: CoreId,
    /// PMD-rail voltage during the run.
    pub pmd_mv: Millivolts,
    /// PCP/SoC-rail voltage during the run.
    pub soc_mv: Millivolts,
    /// Frequency of the core's PMD.
    pub freq: Megahertz,
    /// Completion status.
    pub outcome: RunOutcome,
    /// Output digest (meaningful only for [`RunOutcome::Completed`]).
    pub digest: OutputDigest,
    /// Corrected errors reported during the run: EDAC array corrections
    /// plus (on §6b-enhanced chips) detected-and-retried datapath faults.
    pub corrected_errors: usize,
    /// Uncorrected errors reported by EDAC during the run.
    pub uncorrected_errors: usize,
    /// Timing faults injected (omniscient-simulator diagnostic).
    pub timing_faults: u32,
    /// Poisson accounting events the fault model drew — the fault path's
    /// unit of work for profiling. Absent in pre-profile serialized records.
    #[serde(default)]
    pub fault_samples: u64,
    /// Silent value corruptions applied (omniscient diagnostic).
    pub silent_corruptions: u32,
    /// PMU counters of the run.
    pub counters: CounterFile,
    /// Modelled cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Modelled wall-clock runtime, seconds.
    pub runtime_s: f64,
    /// Energy drawn by the chip over the run, joules.
    pub energy_j: f64,
    /// The run's total timing stress mass (diagnostic).
    pub stress_mass: f64,
}

/// Error returned when driving a hung system without power-cycling it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnresponsiveError;

impl fmt::Display for UnresponsiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("system is unresponsive; power-cycle it first")
    }
}

impl std::error::Error for UnresponsiveError {}

/// The simulated micro-server.
pub struct System {
    pub(crate) spec: ChipSpec,
    pub(crate) variation: VariationMap,
    pub(crate) supplies: SupplyState,
    pub(crate) pmd_freq: [Megahertz; NUM_PMDS],
    pub(crate) caches: CacheHierarchy,
    pub(crate) edac: EdacLog,
    pub(crate) thermal: ThermalModel,
    pub(crate) power: PowerModel,
    pub(crate) energy: EnergyMeter,
    pub(crate) responsive: bool,
    pub(crate) boot_count: u32,
    pub(crate) console: Vec<String>,
    pub(crate) config: SystemConfig,
    pub(crate) observer: Option<Arc<dyn Observer>>,
}

impl System {
    /// Powers up a board built around the chip described by `spec`.
    #[must_use]
    pub fn new(spec: ChipSpec, config: SystemConfig) -> Self {
        let mut sys = System {
            spec,
            variation: spec.variation(),
            supplies: SupplyState::nominal(),
            pmd_freq: [MAX_FREQ; NUM_PMDS],
            caches: CacheHierarchy::with_protection(spec, config.enhancements.extended_ecc),
            edac: EdacLog::new(),
            thermal: ThermalModel::with_setpoint(config.temp_setpoint_c),
            power: PowerModel::new(spec.corner()),
            energy: EnergyMeter::new(),
            responsive: true,
            boot_count: 1,
            console: Vec::new(),
            config,
            observer: None,
        };
        sys.log_console("boot: firmware handoff, supplies at nominal");
        sys
    }

    /// The chip's identity.
    #[must_use]
    pub fn spec(&self) -> ChipSpec {
        self.spec
    }

    /// The chip's static variation map.
    #[must_use]
    pub fn variation(&self) -> &VariationMap {
        &self.variation
    }

    /// Current supply state.
    #[must_use]
    pub fn supplies(&self) -> SupplyState {
        self.supplies
    }

    /// Current frequency of a PMD.
    #[must_use]
    pub fn pmd_frequency(&self, pmd: PmdId) -> Megahertz {
        self.pmd_freq[pmd.index()]
    }

    /// The heartbeat the external watchdog monitors (§2.2: the Raspberry Pi
    /// detects an unresponsive board over serial).
    #[must_use]
    pub fn is_responsive(&self) -> bool {
        self.responsive
    }

    /// Number of boots since construction (diagnostics).
    #[must_use]
    pub fn boot_count(&self) -> u32 {
        self.boot_count
    }

    /// Cumulative energy meter.
    #[must_use]
    pub fn energy_meter(&self) -> EnergyMeter {
        self.energy
    }

    /// The retained serial-console tail.
    #[must_use]
    pub fn console(&self) -> &[String] {
        &self.console
    }

    /// Attaches a telemetry observer: subsequent rail programming and EDAC
    /// drains report [`TraceEvent`]s through it. The simulator never emits
    /// when no observer is attached (or the attached one is disabled), so
    /// tracing has no effect on simulation results either way.
    pub fn set_observer(&mut self, observer: Arc<dyn Observer>) {
        self.observer = Some(observer);
    }

    /// Detaches the telemetry observer.
    pub fn clear_observer(&mut self) {
        self.observer = None;
    }

    /// Reports one event through the attached observer, constructing it
    /// only when an enabled observer is attached — instrumented callers
    /// (the characterization framework) pay nothing when tracing is off.
    pub fn observe(&self, build: impl FnOnce() -> TraceEvent) {
        if let Some(obs) = &self.observer {
            if obs.enabled() {
                obs.record(&build());
            }
        }
    }

    /// The SLIMpro management-processor interface (voltage/frequency
    /// regulation, sensor reads, error-report mailbox — §2.1).
    pub fn slimpro_mut(&mut self) -> crate::mgmt::SlimPro<'_> {
        crate::mgmt::SlimPro::new(self)
    }

    /// The PMpro power-management-processor interface (§2.1).
    pub fn pmpro_mut(&mut self) -> crate::mgmt::PmPro<'_> {
        crate::mgmt::PmPro::new(self)
    }

    /// Hard power cycle via the external power lines: everything volatile
    /// resets, supplies return to nominal, the machine becomes responsive.
    ///
    /// This is what the watchdog does after detecting a system crash
    /// ("recognizes when the system is unresponsive and restores it
    /// automatically", §2.2).
    pub fn power_cycle(&mut self) {
        self.supplies = SupplyState::nominal();
        self.pmd_freq = [MAX_FREQ; NUM_PMDS];
        self.caches.reset();
        self.edac = EdacLog::new();
        self.responsive = true;
        self.boot_count += 1;
        self.log_console("watchdog: power cycle, supplies restored to nominal");
    }

    /// Warm reset via the reset button: like a power cycle but keeps the
    /// energy meter semantics identical (provided for completeness; the
    /// framework uses [`System::power_cycle`]).
    pub fn reset(&mut self) {
        self.power_cycle();
    }

    pub(crate) fn log_console(&mut self, line: &str) {
        if self.console.len() >= self.config.console_capacity {
            self.console.remove(0);
        }
        self.console.push(line.to_owned());
    }

    /// Executes `program` on `core` under the current V/F state.
    ///
    /// `seed` individualizes the run (campaign iteration); the same
    /// (system state, program, core, seed) replays identically.
    ///
    /// # Errors
    ///
    /// Returns [`UnresponsiveError`] if the machine is hung; the caller
    /// (the watchdog) must power-cycle first.
    pub fn run(
        &mut self,
        program: &dyn Program,
        core: CoreId,
        seed: u64,
    ) -> Result<RunRecord, UnresponsiveError> {
        if !self.responsive {
            return Err(UnresponsiveError);
        }
        let freq = self.pmd_freq[core.pmd().index()];
        let regime = freq.timing_regime();
        let params = MachineParams {
            core,
            pmd_mv: self.supplies.pmd().as_f64(),
            soc_mv: self.supplies.soc().as_f64(),
            regime,
            vcrit_mv: self.variation.vcrit_mv(core, regime),
            thermal_shift_mv: self.thermal.vcrit_shift_mv(),
            seed,
            enhancements: self.config.enhancements,
        };
        let mut machine = Machine::new(params, &mut self.caches, &mut self.edac);
        machine.boot();
        let digest = if machine.status() == MachineStatus::Healthy {
            program.run(&mut machine)
        } else {
            OutputDigest::new()
        };
        let report = machine.finalize();

        let outcome = match report.status {
            MachineStatus::Healthy => RunOutcome::Completed,
            MachineStatus::AppCrashed => RunOutcome::AppCrashed,
            MachineStatus::SysHung => RunOutcome::SystemCrashed,
        };
        if outcome == RunOutcome::SystemCrashed {
            self.responsive = false;
            self.log_console("console: <no further output — system hung>");
        }

        // Energy/thermal accounting over the modelled runtime.
        let runtime_s = report.cycles as f64 / (freq.as_f64() * 1e6);
        let mut op = OperatingPoint::idle_nominal();
        op.pmd_voltage = self.supplies.pmd();
        op.soc_voltage = self.supplies.soc();
        op.pmd_freq = self.pmd_freq;
        op.core_activity[core.index()] = report.mean_activity;
        let mem_rate = report
            .counters
            .rate(PmuEvent::L2DCacheRefill, PmuEvent::InstRetired);
        op.mem_activity = (mem_rate * 20.0).min(1.0);
        op.die_temp_c = self.thermal.die_temp_c();
        let watts = self.power.total_watts(&op);
        self.energy.accumulate(watts, runtime_s);
        self.thermal.step(watts, runtime_s.min(1.0));

        let drained = self.edac.drain();
        let ce = drained
            .iter()
            .filter(|r| r.kind == EdacKind::Corrected)
            .count()
            + report.detected_faults as usize;
        let ue = drained
            .iter()
            .filter(|r| r.kind == EdacKind::Uncorrected)
            .count();
        for rec in &drained {
            self.observe(|| TraceEvent::CacheErrorReported {
                level: rec.level.to_string(),
                instance: rec.instance,
                corrected: rec.kind == EdacKind::Corrected,
            });
        }

        Ok(RunRecord {
            program: program.name().to_owned(),
            dataset: program.dataset().to_owned(),
            core,
            pmd_mv: self.supplies.pmd(),
            soc_mv: self.supplies.soc(),
            freq,
            outcome,
            digest,
            corrected_errors: ce,
            uncorrected_errors: ue,
            timing_faults: report.timing_faults,
            fault_samples: report.fault_samples,
            silent_corruptions: report.silent_corruptions,
            counters: report.counters,
            cycles: report.cycles,
            instructions: report.instructions,
            runtime_s,
            energy_j: watts * runtime_s,
            stress_mass: report.stress_mass,
        })
    }
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("spec", &self.spec)
            .field("supplies", &self.supplies)
            .field("pmd_freq", &self.pmd_freq)
            .field("responsive", &self.responsive)
            .field("boot_count", &self.boot_count)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corner::Corner;
    use crate::volt::Millivolts;

    struct TinyLoop;

    impl Program for TinyLoop {
        fn name(&self) -> &str {
            "tiny-loop"
        }
        fn run(&self, m: &mut Machine<'_>) -> OutputDigest {
            let base = m.alloc(256);
            for i in 0..256u64 {
                m.store_f64(base.offset(i), i as f64);
            }
            let mut acc = 0.0;
            for i in 0..256u64 {
                let v = m.load_f64(base.offset(i));
                let scaled = m.fmul(v, 3.0);
                acc = m.fadd(acc, scaled);
                let _ = m.branch(i % 2 == 0);
            }
            let mut d = OutputDigest::new();
            d.absorb_f64(acc);
            d
        }
    }

    fn sys() -> System {
        System::new(ChipSpec::new(Corner::Ttt, 0), SystemConfig::default())
    }

    #[test]
    fn nominal_run_completes_with_stable_digest() {
        let mut s = sys();
        let a = s.run(&TinyLoop, CoreId::new(0), 1).unwrap();
        let b = s.run(&TinyLoop, CoreId::new(0), 2).unwrap();
        assert_eq!(a.outcome, RunOutcome::Completed);
        assert_eq!(a.digest, b.digest, "nominal output must be deterministic");
        assert_eq!(a.corrected_errors, 0);
        assert_eq!(a.silent_corruptions, 0);
        assert!(a.energy_j > 0.0);
        assert!(a.runtime_s > 0.0);
    }

    #[test]
    fn deep_undervolt_eventually_hangs_and_blocks_runs() {
        let mut s = sys();
        s.slimpro_mut()
            .set_pmd_voltage(Millivolts::new(820))
            .unwrap();
        let mut hung = false;
        for seed in 0..20 {
            match s.run(&TinyLoop, CoreId::new(0), seed) {
                Ok(r) => {
                    if r.outcome == RunOutcome::SystemCrashed {
                        hung = true;
                        break;
                    }
                }
                Err(UnresponsiveError) => unreachable!("we break on hang"),
            }
        }
        assert!(hung, "820mV at 2.4GHz must hang the TTT chip");
        assert!(!s.is_responsive());
        assert_eq!(s.run(&TinyLoop, CoreId::new(0), 99), Err(UnresponsiveError));
        let boots = s.boot_count();
        s.power_cycle();
        assert!(s.is_responsive());
        assert_eq!(s.boot_count(), boots + 1);
        // Power cycle restores nominal voltage.
        assert_eq!(s.supplies().pmd(), crate::volt::PMD_NOMINAL);
        let r = s.run(&TinyLoop, CoreId::new(0), 123).unwrap();
        assert_eq!(r.outcome, RunOutcome::Completed);
    }

    #[test]
    fn divided_regime_runs_clean_at_760mv() {
        let mut s = sys();
        {
            let mut sp = s.slimpro_mut();
            for pmd in PmdId::all() {
                sp.set_pmd_frequency(pmd, Megahertz::new(1200)).unwrap();
            }
            sp.set_pmd_voltage(Millivolts::new(760)).unwrap();
        }
        for seed in 0..10 {
            let r = s.run(&TinyLoop, CoreId::new(3), seed).unwrap();
            assert_eq!(r.outcome, RunOutcome::Completed, "seed {seed}");
            assert_eq!(r.silent_corruptions, 0);
        }
    }

    #[test]
    fn run_record_carries_vf_context() {
        let mut s = sys();
        s.slimpro_mut()
            .set_pmd_voltage(Millivolts::new(940))
            .unwrap();
        let r = s.run(&TinyLoop, CoreId::new(5), 0).unwrap();
        assert_eq!(r.pmd_mv, Millivolts::new(940));
        assert_eq!(r.freq, MAX_FREQ);
        assert_eq!(r.core, CoreId::new(5));
        assert_eq!(r.program, "tiny-loop");
    }

    #[test]
    fn observer_reports_rail_sets_without_changing_results() {
        let mut plain = sys();
        let baseline = plain.run(&TinyLoop, CoreId::new(0), 7).unwrap();

        let mut traced = sys();
        let buf = std::sync::Arc::new(margins_trace::EventBuffer::new());
        traced.set_observer(buf.clone());
        traced
            .slimpro_mut()
            .set_pmd_voltage(Millivolts::new(905))
            .unwrap();
        traced
            .slimpro_mut()
            .set_pmd_voltage(crate::volt::PMD_NOMINAL)
            .unwrap();
        let r = traced.run(&TinyLoop, CoreId::new(0), 7).unwrap();
        assert_eq!(r.digest, baseline.digest, "tracing must not perturb runs");
        assert_eq!(r.cycles, baseline.cycles);

        let events = buf.drain();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            &events[0],
            margins_trace::TraceEvent::RailSet { rail, mv: 905 } if rail == "pmd"
        ));

        traced.clear_observer();
        traced
            .slimpro_mut()
            .set_pmd_voltage(Millivolts::new(905))
            .unwrap();
        assert!(buf.is_empty(), "detached observer must see nothing");
    }

    #[test]
    fn console_retains_boot_messages() {
        let mut s = sys();
        assert!(s.console().iter().any(|l| l.contains("boot")));
        s.power_cycle();
        assert!(s.console().iter().any(|l| l.contains("watchdog")));
    }
}
