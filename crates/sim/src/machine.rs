//! The op-level execution machine.
//!
//! [`Machine`] is the surface a [`crate::Program`] computes against: every
//! arithmetic operation, memory access and branch is *really executed* (so
//! the program produces a genuine output digest) while simultaneously
//!
//! * feeding the 101-event PMU [`CounterFile`],
//! * advancing an approximate cycle/stall model (4-issue OoO core),
//! * exercising the cache hierarchy, a D-TLB and a branch predictor/BTB,
//! * accumulating switching activity into the droop model, and
//! * passing through the timing-fault Poisson sampler, which may corrupt
//!   the op's result (the seed of a silent data corruption), kill the
//!   application (AC) or hang the machine (SC).
//!
//! After an AC/SC the machine short-circuits: remaining ops return zeros
//! cheaply and the run records the crash, mirroring how the physical
//! framework observes a dead process or an unresponsive board.

use crate::cache::CacheHierarchy;
use crate::calib;
use crate::counters::{CounterFile, PmuEvent};
use crate::droop::DroopModel;
use crate::edac::EdacLog;
use crate::enhance::{self, Enhancements};
use crate::faults::timing::{FaultConsequence, OpClass, TimingFaultModel};
use crate::freq::TimingRegime;
use crate::topology::CoreId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A word address inside the machine's data memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(u64);

impl Addr {
    /// The raw word index.
    #[must_use]
    pub fn index(self) -> u64 {
        self.0
    }

    /// The address `n` words further.
    #[must_use]
    pub fn offset(self, n: u64) -> Addr {
        Addr(self.0 + n)
    }
}

/// Liveness of the machine during/after a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MachineStatus {
    /// Executing normally.
    Healthy,
    /// The application process died (AC in Table 3).
    AppCrashed,
    /// The machine hung — only a power cycle recovers it (SC in Table 3).
    SysHung,
}

/// Everything the [`crate::System`] configures a machine with for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineParams {
    /// The core executing the program.
    pub core: CoreId,
    /// PMD-rail voltage, mV.
    pub pmd_mv: f64,
    /// PCP/SoC-rail voltage, mV.
    pub soc_mv: f64,
    /// Effective timing regime of the core's clock.
    pub regime: TimingRegime,
    /// The core's static critical voltage, mV.
    pub vcrit_mv: f64,
    /// Thermal shift on the critical voltage, mV.
    pub thermal_shift_mv: f64,
    /// Run seed (distinct per campaign iteration).
    pub seed: u64,
    /// §6 hardware enhancements active on this chip revision.
    pub enhancements: Enhancements,
}

/// Report handed back to the system when a run finishes.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineReport {
    /// Final machine liveness.
    pub status: MachineStatus,
    /// The PMU counter file of the run.
    pub counters: CounterFile,
    /// Modelled clock cycles consumed.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Timing faults that fired.
    pub timing_faults: u32,
    /// Poisson accounting events the fault model drew (profiling work unit).
    pub fault_samples: u64,
    /// Silent single-value corruptions applied (SDC seeds).
    pub silent_corruptions: u32,
    /// Timing faults caught and retried by the §6b detectors (enhanced
    /// chips only) — corrected-error events at the core level.
    pub detected_faults: u32,
    /// Total stress mass of the run.
    pub stress_mass: f64,
    /// Mean switching-activity weight per op (power model input).
    pub mean_activity: f64,
}

const DTLB_ENTRIES: usize = 512;
const BHT_ENTRIES: usize = 4096;
const BTB_ENTRIES: usize = 512;
const FETCH_GROUP_OPS: u32 = 16;
/// Interval (in ops) between background-OS activity ticks; together with
/// the kernel stress weight this delivers ≈[`calib::OS_STRESS_MASS`] per
/// typical run.
const OS_TICK_INTERVAL: u32 = 640;
/// Kernel-mode ops simulated at boot before the program starts.
const BOOT_KERNEL_OPS: u32 = 30;
/// Probability that consuming ECC-poisoned data kills the application.
const POISON_AC_PROBABILITY: f64 = 0.6;
/// Data-memory allocation cap in 64-bit words (64 MiB).
const MEM_CAP_WORDS: u64 = 1 << 23;

/// The op-level execution machine for one run on one core.
pub struct Machine<'a> {
    core: CoreId,
    /// PMD voltage as seen by the SRAM arrays: in the divided clock regime
    /// the doubled access slack relieves weak-cell failures entirely
    /// (`calib::SRAM_DIVIDED_RELIEF_MV`).
    sram_pmd_mv: f64,
    soc_mv: f64,
    thermal_shift_mv: f64,
    caches: &'a mut CacheHierarchy,
    edac: &'a mut EdacLog,
    counters: CounterFile,
    timing: TimingFaultModel,
    droop: DroopModel,
    rng: StdRng,
    mem: Vec<u64>,
    status: MachineStatus,
    cycles: f64,
    kernel_cycles: f64,
    pc: u64,
    code_footprint: u64,
    fetch_accum: u32,
    os_accum: u32,
    bht: Vec<u8>,
    btb: Vec<u64>,
    dtlb: Vec<u64>,
    silent_corruptions: u32,
    detected_faults: u32,
    enhancements: Enhancements,
    /// SoC-domain fault sampler state (L3/DRAM logic, active only when the
    /// PCP/SoC rail is scaled down towards `calib::SOC_CRIT_MV`).
    soc_lambda: f64,
    soc_accum: f64,
    soc_budget: f64,
    activity_sum: f64,
    ops: u64,
    last_l1d_line: u64,
}

impl<'a> Machine<'a> {
    /// Builds a machine over the chip's shared cache hierarchy and EDAC log.
    #[must_use]
    pub fn new(
        params: MachineParams,
        caches: &'a mut CacheHierarchy,
        edac: &'a mut EdacLog,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let timing = TimingFaultModel::new(params.vcrit_mv, params.regime, params.pmd_mv, &mut rng);
        caches.begin_run();
        let sram_pmd_mv = match params.regime {
            TimingRegime::FullSpeed => params.pmd_mv,
            TimingRegime::Divided => params.pmd_mv + calib::SRAM_DIVIDED_RELIEF_MV,
        };
        // SoC (L3/DRAM-controller) logic fault intensity per L3-reaching
        // access; negligible unless the PCP/SoC rail is scaled deep.
        let soc_lambda = calib::SOC_P0
            * ((calib::SOC_CRIT_MV - params.soc_mv) / calib::S_MV)
                .min(30.0)
                .exp();
        let soc_budget = {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            -u.ln()
        };
        Machine {
            core: params.core,
            sram_pmd_mv,
            soc_mv: params.soc_mv,
            thermal_shift_mv: params.thermal_shift_mv,
            caches,
            edac,
            counters: CounterFile::new(),
            timing,
            droop: DroopModel::new(),
            rng,
            mem: Vec::new(),
            status: MachineStatus::Healthy,
            cycles: 0.0,
            kernel_cycles: 0.0,
            pc: 0x40_0000,
            code_footprint: 16 * 1024,
            fetch_accum: 0,
            os_accum: 0,
            bht: vec![1; BHT_ENTRIES],
            btb: vec![u64::MAX; BTB_ENTRIES],
            dtlb: vec![u64::MAX; DTLB_ENTRIES],
            silent_corruptions: 0,
            detected_faults: 0,
            enhancements: params.enhancements,
            soc_lambda,
            soc_accum: 0.0,
            soc_budget,
            activity_sum: 0.0,
            ops: 0,
            last_l1d_line: u64::MAX,
        }
    }

    /// The core this machine executes on.
    #[must_use]
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Current machine liveness.
    #[must_use]
    pub fn status(&self) -> MachineStatus {
        self.status
    }

    /// `true` once an AC/SC has fired — long-running kernels may poll this
    /// in outer loops to bail out early (purely an optimization; ops
    /// short-circuit anyway).
    #[must_use]
    pub fn halted(&self) -> bool {
        self.status != MachineStatus::Healthy
    }

    /// Declares the program's instruction-footprint (bytes); larger-than-L1I
    /// footprints produce instruction-cache refills. Defaults to 16 KiB.
    pub fn set_code_footprint(&mut self, bytes: u64) {
        self.code_footprint = bytes.max(64);
    }

    /// Boot/OS-resume activity executed before the program: a burst of
    /// kernel-mode ops plus — in the divided clock regime — the outright
    /// collapse roll of §3.2.
    pub fn boot(&mut self) {
        let p = self.timing.collapse_probability();
        if p > 0.0 && self.rng.gen::<f64>() < p {
            self.status = MachineStatus::SysHung;
            return;
        }
        if let Some(c) = self
            .timing
            .on_burst(OpClass::Kernel, BOOT_KERNEL_OPS, &mut self.rng)
        {
            self.apply_crash_consequence(c);
        }
        self.counters.add(PmuEvent::ExcTaken, 1);
        self.counters.add(PmuEvent::ExcReturn, 1);
        self.counters.add(PmuEvent::ContextSwitches, 1);
        self.kernel_cycles += 400.0;
        self.cycles += 400.0;
    }

    // ---------------------------------------------------------------
    // Data memory
    // ---------------------------------------------------------------

    /// Allocates `n` zeroed 64-bit words and returns the base address.
    ///
    /// # Panics
    ///
    /// Panics if the allocation would exceed the machine's memory cap —
    /// that is a workload bug, not a simulated fault.
    pub fn alloc(&mut self, n: usize) -> Addr {
        let base = self.mem.len() as u64;
        assert!(
            base + n as u64 <= MEM_CAP_WORDS,
            "workload exceeds simulated memory cap"
        );
        self.mem.resize(self.mem.len() + n, 0);
        Addr(base)
    }

    /// Loads a 64-bit word; out-of-bounds addresses (e.g. from corrupted
    /// indices) kill the application like a real segfault.
    pub fn load_u64(&mut self, addr: Addr) -> u64 {
        self.mem_op(addr, false, None)
    }

    /// Stores a 64-bit word.
    pub fn store_u64(&mut self, addr: Addr, value: u64) {
        self.mem_op(addr, true, Some(value));
    }

    /// Loads a floating-point value.
    pub fn load_f64(&mut self, addr: Addr) -> f64 {
        f64::from_bits(self.load_u64(addr))
    }

    /// Stores a floating-point value.
    pub fn store_f64(&mut self, addr: Addr, value: f64) {
        self.store_u64(addr, value.to_bits());
    }

    fn mem_op(&mut self, addr: Addr, write: bool, value: Option<u64>) -> u64 {
        if self.halted() {
            return 0;
        }
        let class = if write { OpClass::Store } else { OpClass::Load };
        self.account(class);

        if addr.0 >= self.mem.len() as u64 {
            // Segfault: corrupted pointer or workload bug.
            self.raise_app_crash();
            return 0;
        }

        // D-TLB.
        let byte_addr = addr.0 * 8;
        let vpage = byte_addr >> 12;
        let tlb_idx = (vpage as usize) % DTLB_ENTRIES;
        self.counters.incr(PmuEvent::L1DTlb);
        if self.dtlb[tlb_idx] != vpage {
            self.dtlb[tlb_idx] = vpage;
            self.counters.incr(PmuEvent::L1DTlbRefill);
            self.counters.incr(PmuEvent::DtlbWalk);
            self.counters.add(PmuEvent::PageWalkCycles, 20);
            self.cycles += 20.0;
            self.counters.add(PmuEvent::DispatchStallCycles, 20);
        }

        // Cache hierarchy.
        let access = self.caches.data_access(
            self.core,
            byte_addr,
            write,
            self.sram_pmd_mv,
            self.soc_mv,
            self.edac,
        );
        self.counters.incr(PmuEvent::MemAccess);
        self.counters.incr(PmuEvent::L1DCache);
        if write {
            self.counters.incr(PmuEvent::StRetired);
            self.counters.incr(PmuEvent::WriteMemAccess);
            self.counters.incr(PmuEvent::L1DCacheWr);
        } else {
            self.counters.incr(PmuEvent::LdRetired);
            self.counters.incr(PmuEvent::ReadMemAccess);
            self.counters.incr(PmuEvent::L1DCacheRd);
        }
        if !access.l1_hit {
            self.counters.incr(PmuEvent::L1DCacheRefill);
            self.counters.incr(PmuEvent::L1DCacheAllocate);
            self.counters.incr(PmuEvent::L2DCache);
            self.counters.incr(if write {
                PmuEvent::L2DCacheWr
            } else {
                PmuEvent::L2DCacheRd
            });
            self.counters.incr(if write {
                PmuEvent::WriteAlloc
            } else {
                PmuEvent::ReadAlloc
            });
            self.cycles += 6.0;
            self.counters.add(PmuEvent::DispatchStallCycles, 6);
            self.counters.add(PmuEvent::StallBackend, 6);
            // Next-line prefetcher fires on sequential misses.
            let line = byte_addr / crate::topology::LINE_BYTES as u64;
            if line == self.last_l1d_line.wrapping_add(1) {
                self.counters.incr(PmuEvent::PrefetchLinefill);
            } else {
                self.counters.incr(PmuEvent::PrefetchLinefillDrop);
            }
            self.last_l1d_line = line;
        }
        if !access.l1_hit && !access.l2_hit {
            self.counters.incr(PmuEvent::L2DCacheRefill);
            self.counters.incr(PmuEvent::L2DCacheAllocate);
            self.counters.incr(PmuEvent::L3Cache);
            self.counters.incr(PmuEvent::L3CacheRd);
            self.counters.incr(PmuEvent::BusAccess);
            self.counters.incr(PmuEvent::BusAccessRd);
            self.cycles += 20.0;
            self.counters.add(PmuEvent::DispatchStallCycles, 20);
            self.counters.add(PmuEvent::StallBackend, 20);
            self.counters.add(PmuEvent::LsqFullCycles, 5);
        }
        if !access.l1_hit && !access.l2_hit {
            // The access engaged the PCP/SoC domain's logic (L3 pipeline,
            // switch, possibly the DRAM controllers).
            self.soc_accum += self.soc_lambda;
            if self.soc_accum >= self.soc_budget {
                self.soc_accum = 0.0;
                let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
                self.soc_budget = -u.ln();
                if self.rng.gen::<f64>() < 0.8 {
                    self.status = MachineStatus::SysHung;
                } else {
                    self.raise_app_crash();
                }
                return 0;
            }
        }
        if access.dram() {
            self.counters.incr(PmuEvent::L3CacheRefill);
            self.counters.incr(if write {
                PmuEvent::LocalMemoryWr
            } else {
                PmuEvent::LocalMemoryRd
            });
            self.cycles += 60.0;
            self.counters.add(PmuEvent::DispatchStallCycles, 60);
            self.counters.add(PmuEvent::StallBackend, 60);
            self.counters.add(PmuEvent::RobFullCycles, 30);
        }
        if access.wb_l1 {
            self.counters.incr(PmuEvent::L1DCacheWb);
        }
        if access.wb_l2 {
            self.counters.incr(PmuEvent::L2DCacheWb);
            self.counters.incr(PmuEvent::BusAccessWr);
        }
        if access.wb_l3 {
            self.counters.incr(PmuEvent::L3CacheWb);
            self.counters.incr(PmuEvent::BusAccessWr);
        }

        // SRAM protection observations.
        let obs = access.faults;
        if obs.corrected > 0 || obs.uncorrected > 0 {
            self.counters.add(
                PmuEvent::MemoryError,
                u64::from(obs.corrected + obs.uncorrected),
            );
        }
        if obs.poison && self.rng.gen::<f64>() < POISON_AC_PROBABILITY {
            self.counters.incr(PmuEvent::ExcDabort);
            self.counters.incr(PmuEvent::ExcTaken);
            self.raise_app_crash();
            return 0;
        }

        // The actual data movement.
        let mut result = if write {
            // lint: allow(no-panic) — every store call site passes Some(value)
            let v = value.expect("store carries a value");
            self.mem[addr.0 as usize] = v;
            v
        } else {
            self.mem[addr.0 as usize]
        };

        if obs.silent_corruption_mask != 0 {
            // Undetected SRAM corruption flips the value in place.
            result ^= obs.silent_corruption_mask;
            self.mem[addr.0 as usize] = result;
            self.silent_corruptions += 1;
        }

        // Timing fault on the load/store path.
        if let Some(c) = self.timing.on_op(class, &mut self.rng) {
            result = self.apply_value_fault(c, result);
            if write {
                if let MachineStatus::Healthy = self.status {
                    self.mem[addr.0 as usize] = result;
                }
            }
        }
        result
    }

    // ---------------------------------------------------------------
    // Arithmetic
    // ---------------------------------------------------------------

    /// Floating-point addition.
    pub fn fadd(&mut self, a: f64, b: f64) -> f64 {
        self.f2(OpClass::FpAdd, PmuEvent::FpAddRetired, 0.2, a, b, |x, y| {
            x + y
        })
    }

    /// Floating-point subtraction (shares the FP adder).
    pub fn fsub(&mut self, a: f64, b: f64) -> f64 {
        self.f2(OpClass::FpAdd, PmuEvent::FpAddRetired, 0.2, a, b, |x, y| {
            x - y
        })
    }

    /// Floating-point multiplication.
    pub fn fmul(&mut self, a: f64, b: f64) -> f64 {
        self.f2(OpClass::FpMul, PmuEvent::FpMulRetired, 0.2, a, b, |x, y| {
            x * y
        })
    }

    /// Fused multiply-add.
    pub fn fma(&mut self, a: f64, b: f64, c: f64) -> f64 {
        if self.halted() {
            return 0.0;
        }
        self.account(OpClass::FpMul);
        self.counters.incr(PmuEvent::FpInstRetired);
        self.counters.incr(PmuEvent::FpFmaRetired);
        self.cycles += 0.2;
        let mut r = a.mul_add(b, c);
        if let Some(cq) = self.timing.on_op(OpClass::FpMul, &mut self.rng) {
            r = f64::from_bits(self.apply_value_fault(cq, r.to_bits()));
        }
        r
    }

    /// Floating-point division (deep path: highest fault exposure, §3.4).
    pub fn fdiv(&mut self, a: f64, b: f64) -> f64 {
        let r = self.f2(OpClass::FpDiv, PmuEvent::FpDivRetired, 6.0, a, b, |x, y| {
            x / y
        });
        self.counters.add(PmuEvent::IssueStallCycles, 6);
        r
    }

    /// Floating-point square root.
    pub fn fsqrt(&mut self, a: f64) -> f64 {
        if self.halted() {
            return 0.0;
        }
        self.account(OpClass::FpSqrt);
        self.counters.incr(PmuEvent::FpInstRetired);
        self.counters.incr(PmuEvent::FpSqrtRetired);
        self.cycles += 5.0;
        self.counters.add(PmuEvent::IssueStallCycles, 5);
        let mut r = a.sqrt();
        if let Some(c) = self.timing.on_op(OpClass::FpSqrt, &mut self.rng) {
            r = f64::from_bits(self.apply_value_fault(c, r.to_bits()));
        }
        r
    }

    /// Integer addition.
    pub fn iadd(&mut self, a: u64, b: u64) -> u64 {
        self.i2(
            OpClass::IntAlu,
            PmuEvent::IntAluRetired,
            0.0,
            a,
            b,
            |x, y| x.wrapping_add(y),
        )
    }

    /// Integer subtraction.
    pub fn isub(&mut self, a: u64, b: u64) -> u64 {
        self.i2(
            OpClass::IntAlu,
            PmuEvent::IntAluRetired,
            0.0,
            a,
            b,
            |x, y| x.wrapping_sub(y),
        )
    }

    /// Integer multiplication.
    pub fn imul(&mut self, a: u64, b: u64) -> u64 {
        self.i2(
            OpClass::IntMul,
            PmuEvent::IntMulRetired,
            1.0,
            a,
            b,
            |x, y| x.wrapping_mul(y),
        )
    }

    /// Integer division (`0` divisor yields `0`, as a guarded idiv would).
    pub fn idiv(&mut self, a: u64, b: u64) -> u64 {
        self.i2(
            OpClass::IntDiv,
            PmuEvent::IntDivRetired,
            8.0,
            a,
            b,
            |x, y| x.checked_div(y).unwrap_or(0),
        )
    }

    /// Bitwise AND.
    pub fn iand(&mut self, a: u64, b: u64) -> u64 {
        self.i2(
            OpClass::IntAlu,
            PmuEvent::IntAluRetired,
            0.0,
            a,
            b,
            |x, y| x & y,
        )
    }

    /// Bitwise OR.
    pub fn ior(&mut self, a: u64, b: u64) -> u64 {
        self.i2(
            OpClass::IntAlu,
            PmuEvent::IntAluRetired,
            0.0,
            a,
            b,
            |x, y| x | y,
        )
    }

    /// Bitwise XOR.
    pub fn ixor(&mut self, a: u64, b: u64) -> u64 {
        self.i2(
            OpClass::IntAlu,
            PmuEvent::IntAluRetired,
            0.0,
            a,
            b,
            |x, y| x ^ y,
        )
    }

    /// Logical shift left (modulo 64).
    pub fn ishl(&mut self, a: u64, b: u32) -> u64 {
        self.i2(
            OpClass::IntAlu,
            PmuEvent::IntAluRetired,
            0.0,
            a,
            u64::from(b),
            |x, y| x << (y % 64),
        )
    }

    /// Logical shift right (modulo 64).
    pub fn ishr(&mut self, a: u64, b: u32) -> u64 {
        self.i2(
            OpClass::IntAlu,
            PmuEvent::IntAluRetired,
            0.0,
            a,
            u64::from(b),
            |x, y| x >> (y % 64),
        )
    }

    // ---------------------------------------------------------------
    // Control flow
    // ---------------------------------------------------------------

    /// A conditional branch that resolves to `taken`.
    ///
    /// Returns the direction the machine actually takes: normally `taken`,
    /// but a timing fault on the branch path may *invert* it — control-flow
    /// corruption that genuinely changes what the program computes.
    #[must_use = "the machine may invert a faulted branch; use the returned direction"]
    pub fn branch(&mut self, taken: bool) -> bool {
        if self.halted() {
            return false;
        }
        self.account(OpClass::Branch);
        self.counters.incr(PmuEvent::BrRetired);
        self.counters.incr(PmuEvent::CondBrRetired);
        self.counters.incr(PmuEvent::PcWriteRetired);

        // 2-bit bimodal predictor.
        let idx = (self.pc as usize >> 2) % BHT_ENTRIES;
        let predicted = self.bht[idx] >= 2;
        if predicted == taken {
            self.counters.incr(PmuEvent::BrPred);
        } else {
            self.counters.incr(PmuEvent::BrMisPred);
            self.counters.incr(PmuEvent::BrMisPredRetired);
            self.counters.incr(PmuEvent::PipelineFlush);
            // Wrong-path work shows up as speculative-only instructions.
            self.counters.add(PmuEvent::InstSpec, 9);
            self.counters.add(PmuEvent::StallFrontend, 12);
            self.counters.add(PmuEvent::DecodeStallCycles, 6);
            self.cycles += 12.0;
        }
        self.bht[idx] = match (taken, self.bht[idx]) {
            (true, c) => (c + 1).min(3),
            (false, c) => c.saturating_sub(1),
        };

        // BTB for taken branches.
        if taken {
            let bidx = (self.pc as usize >> 2) % BTB_ENTRIES;
            if self.btb[bidx] == self.pc {
                self.counters.incr(PmuEvent::BtbHit);
            } else {
                self.counters.incr(PmuEvent::BtbMisPred);
                self.btb[bidx] = self.pc;
                self.cycles += 2.0;
            }
            self.counters.incr(PmuEvent::BrImmedRetired);
        }

        match self.timing.on_op(OpClass::Branch, &mut self.rng) {
            Some(FaultConsequence::CorruptValue) => {
                self.silent_corruptions += 1;
                !taken
            }
            Some(c) => {
                self.apply_crash_consequence(c);
                false
            }
            None => taken,
        }
    }

    /// An indirect branch/jump through `target` (BTB-predicted).
    pub fn indirect_branch(&mut self, target: u64) {
        if self.halted() {
            return;
        }
        self.account(OpClass::Branch);
        self.counters.incr(PmuEvent::BrRetired);
        self.counters.incr(PmuEvent::IndBrRetired);
        self.counters.incr(PmuEvent::BrIndirectSpec);
        self.counters.incr(PmuEvent::PcWriteRetired);
        let bidx = (target as usize >> 2) % BTB_ENTRIES;
        if self.btb[bidx] == target {
            self.counters.incr(PmuEvent::BtbHit);
            self.counters.incr(PmuEvent::BrPred);
        } else {
            self.counters.incr(PmuEvent::BtbMisPred);
            self.counters.incr(PmuEvent::BrMisPred);
            self.counters.add(PmuEvent::StallFrontend, 14);
            self.cycles += 14.0;
            self.btb[bidx] = target;
        }
        if let Some(c) = self.timing.on_op(OpClass::Branch, &mut self.rng) {
            if c != FaultConsequence::CorruptValue {
                self.apply_crash_consequence(c);
            } else {
                self.silent_corruptions += 1;
            }
        }
    }

    // ---------------------------------------------------------------
    // Internals
    // ---------------------------------------------------------------

    fn f2(
        &mut self,
        class: OpClass,
        event: PmuEvent,
        extra_cycles: f64,
        a: f64,
        b: f64,
        f: impl FnOnce(f64, f64) -> f64,
    ) -> f64 {
        if self.halted() {
            return 0.0;
        }
        self.account(class);
        self.counters.incr(PmuEvent::FpInstRetired);
        self.counters.incr(event);
        self.cycles += extra_cycles;
        let mut r = f(a, b);
        if let Some(c) = self.timing.on_op(class, &mut self.rng) {
            r = f64::from_bits(self.apply_value_fault(c, r.to_bits()));
        }
        r
    }

    fn i2(
        &mut self,
        class: OpClass,
        event: PmuEvent,
        extra_cycles: f64,
        a: u64,
        b: u64,
        f: impl FnOnce(u64, u64) -> u64,
    ) -> u64 {
        if self.halted() {
            return 0;
        }
        self.account(class);
        self.counters.incr(event);
        self.cycles += extra_cycles;
        let mut r = f(a, b);
        if let Some(c) = self.timing.on_op(class, &mut self.rng) {
            r = self.apply_value_fault(c, r);
        }
        r
    }

    /// Per-op bookkeeping shared by every op kind.
    fn account(&mut self, class: OpClass) {
        self.ops += 1;
        self.counters.incr(PmuEvent::InstRetired);
        self.counters.incr(PmuEvent::InstSpec);
        // Memory ops crack into address-generation + access uops.
        let uops = match class {
            OpClass::Load | OpClass::Store => 2,
            _ => 1,
        };
        self.counters.add(PmuEvent::UopsRetired, uops);
        self.cycles += 1.0 / f64::from(crate::topology::ISSUE_WIDTH) + 0.05;
        let act = class.activity_weight();
        self.activity_sum += act;
        if self.droop.record_activity(act) {
            if self.enhancements.adaptive_clocking {
                // The adaptive clock stretches through droop events instead
                // of letting them erode the margin (§4.4 footnote).
                let suppressed = self.droop.droop_mv();
                self.cycles += suppressed * enhance::ADAPTIVE_CLOCK_STRETCH_CYCLES_PER_MV;
                self.timing.refresh(0.0, self.thermal_shift_mv);
            } else {
                self.timing
                    .refresh(self.droop.droop_mv(), self.thermal_shift_mv);
            }
        }

        // Instruction fetch every 16 ops (one 64 B fetch group).
        self.fetch_accum += 1;
        if self.fetch_accum >= FETCH_GROUP_OPS {
            self.fetch_accum = 0;
            self.pc = 0x40_0000 + (self.pc + 64 - 0x40_0000) % self.code_footprint;
            self.counters.incr(PmuEvent::L1ICache);
            self.counters.incr(PmuEvent::L1ITlb);
            if !self.caches.inst_access(self.core, self.pc) {
                self.counters.incr(PmuEvent::L1ICacheRefill);
                self.counters.add(PmuEvent::StallFrontend, 8);
                self.cycles += 8.0;
            }
            let ipage = self.pc >> 12;
            if ipage != (self.pc.wrapping_sub(64)) >> 12 && self.code_footprint > 4096 {
                self.counters.incr(PmuEvent::ItlbWalk);
                self.counters.incr(PmuEvent::L1ITlbRefill);
            }
        }

        // Background OS tick.
        self.os_accum += 1;
        if self.os_accum >= OS_TICK_INTERVAL {
            self.os_accum = 0;
            self.counters.incr(PmuEvent::ExcTaken);
            self.counters.incr(PmuEvent::ExcIrq);
            self.counters.incr(PmuEvent::ExcReturn);
            self.counters.add(PmuEvent::IrqDisabledCycles, 12);
            self.kernel_cycles += 50.0;
            self.cycles += 50.0;
            if let Some(c) = self.timing.on_burst(OpClass::Kernel, 1, &mut self.rng) {
                self.apply_crash_consequence(c);
            }
        }

        // Cascading failure: enough faults in one run and the machine is
        // beyond recovery regardless of individual consequences.
        if self.timing.faults_fired() > calib::CASCADE_SC_THRESHOLD {
            self.status = MachineStatus::SysHung;
        }
    }

    fn apply_value_fault(&mut self, consequence: FaultConsequence, value: u64) -> u64 {
        match consequence {
            FaultConsequence::CorruptValue => {
                // §6b detectors: a covered datapath fault is caught and the
                // op retried — a corrected error instead of an SDC seed.
                if self.enhancements.residue_checks
                    && self.rng.gen::<f64>() < enhance::RESIDUE_COVERAGE
                {
                    self.detected_faults += 1;
                    self.cycles += enhance::RETRY_PENALTY_CYCLES;
                    self.counters.add(PmuEvent::PipelineFlush, 1);
                    return value;
                }
                self.silent_corruptions += 1;
                value ^ (1u64 << self.rng.gen_range(0..64))
            }
            other => {
                self.apply_crash_consequence(other);
                value
            }
        }
    }

    fn apply_crash_consequence(&mut self, consequence: FaultConsequence) {
        match consequence {
            FaultConsequence::AppCrash => self.raise_app_crash(),
            FaultConsequence::SysCrash => self.status = MachineStatus::SysHung,
            FaultConsequence::CorruptValue => {}
        }
    }

    fn raise_app_crash(&mut self) {
        if self.status == MachineStatus::Healthy {
            self.status = MachineStatus::AppCrashed;
            self.counters.incr(PmuEvent::ExcTaken);
            self.counters.incr(PmuEvent::ExcDabort);
        }
    }

    /// Finishes the run: derives the remaining aggregate counters and
    /// returns the report.
    #[must_use]
    pub fn finalize(mut self) -> MachineReport {
        let cycles = self.cycles.round() as u64;
        self.counters.add(PmuEvent::CpuCycles, cycles);
        self.counters
            .add(PmuEvent::CpuCyclesKernel, self.kernel_cycles.round() as u64);
        self.counters.add(
            PmuEvent::CpuCyclesUser,
            (self.cycles - self.kernel_cycles).max(0.0).round() as u64,
        );
        self.counters.add(PmuEvent::BusCycles, cycles / 2);
        let instructions = self.counters[PmuEvent::InstRetired];
        MachineReport {
            status: self.status,
            cycles,
            instructions,
            timing_faults: self.timing.faults_fired(),
            fault_samples: self.timing.samples_drawn(),
            silent_corruptions: self.silent_corruptions,
            detected_faults: self.detected_faults,
            stress_mass: self.timing.stress_mass(),
            mean_activity: if self.ops > 0 {
                self.activity_sum / self.ops as f64
            } else {
                0.0
            },
            counters: self.counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheHierarchy;
    use crate::corner::{ChipSpec, Corner};

    fn params(pmd_mv: f64, seed: u64) -> MachineParams {
        MachineParams {
            core: CoreId::new(0),
            pmd_mv,
            soc_mv: 950.0,
            regime: TimingRegime::FullSpeed,
            vcrit_mv: 886.0,
            thermal_shift_mv: 0.0,
            seed,
            enhancements: Enhancements::stock(),
        }
    }

    fn env() -> (CacheHierarchy, EdacLog) {
        (
            CacheHierarchy::new(ChipSpec::new(Corner::Ttt, 0)),
            EdacLog::new(),
        )
    }

    /// A small deterministic kernel used by several tests.
    fn run_kernel(m: &mut Machine<'_>) -> u64 {
        let base = m.alloc(1024);
        for i in 0..1024u64 {
            m.store_f64(base.offset(i), i as f64 * 0.5);
        }
        let mut acc = 0.0;
        for i in 0..1024u64 {
            let v = m.load_f64(base.offset(i));
            let w = m.fmul(v, 1.25);
            acc = m.fadd(acc, w);
            let _ = m.branch(i % 3 == 0);
        }
        acc.to_bits()
    }

    #[test]
    fn nominal_run_is_deterministic_and_healthy() {
        let (mut c1, mut e1) = env();
        let mut m1 = Machine::new(params(980.0, 1), &mut c1, &mut e1);
        m1.boot();
        let r1 = run_kernel(&mut m1);
        let rep1 = m1.finalize();

        let (mut c2, mut e2) = env();
        let mut m2 = Machine::new(params(980.0, 2), &mut c2, &mut e2);
        m2.boot();
        let r2 = run_kernel(&mut m2);
        let rep2 = m2.finalize();

        assert_eq!(rep1.status, MachineStatus::Healthy);
        assert_eq!(rep2.status, MachineStatus::Healthy);
        // Different seeds, same program, nominal voltage: identical output.
        assert_eq!(r1, r2);
        assert_eq!(rep1.silent_corruptions, 0);
        assert_eq!(rep1.timing_faults, 0);
        assert_eq!(
            rep1.counters[PmuEvent::InstRetired],
            rep2.counters[PmuEvent::InstRetired]
        );
    }

    #[test]
    fn counters_reflect_the_op_stream() {
        let (mut c, mut e) = env();
        let mut m = Machine::new(params(980.0, 1), &mut c, &mut e);
        let _ = run_kernel(&mut m);
        let rep = m.finalize();
        let cf = &rep.counters;
        assert_eq!(cf[PmuEvent::StRetired], 1024);
        assert_eq!(cf[PmuEvent::LdRetired], 1024);
        assert_eq!(cf[PmuEvent::ReadMemAccess], 1024);
        assert_eq!(cf[PmuEvent::FpMulRetired], 1024);
        assert_eq!(cf[PmuEvent::FpAddRetired], 1024);
        assert_eq!(cf[PmuEvent::CondBrRetired], 1024);
        assert!(cf[PmuEvent::CpuCycles] > 0);
        assert!(cf[PmuEvent::L1DCacheRefill] > 0, "cold misses expected");
        assert!(
            cf[PmuEvent::BrMisPred] > 0,
            "i%3 pattern defeats 2-bit counters sometimes"
        );
        assert!(
            cf[PmuEvent::UopsRetired] > cf[PmuEvent::InstRetired],
            "memory ops crack into multiple uops"
        );
        assert!(
            cf[PmuEvent::InstSpec] > cf[PmuEvent::InstRetired],
            "mispredicts add wrong-path speculative instructions"
        );
    }

    #[test]
    fn deep_undervolt_produces_faults_or_crash() {
        let mut corrupted_or_crashed = 0;
        for seed in 0..5 {
            let (mut c, mut e) = env();
            let mut m = Machine::new(params(850.0, seed), &mut c, &mut e);
            m.boot();
            let _ = run_kernel(&mut m);
            let rep = m.finalize();
            if rep.status != MachineStatus::Healthy || rep.silent_corruptions > 0 {
                corrupted_or_crashed += 1;
            }
        }
        assert_eq!(corrupted_or_crashed, 5, "850mV is deep in the crash region");
    }

    #[test]
    fn slight_undervolt_below_vmin_yields_sdc_like_corruption() {
        // The test kernel's stress mass is ~3k, so its own Vmin sits well
        // below a real benchmark's; probe a voltage where its per-run fault
        // expectation is ~1 and check value corruption (digest changes)
        // dominates over crashes.
        let mut digests = std::collections::HashSet::new();
        let mut crashes = 0;
        for seed in 0..30 {
            let (mut c, mut e) = env();
            let mut m = Machine::new(params(858.0, seed), &mut c, &mut e);
            m.boot();
            let d = run_kernel(&mut m);
            let rep = m.finalize();
            if rep.status == MachineStatus::Healthy {
                digests.insert(d);
            } else {
                crashes += 1;
            }
        }
        assert!(
            digests.len() > 1,
            "some runs must produce corrupted outputs ({} distinct digests, {crashes} crashes)",
            digests.len()
        );
        assert!(
            digests.len() * 2 >= crashes,
            "near Vmin, SDCs must be commonplace relative to crashes ({} digests, {crashes} crashes)",
            digests.len()
        );
    }

    #[test]
    fn out_of_bounds_access_is_an_app_crash() {
        let (mut c, mut e) = env();
        let mut m = Machine::new(params(980.0, 1), &mut c, &mut e);
        let base = m.alloc(8);
        let _ = m.load_u64(base.offset(1_000_000));
        assert_eq!(m.status(), MachineStatus::AppCrashed);
    }

    #[test]
    fn ops_short_circuit_after_crash() {
        let (mut c, mut e) = env();
        let mut m = Machine::new(params(980.0, 1), &mut c, &mut e);
        let base = m.alloc(8);
        let _ = m.load_u64(base.offset(99)); // crash
        let before = {
            // finalize would consume; peek via counters later instead
            m.status()
        };
        assert_eq!(before, MachineStatus::AppCrashed);
        assert_eq!(m.fadd(1.0, 2.0), 0.0);
        assert_eq!(m.iadd(1, 2), 0);
        assert!(!m.branch(true));
        assert!(m.halted());
    }

    #[test]
    fn divided_regime_safe_above_collapse_threshold() {
        for seed in 0..10 {
            let (mut c, mut e) = env();
            let mut p = params(760.0, seed);
            p.regime = TimingRegime::Divided;
            let mut m = Machine::new(p, &mut c, &mut e);
            m.boot();
            let _ = run_kernel(&mut m);
            let rep = m.finalize();
            assert_eq!(rep.status, MachineStatus::Healthy, "seed {seed}");
            assert_eq!(rep.silent_corruptions, 0);
        }
    }

    #[test]
    fn divided_regime_crashes_below_collapse_threshold() {
        let mut crashes = 0;
        for seed in 0..10 {
            let (mut c, mut e) = env();
            let mut p = params(750.0, seed);
            p.regime = TimingRegime::Divided;
            let mut m = Machine::new(p, &mut c, &mut e);
            m.boot();
            let _ = run_kernel(&mut m);
            if m.status() == MachineStatus::SysHung {
                crashes += 1;
            }
        }
        assert!(
            crashes >= 9,
            "750mV in divided regime must crash: {crashes}/10"
        );
    }

    #[test]
    fn branch_fault_can_invert_direction() {
        // At a voltage with heavy fault rates, some branches invert.
        let mut inverted = false;
        for seed in 0..30 {
            let (mut c, mut e) = env();
            let mut m = Machine::new(params(835.0, seed), &mut c, &mut e);
            for _ in 0..2000 {
                if !m.branch(true) && !m.halted() {
                    inverted = true;
                }
                if m.halted() {
                    break;
                }
            }
            if inverted {
                break;
            }
        }
        assert!(
            inverted,
            "no branch inversion observed in 30 heavy-fault runs"
        );
    }

    #[test]
    fn code_footprint_drives_icache_refills() {
        let run = |footprint: u64| {
            let (mut c, mut e) = env();
            let mut m = Machine::new(params(980.0, 1), &mut c, &mut e);
            m.set_code_footprint(footprint);
            for _ in 0..100_000 {
                let _ = m.iadd(1, 2);
            }
            m.finalize().counters[PmuEvent::L1ICacheRefill]
        };
        let small = run(8 * 1024);
        let large = run(256 * 1024);
        assert!(large > small * 10, "large {large} vs small {small}");
    }

    #[test]
    fn residue_checks_convert_sdcs_into_detected_corrections() {
        // §6b: with detectors on, runs at an SDC-prone voltage mostly keep
        // the golden output and report detected (corrected) faults instead.
        let mut stock_corruptions = 0u32;
        let mut enhanced_corruptions = 0u32;
        let mut enhanced_detections = 0u32;
        for seed in 0..12 {
            let (mut c, mut e) = env();
            let mut m = Machine::new(params(858.0, seed), &mut c, &mut e);
            let _ = run_kernel(&mut m);
            stock_corruptions += m.finalize().silent_corruptions;

            let (mut c, mut e) = env();
            let mut p = params(858.0, seed);
            p.enhancements.residue_checks = true;
            let mut m = Machine::new(p, &mut c, &mut e);
            let _ = run_kernel(&mut m);
            let rep = m.finalize();
            enhanced_corruptions += rep.silent_corruptions;
            enhanced_detections += rep.detected_faults;
        }
        assert!(enhanced_detections > 0, "detectors must fire");
        assert!(
            enhanced_corruptions * 3 < stock_corruptions.max(1) * 2,
            "corruptions must drop substantially: stock {stock_corruptions} vs enhanced {enhanced_corruptions}"
        );
    }

    #[test]
    fn adaptive_clocking_costs_cycles_and_suppresses_droop_faults() {
        let run_with = |adaptive: bool, seed: u64| {
            let (mut c, mut e) = env();
            let mut p = params(980.0, seed);
            p.enhancements.adaptive_clocking = adaptive;
            let mut m = Machine::new(p, &mut c, &mut e);
            for _ in 0..20_000 {
                let _ = m.fmul(1.1, 2.2); // high-activity stream: max droop
            }
            m.finalize()
        };
        let stock = run_with(false, 1);
        let adaptive = run_with(true, 1);
        assert!(
            adaptive.cycles > stock.cycles,
            "the stretched clock must cost throughput"
        );
    }

    #[test]
    fn soc_rail_scaling_crashes_memory_traffic() {
        // Deep-undervolting the PCP/SoC rail takes down L3/DRAM-bound work
        // even though the PMD rail is at nominal.
        let mut crashes = 0;
        for seed in 0..8 {
            let (mut c, mut e) = env();
            let mut p = params(980.0, seed);
            p.soc_mv = 735.0;
            let mut m = Machine::new(p, &mut c, &mut e);
            // A streaming loop over a >L2 footprint reaches the L3.
            let base = m.alloc(600_000);
            for i in 0..60_000u64 {
                let _ = m.load_u64(base.offset((i * 523) % 600_000));
                if m.halted() {
                    crashes += 1;
                    break;
                }
            }
        }
        assert!(
            crashes >= 4,
            "735mV SoC rail must crash streaming runs: {crashes}/8"
        );
        // At nominal SoC voltage the same loop never crashes.
        let (mut c, mut e) = env();
        let mut m = Machine::new(params(980.0, 3), &mut c, &mut e);
        let base = m.alloc(600_000);
        for i in 0..60_000u64 {
            let _ = m.load_u64(base.offset((i * 523) % 600_000));
        }
        assert_eq!(m.status(), MachineStatus::Healthy);
    }

    #[test]
    fn soc_rail_mid_band_reports_l3_corrected_errors_without_crashes() {
        // The Itanium-like ECC-proxy band of §4.4: between the L3 weak-cell
        // tail (≤855 mV) and the SoC logic collapse (~730 mV), scaling the
        // SoC rail yields corrected errors while execution stays healthy.
        let mut ces = 0usize;
        for seed in 0..4 {
            let (mut c, mut e) = env();
            let mut p = params(980.0, seed);
            p.soc_mv = 800.0;
            let mut m = Machine::new(p, &mut c, &mut e);
            let base = m.alloc(1 << 20); // 8 MB: fills the L3
            for i in 0..200_000u64 {
                let _ = m.load_u64(base.offset((i * 1021) % (1 << 20)));
            }
            assert_eq!(m.status(), MachineStatus::Healthy, "seed {seed}");
            ces += e.corrected_count();
        }
        assert!(ces > 0, "L3 weak cells must report CEs at 800mV SoC");
    }

    #[test]
    fn mean_activity_tracks_op_mix() {
        let (mut c, mut e) = env();
        let mut m = Machine::new(params(980.0, 1), &mut c, &mut e);
        for _ in 0..1000 {
            let _ = m.fmul(1.5, 2.5); // activity 0.9
        }
        let rep = m.finalize();
        assert!((rep.mean_activity - 0.9).abs() < 1e-9);
    }
}
