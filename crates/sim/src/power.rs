//! Chip power model and energy accounting.
//!
//! Dynamic power follows the classic `C·V²·f·activity` law per PMD (all
//! PMDs share one voltage but have private frequencies, §2.1); leakage
//! scales with the corner (TFF leaks ~1.65×, TSS ~0.55×, §3) and weakly
//! with temperature. The absolute scale is calibrated so a fully loaded
//! chip at nominal V/F sits just under the 35 W TDP of Table 2.

use crate::corner::Corner;
use crate::freq::{Megahertz, MAX_FREQ};
use crate::topology::{NUM_CORES, NUM_PMDS};
use crate::volt::{Millivolts, PMD_NOMINAL, SOC_NOMINAL};
use serde::{Deserialize, Serialize};

/// Dynamic power of the whole PMD domain at nominal V/F with all cores at
/// full activity, watts.
const PMD_DYNAMIC_FULL_W: f64 = 22.0;

/// Leakage power of the PMD domain at nominal voltage and 43 °C for the TTT
/// corner, watts.
const PMD_LEAKAGE_NOMINAL_W: f64 = 5.0;

/// PCP/SoC domain power at nominal SoC voltage and saturated memory
/// activity, watts.
const SOC_FULL_W: f64 = 6.5;

/// Idle floor of the SoC domain (clocks gated, refresh only), watts.
const SOC_IDLE_FRACTION: f64 = 0.35;

/// Temperature coefficient of leakage (per °C around 43 °C).
const LEAKAGE_TEMP_COEFF: f64 = 0.02;

/// The chip's operating point, as the power model sees it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// PMD-rail voltage.
    pub pmd_voltage: Millivolts,
    /// PCP/SoC-rail voltage.
    pub soc_voltage: Millivolts,
    /// Per-PMD clock frequency.
    pub pmd_freq: [Megahertz; NUM_PMDS],
    /// Per-core switching activity in `[0, 1]`.
    pub core_activity: [f64; NUM_CORES],
    /// Memory-system activity in `[0, 1]`.
    pub mem_activity: f64,
    /// Die temperature, °C.
    pub die_temp_c: f64,
}

impl OperatingPoint {
    /// Nominal V/F, everything idle, regulated temperature.
    #[must_use]
    pub fn idle_nominal() -> Self {
        OperatingPoint {
            pmd_voltage: PMD_NOMINAL,
            soc_voltage: SOC_NOMINAL,
            pmd_freq: [MAX_FREQ; NUM_PMDS],
            core_activity: [0.0; NUM_CORES],
            mem_activity: 0.0,
            die_temp_c: crate::calib::TEMP_SETPOINT_C,
        }
    }
}

/// The power model for a chip of a given corner.
///
/// ```
/// use margins_sim::power::{PowerModel, OperatingPoint};
/// use margins_sim::Corner;
///
/// let model = PowerModel::new(Corner::Ttt);
/// let mut op = OperatingPoint::idle_nominal();
/// op.core_activity = [1.0; 8];
/// op.mem_activity = 1.0;
/// let w = model.total_watts(&op);
/// assert!(w > 20.0 && w < 35.0, "full load inside TDP: {w}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowerModel {
    corner: Corner,
}

impl PowerModel {
    /// A power model for the given process corner.
    #[must_use]
    pub fn new(corner: Corner) -> Self {
        PowerModel { corner }
    }

    /// The model's corner.
    #[must_use]
    pub fn corner(self) -> Corner {
        self.corner
    }

    /// Dynamic power of the PMD domain, watts.
    #[must_use]
    pub fn pmd_dynamic_watts(self, op: &OperatingPoint) -> f64 {
        let v2 = op.pmd_voltage.ratio_to(PMD_NOMINAL).powi(2);
        let per_pmd = PMD_DYNAMIC_FULL_W / NUM_PMDS as f64;
        let mut total = 0.0;
        for (pmd, freq) in op.pmd_freq.iter().enumerate() {
            let act = (op.core_activity[pmd * 2] + op.core_activity[pmd * 2 + 1]) / 2.0;
            total += per_pmd * v2 * freq.ratio_to_max() * act;
        }
        total
    }

    /// Leakage power of the PMD domain, watts.
    #[must_use]
    pub fn pmd_leakage_watts(self, op: &OperatingPoint) -> f64 {
        let v2 = op.pmd_voltage.ratio_to(PMD_NOMINAL).powi(2);
        let temp = 1.0 + LEAKAGE_TEMP_COEFF * (op.die_temp_c - crate::calib::TEMP_SETPOINT_C);
        PMD_LEAKAGE_NOMINAL_W * self.corner.leakage_multiplier() * v2 * temp.max(0.2)
    }

    /// Power of the PCP/SoC domain, watts.
    #[must_use]
    pub fn soc_watts(self, op: &OperatingPoint) -> f64 {
        let v2 = op.soc_voltage.ratio_to(SOC_NOMINAL).powi(2);
        SOC_FULL_W * v2 * (SOC_IDLE_FRACTION + (1.0 - SOC_IDLE_FRACTION) * op.mem_activity)
    }

    /// Total chip power, watts.
    #[must_use]
    pub fn total_watts(self, op: &OperatingPoint) -> f64 {
        self.pmd_dynamic_watts(op) + self.pmd_leakage_watts(op) + self.soc_watts(op)
    }
}

/// Integrates power over simulated time to report per-run energy.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyMeter {
    joules: f64,
    seconds: f64,
}

impl EnergyMeter {
    /// A zeroed meter.
    #[must_use]
    pub fn new() -> Self {
        EnergyMeter::default()
    }

    /// Accumulates `watts` drawn for `dt_s` seconds.
    pub fn accumulate(&mut self, watts: f64, dt_s: f64) {
        self.joules += watts * dt_s;
        self.seconds += dt_s;
    }

    /// Total accumulated energy, joules.
    #[must_use]
    pub fn joules(self) -> f64 {
        self.joules
    }

    /// Total accumulated simulated time, seconds.
    #[must_use]
    pub fn seconds(self) -> f64 {
        self.seconds
    }

    /// Average power over the accumulated interval, watts.
    #[must_use]
    pub fn average_watts(self) -> f64 {
        if self.seconds > 0.0 {
            self.joules / self.seconds
        } else {
            0.0
        }
    }

    /// Clears the meter.
    pub fn reset(&mut self) {
        *self = EnergyMeter::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_load() -> OperatingPoint {
        let mut op = OperatingPoint::idle_nominal();
        op.core_activity = [1.0; NUM_CORES];
        op.mem_activity = 1.0;
        op
    }

    #[test]
    fn full_load_inside_tdp() {
        let w = PowerModel::new(Corner::Ttt).total_watts(&full_load());
        assert!(w < crate::topology::MAX_TDP_WATTS, "{w}");
        assert!(w > 25.0, "{w}");
    }

    #[test]
    fn undervolting_reduces_power_quadratically() {
        let model = PowerModel::new(Corner::Ttt);
        let mut op = full_load();
        let nominal = model.pmd_dynamic_watts(&op);
        op.pmd_voltage = Millivolts::new(490); // half of 980
        let half = model.pmd_dynamic_watts(&op);
        assert!((half / nominal - 0.25).abs() < 1e-9);
    }

    #[test]
    fn frequency_scales_dynamic_linearly() {
        let model = PowerModel::new(Corner::Ttt);
        let mut op = full_load();
        let nominal = model.pmd_dynamic_watts(&op);
        op.pmd_freq = [Megahertz::new(1200); NUM_PMDS];
        let half = model.pmd_dynamic_watts(&op);
        assert!((half / nominal - 0.5).abs() < 1e-9);
    }

    #[test]
    fn corner_leakage_ordering_visible_in_watts() {
        let op = full_load();
        let ttt = PowerModel::new(Corner::Ttt).pmd_leakage_watts(&op);
        let tff = PowerModel::new(Corner::Tff).pmd_leakage_watts(&op);
        let tss = PowerModel::new(Corner::Tss).pmd_leakage_watts(&op);
        assert!(tff > ttt && ttt > tss);
    }

    #[test]
    fn soc_domain_independent_of_pmd_voltage() {
        let model = PowerModel::new(Corner::Ttt);
        let mut op = full_load();
        let before = model.soc_watts(&op);
        op.pmd_voltage = Millivolts::new(760);
        assert_eq!(model.soc_watts(&op), before);
    }

    #[test]
    fn energy_meter_integrates() {
        let mut m = EnergyMeter::new();
        m.accumulate(10.0, 2.0);
        m.accumulate(20.0, 1.0);
        assert!((m.joules() - 40.0).abs() < 1e-12);
        assert!((m.seconds() - 3.0).abs() < 1e-12);
        assert!((m.average_watts() - 40.0 / 3.0).abs() < 1e-12);
        m.reset();
        assert_eq!(m.average_watts(), 0.0);
    }

    #[test]
    fn idle_chip_draws_only_leakage_and_soc_floor() {
        let model = PowerModel::new(Corner::Ttt);
        let op = OperatingPoint::idle_nominal();
        assert_eq!(model.pmd_dynamic_watts(&op), 0.0);
        assert!(model.total_watts(&op) > 0.0);
    }
}
