//! The program abstraction executed by the simulated machine.
//!
//! A [`Program`] is a workload kernel written against the [`Machine`]
//! op-level API; running it produces an [`OutputDigest`] — the simulator's
//! stand-in for "the program output" that the characterization framework
//! compares against a golden nominal-conditions digest to detect silent
//! data corruptions (Table 3 of the paper).

use crate::machine::Machine;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A workload kernel runnable on the simulated machine.
///
/// Implementors perform their real computation through the [`Machine`] op
/// API (so every arithmetic op and memory access passes through the fault
/// injection and counter paths) and fold everything that constitutes
/// "program output" into the returned digest.
pub trait Program {
    /// Stable benchmark name (e.g. `"bwaves"`).
    fn name(&self) -> &str;

    /// The input-dataset label (`"ref"`, `"train"`, …). Programs with
    /// multiple datasets return a different label per instance.
    fn dataset(&self) -> &str {
        "ref"
    }

    /// Executes the kernel on `machine` and returns the output digest.
    ///
    /// If the machine crashes mid-run the remaining ops short-circuit and
    /// the digest is meaningless; callers must check the machine status.
    fn run(&self, machine: &mut Machine<'_>) -> OutputDigest;
}

/// An order-sensitive FNV-1a style accumulator of program output.
///
/// ```
/// use margins_sim::program::OutputDigest;
///
/// let mut a = OutputDigest::new();
/// a.absorb_u64(1);
/// a.absorb_f64(2.5);
/// let mut b = OutputDigest::new();
/// b.absorb_u64(1);
/// b.absorb_f64(2.5);
/// assert_eq!(a, b);
/// b.absorb_u64(3);
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OutputDigest(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

impl OutputDigest {
    /// A fresh digest.
    #[must_use]
    pub fn new() -> Self {
        OutputDigest(FNV_OFFSET)
    }

    /// Folds a 64-bit value into the digest.
    pub fn absorb_u64(&mut self, v: u64) {
        let mut h = self.0;
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Folds a floating-point value into the digest by bit pattern, so a
    /// single flipped mantissa bit (or an injected NaN) changes the digest.
    pub fn absorb_f64(&mut self, v: f64) {
        self.absorb_u64(v.to_bits());
    }

    /// The digest value.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Reconstructs a digest from a previously exported [`value`] — the
    /// deserialization side of persisted campaign results.
    ///
    /// [`value`]: OutputDigest::value
    #[must_use]
    pub const fn from_value(v: u64) -> Self {
        OutputDigest(v)
    }
}

impl Default for OutputDigest {
    fn default() -> Self {
        OutputDigest::new()
    }
}

impl fmt::Display for OutputDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = OutputDigest::new();
        a.absorb_u64(1);
        a.absorb_u64(2);
        let mut b = OutputDigest::new();
        b.absorb_u64(2);
        b.absorb_u64(1);
        assert_ne!(a, b);
    }

    #[test]
    fn digest_detects_single_bit_difference() {
        let mut a = OutputDigest::new();
        a.absorb_f64(1.0);
        let mut b = OutputDigest::new();
        b.absorb_f64(f64::from_bits(1.0f64.to_bits() ^ 1));
        assert_ne!(a, b);
    }

    #[test]
    fn nan_bit_patterns_are_distinguished() {
        let mut a = OutputDigest::new();
        a.absorb_f64(f64::NAN);
        let mut b = OutputDigest::new();
        b.absorb_f64(1.0);
        assert_ne!(a, b);
    }

    #[test]
    fn display_is_16_hex_digits() {
        assert_eq!(OutputDigest::new().to_string().len(), 16);
    }
}
