//! The management processors of the standby power domain (§2.1).
//!
//! * **SLIMpro** — "monitors system sensors, configures system attributes
//!   (e.g. regulate supply voltage, change DRAM refresh rate etc.) and
//!   accesses all error reporting infrastructure, using an integrated I2C
//!   controller". System software (here: the characterization framework)
//!   regulates voltages, reads sensors and drains EDAC reports through it.
//! * **PMpro** — "provides advanced power management capabilities, such as
//!   multiple power planes and clock gating, thermal protection circuits,
//!   ACPI power management states and external power throttling support".
//!
//! Both are thin validated command interfaces over the [`System`] state; the
//! standby domain is never scaled, so they keep working while the cores are
//! being crashed.

use crate::edac::EdacRecord;
use crate::freq::Megahertz;
use crate::system::System;
use crate::topology::PmdId;
use crate::volt::{Millivolts, SupplyError};
use std::fmt;

/// Error raised by an invalid frequency request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrequencyError {
    /// The rejected frequency.
    pub requested: Megahertz,
}

impl fmt::Display for FrequencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "requested {} is not a valid PMD frequency (300MHz steps, 300–2400MHz)",
            self.requested
        )
    }
}

impl std::error::Error for FrequencyError {}

/// The SLIMpro mailbox interface.
pub struct SlimPro<'a> {
    sys: &'a mut System,
}

impl<'a> SlimPro<'a> {
    pub(crate) fn new(sys: &'a mut System) -> Self {
        SlimPro { sys }
    }

    /// Regulates the shared PMD rail (all four PMDs, §2.1) in 5 mV steps.
    ///
    /// # Errors
    ///
    /// Returns a [`SupplyError`] for off-step or above-nominal requests.
    pub fn set_pmd_voltage(&mut self, v: Millivolts) -> Result<(), SupplyError> {
        self.sys.supplies.set_pmd(v)?;
        self.sys.log_console(&format!("slimpro: pmd rail -> {v}"));
        self.sys.observe(|| margins_trace::TraceEvent::RailSet {
            rail: "pmd".to_owned(),
            mv: v.get(),
        });
        Ok(())
    }

    /// Regulates the PCP/SoC rail in 5 mV steps.
    ///
    /// # Errors
    ///
    /// Returns a [`SupplyError`] for off-step or above-nominal requests.
    pub fn set_soc_voltage(&mut self, v: Millivolts) -> Result<(), SupplyError> {
        self.sys.supplies.set_soc(v)?;
        self.sys.log_console(&format!("slimpro: soc rail -> {v}"));
        self.sys.observe(|| margins_trace::TraceEvent::RailSet {
            rail: "soc".to_owned(),
            mv: v.get(),
        });
        Ok(())
    }

    /// Sets one PMD's clock (PMDs have private frequencies, §2.1).
    ///
    /// # Errors
    ///
    /// Returns a [`FrequencyError`] when `f` is not a 300 MHz multiple in
    /// the supported range.
    pub fn set_pmd_frequency(&mut self, pmd: PmdId, f: Megahertz) -> Result<(), FrequencyError> {
        if !f.is_valid_pmd_frequency() {
            return Err(FrequencyError { requested: f });
        }
        self.sys.pmd_freq[pmd.index()] = f;
        self.sys
            .log_console(&format!("slimpro: {pmd} clock -> {f}"));
        Ok(())
    }

    /// Reads the die-temperature sensor, °C.
    #[must_use]
    pub fn read_die_temperature_c(&self) -> f64 {
        self.sys.thermal.die_temp_c()
    }

    /// Drains all pending EDAC error reports (the error-reporting mailbox).
    pub fn drain_error_reports(&mut self) -> Vec<EdacRecord> {
        self.sys.edac.drain()
    }

    /// Current PMD-rail voltage readback.
    #[must_use]
    pub fn read_pmd_voltage(&self) -> Millivolts {
        self.sys.supplies.pmd()
    }

    /// Current PCP/SoC-rail voltage readback.
    #[must_use]
    pub fn read_soc_voltage(&self) -> Millivolts {
        self.sys.supplies.soc()
    }
}

/// The PMpro power-management interface.
pub struct PmPro<'a> {
    sys: &'a mut System,
}

impl<'a> PmPro<'a> {
    pub(crate) fn new(sys: &'a mut System) -> Self {
        PmPro { sys }
    }

    /// Reprograms the thermal-protection setpoint the fan controller
    /// regulates to (the paper pins it to 43 °C during characterization).
    pub fn set_temperature_setpoint(&mut self, setpoint_c: f64) {
        self.sys.thermal = crate::thermal::ThermalModel::with_setpoint(setpoint_c);
        self.sys
            .log_console(&format!("pmpro: fan setpoint -> {setpoint_c:.1}C"));
    }

    /// Average chip power since power-up, watts (the external power meter).
    #[must_use]
    pub fn read_average_power_w(&self) -> f64 {
        self.sys.energy.average_watts()
    }

    /// Cumulative energy since power-up, joules.
    #[must_use]
    pub fn read_energy_j(&self) -> f64 {
        self.sys.energy.joules()
    }

    /// Whether the chip currently respects its TDP envelope at the given
    /// instantaneous estimate (external power-throttling support hook).
    #[must_use]
    pub fn within_tdp(&self, estimate_w: f64) -> bool {
        estimate_w <= crate::topology::MAX_TDP_WATTS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corner::{ChipSpec, Corner};
    use crate::system::SystemConfig;

    fn sys() -> System {
        System::new(ChipSpec::new(Corner::Ttt, 0), SystemConfig::default())
    }

    #[test]
    fn voltage_regulation_roundtrip() {
        let mut s = sys();
        let mut sp = s.slimpro_mut();
        sp.set_pmd_voltage(Millivolts::new(905)).unwrap();
        sp.set_soc_voltage(Millivolts::new(930)).unwrap();
        assert_eq!(sp.read_pmd_voltage().get(), 905);
        assert_eq!(sp.read_soc_voltage().get(), 930);
    }

    #[test]
    fn invalid_voltage_rejected() {
        let mut s = sys();
        let mut sp = s.slimpro_mut();
        assert!(sp.set_pmd_voltage(Millivolts::new(903)).is_err());
        assert!(sp.set_pmd_voltage(Millivolts::new(990)).is_err());
    }

    #[test]
    fn frequency_regulation_validates() {
        let mut s = sys();
        let mut sp = s.slimpro_mut();
        sp.set_pmd_frequency(PmdId::new(1), Megahertz::new(1200))
            .unwrap();
        let err = sp
            .set_pmd_frequency(PmdId::new(1), Megahertz::new(1000))
            .unwrap_err();
        assert_eq!(err.requested, Megahertz::new(1000));
        drop(sp);
        assert_eq!(s.pmd_frequency(PmdId::new(1)), Megahertz::new(1200));
        assert_eq!(s.pmd_frequency(PmdId::new(0)), crate::freq::MAX_FREQ);
    }

    #[test]
    fn temperature_sensor_readable() {
        let mut s = sys();
        let t = s.slimpro_mut().read_die_temperature_c();
        assert!(t > 20.0 && t < 80.0);
    }

    #[test]
    fn pmpro_power_telemetry() {
        let mut s = sys();
        let mut pp = s.pmpro_mut();
        assert_eq!(pp.read_energy_j(), 0.0);
        assert!(pp.within_tdp(30.0));
        assert!(!pp.within_tdp(60.0));
        pp.set_temperature_setpoint(50.0);
        drop(pp);
        assert!(s.console().iter().any(|l| l.contains("pmpro")));
    }
}
