//! Voltage types and the X-Gene 2 power-domain layout of §2.1.
//!
//! The chip exposes three independently regulated power domains:
//!
//! * **PMD** — all four processor modules share one supply; nominal 980 mV,
//!   downward-scalable in 5 mV steps,
//! * **PCP/SoC** — L3, DRAM controllers, central switch, I/O bridge; nominal
//!   950 mV, independently scalable in 5 mV steps,
//! * **Standby** — SLIMpro/PMpro management processors (never scaled here).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A supply voltage in millivolts.
///
/// A newtype so that voltages, frequencies and severity values can never be
/// mixed up in the fault-model math.
///
/// ```
/// use margins_sim::volt::Millivolts;
/// let v = Millivolts::new(980);
/// assert_eq!(v.down_steps(2).get(), 970);
/// assert_eq!(format!("{v}"), "980mV");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Millivolts(u32);

impl Millivolts {
    /// Creates a voltage from a raw millivolt count.
    #[must_use]
    pub const fn new(mv: u32) -> Self {
        Millivolts(mv)
    }

    /// The raw millivolt value.
    #[must_use]
    pub const fn get(self) -> u32 {
        self.0
    }

    /// The value as `f64`, for model math.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        f64::from(self.0)
    }

    /// Steps the voltage *down* by `n` regulator steps
    /// ([`VOLTAGE_STEP_MV`] each), saturating at zero.
    #[must_use]
    pub fn down_steps(self, n: u32) -> Self {
        Millivolts(self.0.saturating_sub(n * VOLTAGE_STEP_MV))
    }

    /// Steps the voltage *up* by `n` regulator steps.
    #[must_use]
    pub fn up_steps(self, n: u32) -> Self {
        Millivolts(self.0 + n * VOLTAGE_STEP_MV)
    }

    /// Relative value against a nominal voltage (`self / nominal`).
    #[must_use]
    pub fn ratio_to(self, nominal: Millivolts) -> f64 {
        self.as_f64() / nominal.as_f64()
    }
}

impl fmt::Display for Millivolts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}mV", self.0)
    }
}

impl From<Millivolts> for f64 {
    fn from(v: Millivolts) -> f64 {
        v.as_f64()
    }
}

/// Regulator granularity: the SLIMpro changes domain voltages in 5 mV steps
/// (§2.1 of the paper).
pub const VOLTAGE_STEP_MV: u32 = 5;

/// Nominal PMD-domain supply (§3.2: "the nominal voltage for the X-Gene 2 is
/// 980mV").
pub const PMD_NOMINAL: Millivolts = Millivolts::new(980);

/// Nominal PCP/SoC-domain supply (§2.1: "beginning from 950mV").
pub const SOC_NOMINAL: Millivolts = Millivolts::new(950);

/// One of the three independently regulated power domains of §2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PowerDomain {
    /// The shared supply of all four processor modules (cores + L1 + L2).
    Pmd,
    /// The processor-complex/SoC supply (L3, memory controllers, switch, I/O).
    PcpSoc,
    /// The always-on management domain (SLIMpro, PMpro, I2C).
    Standby,
}

impl PowerDomain {
    /// The domain's nominal supply voltage.
    #[must_use]
    pub fn nominal(self) -> Millivolts {
        match self {
            PowerDomain::Pmd => PMD_NOMINAL,
            PowerDomain::PcpSoc => SOC_NOMINAL,
            // The standby domain is not scaled; model it at the SoC level.
            PowerDomain::Standby => SOC_NOMINAL,
        }
    }

    /// Whether system software may scale this domain's voltage.
    #[must_use]
    pub fn is_scalable(self) -> bool {
        !matches!(self, PowerDomain::Standby)
    }
}

impl fmt::Display for PowerDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PowerDomain::Pmd => "PMD",
            PowerDomain::PcpSoc => "PCP/SoC",
            PowerDomain::Standby => "Standby",
        };
        f.write_str(name)
    }
}

/// The regulated state of the chip's supplies: one shared PMD rail and one
/// PCP/SoC rail, per §2.1 (the coarse-grained domain design the paper's §6
/// critiques).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SupplyState {
    pmd: Millivolts,
    soc: Millivolts,
}

impl SupplyState {
    /// Both rails at nominal.
    #[must_use]
    pub fn nominal() -> Self {
        SupplyState {
            pmd: PMD_NOMINAL,
            soc: SOC_NOMINAL,
        }
    }

    /// Current PMD-rail voltage.
    #[must_use]
    pub fn pmd(self) -> Millivolts {
        self.pmd
    }

    /// Current PCP/SoC-rail voltage.
    #[must_use]
    pub fn soc(self) -> Millivolts {
        self.soc
    }

    /// Sets the PMD rail.
    ///
    /// # Errors
    ///
    /// Returns [`SupplyError::AboveNominal`] when raising above nominal (the
    /// regulator only scales downwards, §2.1) and [`SupplyError::OffStep`]
    /// when the request is not a multiple of the 5 mV step.
    pub fn set_pmd(&mut self, v: Millivolts) -> Result<(), SupplyError> {
        Self::validate(v, PMD_NOMINAL)?;
        self.pmd = v;
        Ok(())
    }

    /// Sets the PCP/SoC rail; same constraints as [`SupplyState::set_pmd`].
    ///
    /// # Errors
    ///
    /// See [`SupplyState::set_pmd`].
    pub fn set_soc(&mut self, v: Millivolts) -> Result<(), SupplyError> {
        Self::validate(v, SOC_NOMINAL)?;
        self.soc = v;
        Ok(())
    }

    fn validate(v: Millivolts, nominal: Millivolts) -> Result<(), SupplyError> {
        if v > nominal {
            return Err(SupplyError::AboveNominal {
                requested: v,
                nominal,
            });
        }
        if !v.get().is_multiple_of(VOLTAGE_STEP_MV) {
            return Err(SupplyError::OffStep { requested: v });
        }
        Ok(())
    }
}

impl Default for SupplyState {
    fn default() -> Self {
        SupplyState::nominal()
    }
}

/// Error raised by invalid supply-regulation requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupplyError {
    /// The requested voltage exceeds the domain's nominal supply.
    AboveNominal {
        /// Voltage that was requested.
        requested: Millivolts,
        /// The domain's nominal voltage.
        nominal: Millivolts,
    },
    /// The requested voltage is not a multiple of the 5 mV regulator step.
    OffStep {
        /// Voltage that was requested.
        requested: Millivolts,
    },
}

impl fmt::Display for SupplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SupplyError::AboveNominal { requested, nominal } => write!(
                f,
                "requested {requested} exceeds the nominal supply {nominal}"
            ),
            SupplyError::OffStep { requested } => write!(
                f,
                "requested {requested} is not a multiple of the {VOLTAGE_STEP_MV}mV regulator step"
            ),
        }
    }
}

impl std::error::Error for SupplyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_arithmetic() {
        let v = Millivolts::new(980);
        assert_eq!(v.down_steps(1).get(), 975);
        assert_eq!(v.down_steps(4).get(), 960);
        assert_eq!(v.up_steps(2).get(), 990);
        assert_eq!(Millivolts::new(3).down_steps(1).get(), 0);
    }

    #[test]
    fn supply_state_accepts_valid_downscale() {
        let mut s = SupplyState::nominal();
        s.set_pmd(Millivolts::new(900)).unwrap();
        s.set_soc(Millivolts::new(905)).unwrap();
        assert_eq!(s.pmd().get(), 900);
        assert_eq!(s.soc().get(), 905);
    }

    #[test]
    fn supply_state_rejects_upscale_and_offstep() {
        let mut s = SupplyState::nominal();
        assert!(matches!(
            s.set_pmd(Millivolts::new(985)),
            Err(SupplyError::AboveNominal { .. })
        ));
        assert!(matches!(
            s.set_pmd(Millivolts::new(902)),
            Err(SupplyError::OffStep { .. })
        ));
        // State untouched after errors.
        assert_eq!(s.pmd(), PMD_NOMINAL);
    }

    #[test]
    fn domain_properties() {
        assert!(PowerDomain::Pmd.is_scalable());
        assert!(PowerDomain::PcpSoc.is_scalable());
        assert!(!PowerDomain::Standby.is_scalable());
        assert_eq!(PowerDomain::Pmd.nominal(), PMD_NOMINAL);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Millivolts::new(760).to_string(), "760mV");
        assert_eq!(PowerDomain::PcpSoc.to_string(), "PCP/SoC");
        let err = SupplyError::OffStep {
            requested: Millivolts::new(902),
        };
        assert!(err.to_string().contains("902mV"));
    }

    #[test]
    fn ratio_to_nominal() {
        let half = Millivolts::new(490);
        assert!((half.ratio_to(PMD_NOMINAL) - 0.5).abs() < 1e-12);
    }
}
