//! The §6 design enhancements, as simulatable chip options.
//!
//! "Undervolting characterization studies such as the one we report in this
//! paper can be used to provide hardware design recommendations for
//! enhancements if the system (or its future revisions) is to be used in
//! scaled voltage conditions":
//!
//! * **Stronger error protection** (§6a) — interleaved SECDED(39,32) on
//!   every array, including the L1s (which ship with parity only). Weak-cell
//!   double-bit patterns become corrected errors; L1 hits on dirty lines no
//!   longer lose data.
//! * **Hardware detectors** (§6b) — skitter/monitor-style circuits watching
//!   the critical paths. A detected timing fault is retried instead of
//!   corrupting state: SDC behaviour transforms into corrected-error
//!   behaviour (with a retry penalty), enabling the ECC-proxy voltage
//!   speculation of [9, 10] that the stock X-Gene 2 cannot support.
//! * **Adaptive clocking** (the §4.4 footnote, citing reference 38) — stretches the
//!   clock through droop events, removing the di/dt component of the
//!   effective critical voltage at a small throughput cost.
//!
//! (The third §6 recommendation — finer-grained voltage domains — is an
//! energy-model property; see `margins-energy`'s per-PMD-rail staircase.)

use serde::{Deserialize, Serialize};

/// Optional hardware enhancements of a simulated chip revision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Enhancements {
    /// §6a: interleaved SECDED(39,32) on all cache arrays (replacing L1
    /// parity and plain per-64-bit SECDED on L2/L3).
    pub extended_ecc: bool,
    /// §6b: datapath timing-fault detectors with retry.
    pub residue_checks: bool,
    /// §4.4 footnote: adaptive clocking suppresses droop-induced margin
    /// loss at a throughput cost.
    pub adaptive_clocking: bool,
}

impl Enhancements {
    /// The stock X-Gene 2: no enhancements.
    #[must_use]
    pub fn stock() -> Self {
        Enhancements::default()
    }

    /// Every §6 enhancement enabled.
    #[must_use]
    pub fn all() -> Self {
        Enhancements {
            extended_ecc: true,
            residue_checks: true,
            adaptive_clocking: true,
        }
    }

    /// Whether any enhancement is active.
    #[must_use]
    pub fn any(self) -> bool {
        self.extended_ecc || self.residue_checks || self.adaptive_clocking
    }
}

/// Fraction of datapath timing faults the §6b detectors catch (residue and
/// parity predictors do not cover every path).
pub const RESIDUE_COVERAGE: f64 = 0.85;

/// Cycle penalty of one detected-and-retried op.
pub const RETRY_PENALTY_CYCLES: f64 = 24.0;

/// Throughput tax of adaptive clocking per activity block, cycles per mV of
/// suppressed droop.
pub const ADAPTIVE_CLOCK_STRETCH_CYCLES_PER_MV: f64 = 1.5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_has_nothing() {
        assert!(!Enhancements::stock().any());
    }

    #[test]
    fn all_has_everything() {
        let e = Enhancements::all();
        assert!(e.extended_ecc && e.residue_checks && e.adaptive_clocking);
        assert!(e.any());
    }

    #[test]
    fn coverage_is_a_probability() {
        assert!((0.0..=1.0).contains(&RESIDUE_COVERAGE));
    }
}
