//! Behavioural simulator of an APM X-Gene 2 class micro-server — the
//! hardware substrate for the voltage-margin characterization study of
//! Papadimitriou et al., *"Harnessing Voltage Margins for Energy Efficiency
//! in Multicore CPUs"*, MICRO-50 2017.
//!
//! The real study undervolts three physical 8-core ARMv8 chips. This crate
//! substitutes the silicon with a simulator that reproduces the parts of the
//! machine the paper's findings are *about*:
//!
//! * the chip **topology** of Table 2 — 8 cores in 4 PMDs (each pair sharing
//!   a 256 KB L2), an 8 MB L3 in the separate PCP/SoC power domain
//!   ([`topology`]),
//! * the **voltage and frequency domains** of §2.1 — one shared PMD supply
//!   (980 mV nominal, 5 mV steps), per-PMD clocks from 300 MHz to 2.4 GHz
//!   with the clock-skipping/clock-division rule of §3.2 that collapses all
//!   frequencies into two effective timing regimes ([`volt`], [`freq`]),
//! * **process variation** — TTT/TFF/TSS corner chips and per-core
//!   threshold-voltage offsets ([`corner`]),
//! * the two failure mechanisms of §3.4 — **timing-path faults** in the
//!   pipeline (dominant on X-Gene 2, producing SDCs/crashes) and **SRAM
//!   bit-cell faults** in the caches (caught by parity/SECDED, producing
//!   CE/UE reports) ([`faults`]),
//! * the **cache hierarchy** with its protection schemes and an EDAC-style
//!   error log ([`cache`], [`edac`]),
//! * **power, thermal and supply-droop** models ([`power`], [`thermal`],
//!   [`droop`]),
//! * the 101-event **PMU counter file** used by the prediction study
//!   ([`counters`]),
//! * the **management processors** (SLIMpro/PMpro) through which system
//!   software regulates voltage and drains error reports ([`mgmt`]),
//! * a [`system::System`] that boots, executes [`Program`]s on chosen cores
//!   through the [`machine::Machine`] op-level API, exposes a heartbeat and
//!   can be power-cycled by an external watchdog.
//!
//! Every stochastic element is driven by seeded RNGs: a chip is a pure
//! function of its [`corner::ChipSpec`], and a run is a pure function of
//! (chip, workload, configuration, run seed).
//!
//! # Example
//!
//! ```
//! use margins_sim::{ChipSpec, Corner, System, SystemConfig};
//! use margins_sim::volt::Millivolts;
//!
//! let mut sys = System::new(ChipSpec::new(Corner::Ttt, 0), SystemConfig::default());
//! sys.slimpro_mut().set_pmd_voltage(Millivolts::new(980)).unwrap();
//! assert!(sys.is_responsive());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod calib;
pub mod corner;
pub mod counters;
pub mod droop;
pub mod edac;
pub mod enhance;
pub mod faults;
pub mod freq;
pub mod machine;
pub mod mgmt;
pub mod power;
pub mod program;
pub mod system;
pub mod thermal;
pub mod topology;
pub mod volt;

pub use corner::{ChipSpec, Corner};
pub use counters::{CounterFile, PmuEvent};
pub use enhance::Enhancements;
pub use freq::Megahertz;
pub use machine::Machine;
pub use program::{OutputDigest, Program};
pub use system::{RunOutcome, RunRecord, System, SystemConfig};
pub use topology::{CoreId, PmdId};
pub use volt::Millivolts;
