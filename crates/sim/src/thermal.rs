//! Lumped thermal model and fan controller.
//!
//! §3.1: "To isolate the impact of temperature that can affect our results
//! … we also control the temperature by adjusting the CPU's fan speed
//! accordingly. We stabilize the temperature at 43°C, and thus, all
//! benchmarks complete their execution at the same temperature."
//!
//! The model is a single thermal node: `C·dT/dt = P − (T − T_amb)/R(fan)`,
//! where the fan controller adjusts the thermal resistance to steer the die
//! temperature towards the setpoint.

use crate::calib;
use serde::{Deserialize, Serialize};

/// Ambient temperature around the board, °C.
pub const AMBIENT_C: f64 = 25.0;

/// Thermal capacitance of the die+spreader node, J/°C.
const THERMAL_CAPACITANCE: f64 = 12.0;

/// Thermal resistance range achievable by the fan, °C/W (min = full speed).
const R_MIN: f64 = 0.35;
const R_MAX: f64 = 3.0;

/// A single-node RC thermal model with a proportional fan controller.
///
/// ```
/// use margins_sim::thermal::ThermalModel;
///
/// let mut t = ThermalModel::new();
/// // Run 20 W through the die for a while; the fan converges on 43 °C.
/// for _ in 0..20_000 {
///     t.step(20.0, 0.05);
/// }
/// assert!((t.die_temp_c() - 43.0).abs() < 1.5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalModel {
    die_temp_c: f64,
    setpoint_c: f64,
    fan_level: f64, // 0.0 (off) .. 1.0 (full speed)
}

impl ThermalModel {
    /// A model starting at the paper's 43 °C setpoint.
    #[must_use]
    pub fn new() -> Self {
        Self::with_setpoint(calib::TEMP_SETPOINT_C)
    }

    /// A model regulating towards `setpoint_c`.
    #[must_use]
    pub fn with_setpoint(setpoint_c: f64) -> Self {
        ThermalModel {
            die_temp_c: setpoint_c,
            setpoint_c,
            fan_level: 0.5,
        }
    }

    /// Current die temperature, °C.
    #[must_use]
    pub fn die_temp_c(&self) -> f64 {
        self.die_temp_c
    }

    /// The regulation setpoint, °C.
    #[must_use]
    pub fn setpoint_c(&self) -> f64 {
        self.setpoint_c
    }

    /// Current fan drive level in `[0, 1]`.
    #[must_use]
    pub fn fan_level(&self) -> f64 {
        self.fan_level
    }

    /// Advances the model by `dt_s` seconds while the chip dissipates
    /// `power_w` watts, and lets the fan controller react.
    pub fn step(&mut self, power_w: f64, dt_s: f64) {
        // Proportional fan control on the temperature error.
        let error = self.die_temp_c - self.setpoint_c;
        self.fan_level = (self.fan_level + 0.08 * error * dt_s.max(1e-3)).clamp(0.0, 1.0);
        let r = R_MAX + (R_MIN - R_MAX) * self.fan_level;
        let dt = (power_w - (self.die_temp_c - AMBIENT_C) / r) * dt_s / THERMAL_CAPACITANCE;
        self.die_temp_c += dt;
    }

    /// The critical-voltage shift (mV) induced by deviating from the
    /// characterization setpoint; zero when perfectly regulated (§3.1).
    #[must_use]
    pub fn vcrit_shift_mv(&self) -> f64 {
        (self.die_temp_c - calib::TEMP_SETPOINT_C) * calib::VCRIT_TEMP_SLOPE_MV_PER_C
    }
}

impl Default for ThermalModel {
    fn default() -> Self {
        ThermalModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_setpoint_under_steady_load() {
        let mut t = ThermalModel::new();
        for _ in 0..40_000 {
            t.step(25.0, 0.05);
        }
        assert!(
            (t.die_temp_c() - t.setpoint_c()).abs() < 1.5,
            "converged to {}",
            t.die_temp_c()
        );
    }

    #[test]
    fn heavier_load_spins_fan_harder() {
        let mut light = ThermalModel::new();
        let mut heavy = ThermalModel::new();
        for _ in 0..40_000 {
            light.step(8.0, 0.05);
            heavy.step(30.0, 0.05);
        }
        assert!(heavy.fan_level() > light.fan_level());
    }

    #[test]
    fn regulated_die_has_negligible_vcrit_shift() {
        let mut t = ThermalModel::new();
        for _ in 0..40_000 {
            t.step(20.0, 0.05);
        }
        assert!(t.vcrit_shift_mv().abs() < 1.0);
    }

    #[test]
    fn hot_die_raises_vcrit() {
        let mut t = ThermalModel::with_setpoint(43.0);
        // Force the die hot by disabling time for the controller to react.
        for _ in 0..100 {
            t.step(200.0, 0.5);
        }
        assert!(t.die_temp_c() > 43.0);
        assert!(t.vcrit_shift_mv() > 0.0);
    }
}
