//! Calibration constants of the simulated silicon.
//!
//! Every constant here is anchored to a specific statement of the paper;
//! the doc comment on each one cites it. The constants are deliberately
//! centralized so that the mapping from paper observation to model parameter
//! is auditable in one place.
//!
//! # The timing-fault intensity model
//!
//! Per executed micro-op, the probability of a critical-path timing failure
//! is an exponential function of the margin between the supply and the
//! core's critical voltage:
//!
//! ```text
//! λ(op) = w(op) · P0 · exp( −(V − Vcrit(core) − droop) / S_MV )
//! ```
//!
//! where `w(op)` is the op-class path-stress weight. Over a run the expected
//! fault count is `Λ(V) = M · P0 · exp(−(V − Vcrit)/S_MV)` with
//! `M = Σ w(op)` the workload's *stress mass*. The observed safe `Vmin` of a
//! (core, workload) pair is the voltage where `Λ` becomes non-negligible,
//! i.e. `Vmin ≈ Vcrit + S_MV · ln(M · P0 / Λ_detect)`. Workload-to-workload
//! `Vmin` variation therefore scales with the *logarithm* of the stress-mass
//! ratio, reproducing the ~25 mV per-core spread of Figure 4, and the crash
//! voltage sits a further `S_MV · ln(M / M_os)`-ish below, reproducing the
//! benchmark-dependent width of the unsafe (grey) region.

use crate::freq::TimingRegime;

/// Fault-process intensity at zero margin per unit stress weight.
///
/// Chosen together with [`S_MV`] and the workload stress masses so that the
/// robust-core (core 4) safe Vmin of the TTT chip lands in the paper's
/// 860–885 mV band at 2.4 GHz (Figure 4).
pub const P0: f64 = 1e-6;

/// Exponential voltage scale of the timing-fault intensity, in mV.
///
/// Sets how fast abnormal behaviour ramps as voltage drops below Vmin: the
/// unsafe (grey) regions of Figure 4 span roughly 10–35 mV, i.e. severity
/// saturates within ~6 regulator steps.
pub const S_MV: f64 = 5.0;

/// Detection threshold: expected-fault level at which a 10-iteration
/// campaign starts observing abnormalities (used only by analytical
/// helpers / tests; the simulator itself just samples the Poisson process).
pub const LAMBDA_DETECT: f64 = 0.07;

/// Critical voltage (mV) of the *most robust* core of the TTT chip at the
/// full-speed timing regime, before per-core offsets.
///
/// Anchored to Figure 4 (TTT): robust-core safe Vmin 860–885 mV across the
/// ten SPEC benchmarks with nominal at 980 mV (≥ ~18% voltage guardband,
/// §3.2).
pub const VCRIT_BASE_TTT_MV: f64 = 886.0;

/// Corner shift of the TFF (fast, high-leakage) part, mV.
///
/// §3.3: "the TFF chip has lower Vmin points than the TTT chip".
pub const VCRIT_SHIFT_TFF_MV: f64 = -5.0;

/// Corner shift of the TSS (slow, low-leakage) part, mV.
///
/// §3.3: TSS "has significantly higher Vmin points than the other two
/// chips"; §3.2: TSS guardband is ~15.7% vs ~18.4% (≈ +13 mV at the top).
pub const VCRIT_SHIFT_TSS_MV: f64 = 13.0;

/// Per-core critical-voltage offsets (mV) on top of the corner base.
///
/// Figure 4 / §3.3: PMD 2 (cores 4 and 5) is the most robust PMD on all
/// three chips; PMD 0 (cores 0 and 1) the most sensitive; the spread is "up
/// to 3.6% more voltage reduction" (~25–30 mV).
pub const CORE_OFFSET_MV: [f64; 8] = [22.0, 19.0, 12.0, 14.0, 0.0, 2.0, 9.0, 7.0];

/// Standard deviation (mV) of the per-chip-serial jitter added to each
/// core's offset, keeping the PMD ordering stable while making each chip
/// individual ("large Vmin variation … among 3 different chips", §1).
pub const CORE_JITTER_SIGMA_MV: f64 = 2.0;

/// Voltage collapse threshold (mV) of the divided (≤1.2 GHz) clock regime.
///
/// §3.2: at 1.2 GHz every program on every core is safe down to 760 mV and
/// the system only *crashes* below it — no SDC/CE unsafe band exists.
pub const DIVIDED_COLLAPSE_MV: f64 = 760.0;

/// Logistic steepness (per mV) of the collapse probability below
/// [`DIVIDED_COLLAPSE_MV`]; large enough that 5 mV below the threshold the
/// first campaign iteration already crashes (§3.2: "only system crashes
/// below the safe Vmin").
pub const DIVIDED_COLLAPSE_STEEPNESS: f64 = 1.4;

/// Stress mass of the OS/boot activity that accompanies every run.
///
/// This is what turns deep undervolting into *system* crashes: kernel-mode
/// faults are control-critical. Calibrated so the crash (black) region of
/// Figure 4 starts ~25–35 mV below the robust-core Vmin.
pub const OS_STRESS_MASS: f64 = 95.0;

/// Fraction of OS-activity faults that take the whole system down (the rest
/// are absorbed/panic-handled as application-visible errors).
pub const OS_FAULT_SC_FRACTION: f64 = 0.85;

/// Consequence mix of a timing fault on an arithmetic (ALU/FPU) op:
/// (silent data corruption, application crash, system crash).
///
/// §3.4: "SDCs occur when the pipeline gets stressed (ALU and FPU tests)" —
/// datapath faults overwhelmingly corrupt values.
pub const ARITH_CONSEQUENCE: (f64, f64, f64) = (0.88, 0.09, 0.03);

/// Consequence mix of a timing fault on an address-generation/memory op.
pub const MEM_CONSEQUENCE: (f64, f64, f64) = (0.35, 0.55, 0.10);

/// Consequence mix of a timing fault on a branch/control op.
pub const BRANCH_CONSEQUENCE: (f64, f64, f64) = (0.50, 0.30, 0.20);

/// Number of workload-level faults in a single run beyond which cascading
/// failure escalates to a system crash regardless of individual outcomes.
pub const CASCADE_SC_THRESHOLD: u32 = 24;

/// Maximum supply droop (mV) added to the effective critical voltage under
/// full switching activity (di/dt noise, §7's voltage-noise literature).
pub const DROOP_MAX_MV: f64 = 6.0;

/// EWMA smoothing factor of the droop activity tracker (per 64-op block).
pub const DROOP_EWMA_ALPHA: f64 = 0.25;

/// Mean number of weak SRAM bit-cells per L2 array instance (256 KB + ECC ≈
/// 2.36 Mbit). The *tail* of the weak-cell distribution produces the
/// occasional corrected errors that accompany SDCs in the unsafe region
/// (§3.4: corrected errors never appear *first/alone* on X-Gene 2).
pub const L2_WEAK_CELLS_MEAN: f64 = 60.0;

/// Mean number of weak cells per L1 array (32 KB).
pub const L1_WEAK_CELLS_MEAN: f64 = 7.0;

/// Mean number of weak cells in the L3 array (8 MB, PCP/SoC domain — only
/// exposed when the SoC rail itself is scaled).
pub const L3_WEAK_CELLS_MEAN: f64 = 450.0;

/// Base voltage (mV) of the weak-cell failure distribution: a weak cell's
/// fail voltage is `SRAM_WEAK_BASE_MV + Exp(SRAM_WEAK_TAIL_MV)`.
///
/// §3.4: "the cache bit-cells safely operate at higher voltages (the cache
/// tests crash in much lower voltages than the ALU and FPU tests)" — the
/// bulk of cells is far more robust than the logic timing paths; only an
/// exponential tail of weak cells reaches into the unsafe region.
pub const SRAM_WEAK_BASE_MV: f64 = 740.0;

/// Exponential tail scale (mV) of weak-cell fail voltages.
pub const SRAM_WEAK_TAIL_MV: f64 = 33.0;

/// Upper truncation (mV) of shipped weak-cell fail voltages.
///
/// Cells failing above this are caught at manufacturing test and mapped out
/// with row/column redundancy. The clamp sits just below the lowest
/// workload Vmin of the most robust cores (Figure 4), enforcing the §3.4
/// ordering: "silent data corruptions appear at higher voltage levels than
/// corrected errors alone for any benchmark" — CEs only ever join the party
/// inside the unsafe region, never first.
pub const SRAM_REPAIR_CLAMP_MV: f64 = 855.0;

/// Critical voltage (mV) of the PCP/SoC domain's logic (DRAM controllers,
/// central switch): the rail can be scaled independently (§2.1) and its
/// logic collapses far below the PMD cores' critical voltages, leaving a
/// wide band where only the L3's weak cells (caught by ECC) misbehave —
/// the Itanium-style corrected-errors-first profile of §4.4.
pub const SOC_CRIT_MV: f64 = 730.0;

/// Fault intensity per L3/DRAM access at zero SoC margin.
pub const SOC_P0: f64 = 2e-5;

/// Effective SRAM margin relief (mV) in the divided clock regime.
///
/// Weak-cell failures on this design are *access-timing* failures: at half
/// clock the sense amplifiers get twice the development time, pushing every
/// shipped weak cell's fail voltage far below the 760 mV logic-collapse
/// threshold. This reproduces §3.2: at 1.2 GHz no abnormal behaviour of any
/// kind appears above the crash voltage.
pub const SRAM_DIVIDED_RELIEF_MV: f64 = 150.0;

/// Relative leakage-power multiplier per corner (TFF leaks, TSS doesn't):
/// §3, "The TFF is a fast corner part, which has high leakage … The TSS part
/// … has low leakage".
#[must_use]
pub fn leakage_multiplier(corner: crate::corner::Corner) -> f64 {
    match corner {
        crate::corner::Corner::Ttt => 1.0,
        crate::corner::Corner::Tff => 1.65,
        crate::corner::Corner::Tss => 0.55,
    }
}

/// Temperature sensitivity of the effective critical voltage, mV per °C
/// away from the 43 °C setpoint the paper stabilizes (§3.1).
pub const VCRIT_TEMP_SLOPE_MV_PER_C: f64 = 0.35;

/// Die temperature setpoint the fan controller regulates to (§3.1: "We
/// stabilize the temperature at 43°C").
pub const TEMP_SETPOINT_C: f64 = 43.0;

/// Expected Vmin (analytical helper): the voltage at which the run-level
/// expected fault count crosses [`LAMBDA_DETECT`], for a workload of stress
/// mass `stress_mass` on a core with critical voltage `vcrit_mv`.
///
/// Used by calibration tests to cross-check the emergent simulator
/// behaviour against the closed form.
#[must_use]
pub fn expected_vmin_mv(vcrit_mv: f64, stress_mass: f64) -> f64 {
    vcrit_mv + S_MV * (stress_mass * P0 / LAMBDA_DETECT).ln()
}

/// Which regime-dependent parameters apply at a given effective timing
/// regime.
#[must_use]
pub fn regime_is_full_speed(regime: TimingRegime) -> bool {
    matches!(regime, TimingRegime::FullSpeed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_vmin_is_monotone_in_stress() {
        let low = expected_vmin_mv(VCRIT_BASE_TTT_MV, 500.0);
        let high = expected_vmin_mv(VCRIT_BASE_TTT_MV, 50_000.0);
        assert!(high > low);
        // Spread over a 100x stress ratio is S_MV * ln(100) ≈ 23 mV.
        assert!((high - low - S_MV * 100f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn robust_core_vmin_band_matches_figure4() {
        // Workload stress masses are designed to span ~[400, 53000].
        let hi = expected_vmin_mv(VCRIT_BASE_TTT_MV, 53_000.0);
        let lo = expected_vmin_mv(VCRIT_BASE_TTT_MV, 400.0);
        assert!((880.0..=890.0).contains(&hi), "high-stress Vmin {hi}");
        assert!((855.0..=865.0).contains(&lo), "low-stress Vmin {lo}");
    }

    #[test]
    fn consequence_mixes_are_distributions() {
        for (s, a, c) in [ARITH_CONSEQUENCE, MEM_CONSEQUENCE, BRANCH_CONSEQUENCE] {
            assert!((s + a + c - 1.0).abs() < 1e-12);
            assert!(s >= 0.0 && a >= 0.0 && c >= 0.0);
        }
    }

    #[test]
    fn corner_leakage_ordering() {
        use crate::corner::Corner;
        assert!(leakage_multiplier(Corner::Tff) > leakage_multiplier(Corner::Ttt));
        assert!(leakage_multiplier(Corner::Tss) < leakage_multiplier(Corner::Ttt));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn pmd2_is_most_robust_in_offsets() {
        let min = CORE_OFFSET_MV.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(CORE_OFFSET_MV[4], min);
        // PMD0 cores carry the largest offsets.
        assert!(CORE_OFFSET_MV[0] >= CORE_OFFSET_MV[2]);
        assert!(CORE_OFFSET_MV[1] >= CORE_OFFSET_MV[5]);
    }
}
