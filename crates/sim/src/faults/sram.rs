//! The SRAM weak-cell fault model.
//!
//! §3.4's self-tests showed the X-Gene 2's cache arrays are far more robust
//! than its logic paths: cache-stress tests crash at much lower voltages
//! than ALU/FPU tests. We model each array as overwhelmingly healthy, with
//! a small static population of *weak cells* whose individual fail voltages
//! follow an exponential tail above a base voltage:
//!
//! ```text
//! V_fail(cell) = SRAM_WEAK_BASE_MV + Exp(SRAM_WEAK_TAIL_MV)
//! ```
//!
//! Only the extreme tail of that distribution reaches into the unsafe
//! region of Figure 4, producing the occasional corrected errors that
//! accompany (never precede) SDCs on this chip.

use crate::calib;
use crate::corner::ChipSpec;
use crate::topology::{CacheLevel, LINE_BYTES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Number of 64-bit data words in one cache line.
pub const WORDS_PER_LINE: u8 = (LINE_BYTES / 8) as u8;

/// A single weak bit-cell: its physical location inside the array and the
/// supply voltage below which it fails to hold its value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeakCell {
    /// Set index within the array.
    pub set: u32,
    /// Way index within the set.
    pub way: u8,
    /// 64-bit word index within the line (0–7).
    pub word: u8,
    /// Bit index within the word (0–63).
    pub bit: u8,
    /// Supply voltage (mV) below which the cell fails.
    pub vfail_mv: f64,
}

/// The static weak-cell population of one physical cache array instance.
///
/// Derived deterministically from the chip spec, the cache level and the
/// array instance index, so the same chip always has the same weak cells.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeakCellMap {
    level: CacheLevel,
    cells: Vec<WeakCell>,
    /// Lookup from (set, way) to indices into `cells`.
    by_location: BTreeMap<(u32, u8), Vec<u32>>,
}

impl WeakCellMap {
    /// Generates the weak-cell map for array `instance` of `level` on the
    /// chip described by `spec`, for an array of `sets` sets × `ways` ways.
    #[must_use]
    pub fn generate(
        spec: ChipSpec,
        level: CacheLevel,
        instance: usize,
        sets: u32,
        ways: u8,
    ) -> Self {
        let seed = spec.component_seed(&format!("weak-cells/{level}/{instance}"));
        let mut rng = StdRng::seed_from_u64(seed);
        let mean = match level {
            CacheLevel::L1I | CacheLevel::L1D => calib::L1_WEAK_CELLS_MEAN,
            CacheLevel::L2 => calib::L2_WEAK_CELLS_MEAN,
            CacheLevel::L3 => calib::L3_WEAK_CELLS_MEAN,
        };
        let count = sample_poisson(mean, &mut rng);
        let mut cells = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            // Cells whose fail voltage would reach the workloads' Vmin band
            // are caught at manufacturing test and mapped out with
            // row/column redundancy (see `calib::SRAM_REPAIR_CLAMP_MV`).
            let vfail_mv = (calib::SRAM_WEAK_BASE_MV - calib::SRAM_WEAK_TAIL_MV * u.ln())
                .min(calib::SRAM_REPAIR_CLAMP_MV);
            cells.push(WeakCell {
                set: rng.gen_range(0..sets),
                way: rng.gen_range(0..ways),
                word: rng.gen_range(0..WORDS_PER_LINE),
                bit: rng.gen_range(0..64),
                vfail_mv,
            });
        }
        let mut by_location: BTreeMap<(u32, u8), Vec<u32>> = BTreeMap::new();
        for (i, c) in cells.iter().enumerate() {
            by_location
                .entry((c.set, c.way))
                .or_default()
                .push(i as u32);
        }
        WeakCellMap {
            level,
            cells,
            by_location,
        }
    }

    /// The cache level this map belongs to.
    #[must_use]
    pub fn level(&self) -> CacheLevel {
        self.level
    }

    /// All weak cells in the array.
    #[must_use]
    pub fn cells(&self) -> &[WeakCell] {
        &self.cells
    }

    /// Weak cells residing at `(set, way)` that are *failing* at supply
    /// voltage `supply_mv` (their fail voltage exceeds the supply).
    pub fn failing_at<'a>(
        &'a self,
        set: u32,
        way: u8,
        supply_mv: f64,
    ) -> impl Iterator<Item = &'a WeakCell> + 'a {
        self.by_location
            .get(&(set, way))
            .into_iter()
            .flatten()
            .map(move |&i| &self.cells[i as usize])
            .filter(move |c| c.vfail_mv > supply_mv)
    }

    /// Total number of cells failing anywhere in the array at `supply_mv`.
    #[must_use]
    pub fn failing_count(&self, supply_mv: f64) -> usize {
        self.cells.iter().filter(|c| c.vfail_mv > supply_mv).count()
    }

    /// The highest fail voltage present in the array (the array's own
    /// "first error" voltage), or `None` for a flawless array.
    #[must_use]
    pub fn weakest_cell_vfail_mv(&self) -> Option<f64> {
        self.cells
            .iter()
            .map(|c| c.vfail_mv)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }
}

/// Knuth Poisson sampler (means here are small enough).
fn sample_poisson(mean: f64, rng: &mut StdRng) -> u32 {
    let l = (-mean).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 100_000 {
            return k; // defensive cap; unreachable for calibrated means
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corner::Corner;

    fn l2_map(serial: u64) -> WeakCellMap {
        // 256 KB, 8-way, 64 B lines → 512 sets.
        WeakCellMap::generate(
            ChipSpec::new(Corner::Ttt, serial),
            CacheLevel::L2,
            0,
            512,
            8,
        )
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(l2_map(3), l2_map(3));
    }

    #[test]
    fn different_instances_differ() {
        let spec = ChipSpec::new(Corner::Ttt, 3);
        let a = WeakCellMap::generate(spec, CacheLevel::L2, 0, 512, 8);
        let b = WeakCellMap::generate(spec, CacheLevel::L2, 1, 512, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn cell_count_near_calibrated_mean() {
        let counts: Vec<usize> = (0..20).map(|s| l2_map(s).cells().len()).collect();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!(
            (mean - calib::L2_WEAK_CELLS_MEAN).abs() < calib::L2_WEAK_CELLS_MEAN * 0.4,
            "mean weak cells {mean}"
        );
    }

    #[test]
    fn no_cells_fail_at_nominal() {
        // The nominal supply (980 mV) must be clean for every plausible
        // chip: tail would need to reach 240 mV above base (p < 1e-3 per
        // cell). Spot-check a handful of chips.
        for serial in 0..10 {
            assert_eq!(l2_map(serial).failing_count(980.0), 0, "serial {serial}");
        }
    }

    #[test]
    fn most_cells_fail_only_far_below_the_unsafe_region() {
        let map = l2_map(0);
        let deep = map.failing_count(760.0);
        let shallow = map.failing_count(850.0);
        assert!(deep > shallow);
        assert!(
            shallow <= 4,
            "only the extreme tail may reach the unsafe region, got {shallow}"
        );
        // The manufacturing-repair clamp guarantees the §3.4 ordering:
        // nothing fails above the lowest workload Vmin.
        for serial in 0..20 {
            assert_eq!(l2_map(serial).failing_count(calib::SRAM_REPAIR_CLAMP_MV), 0);
        }
    }

    #[test]
    fn failing_at_respects_location_and_voltage() {
        let map = l2_map(0);
        for cell in map.cells() {
            let above: Vec<_> = map
                .failing_at(cell.set, cell.way, cell.vfail_mv + 1.0)
                .filter(|c| c.bit == cell.bit && c.word == cell.word)
                .collect();
            assert!(above.is_empty(), "cell must hold above its fail voltage");
            let below: Vec<_> = map
                .failing_at(cell.set, cell.way, cell.vfail_mv - 1.0)
                .filter(|c| c.bit == cell.bit && c.word == cell.word)
                .collect();
            assert_eq!(below.len(), 1, "cell must fail below its fail voltage");
        }
    }

    #[test]
    fn weakest_cell_is_max_vfail() {
        let map = l2_map(1);
        let expected = map
            .cells()
            .iter()
            .map(|c| c.vfail_mv)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(map.weakest_cell_vfail_mv(), Some(expected));
    }

    #[test]
    fn geometry_bounds_respected() {
        let map = l2_map(2);
        for c in map.cells() {
            assert!(c.set < 512);
            assert!(c.way < 8);
            assert!(c.word < WORDS_PER_LINE);
            assert!(c.bit < 64);
            assert!(c.vfail_mv >= calib::SRAM_WEAK_BASE_MV);
        }
    }

    #[test]
    fn poisson_sampler_mean() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 3000;
        let total: u64 = (0..n)
            .map(|_| u64::from(sample_poisson(7.0, &mut rng)))
            .sum();
        let mean = total as f64 / f64::from(n);
        assert!((mean - 7.0).abs() < 0.3, "poisson mean {mean}");
    }
}
