//! The two failure mechanisms of §3.4.
//!
//! The paper's component-focused self-tests identified that the X-Gene 2 is
//! dominated by **timing-path failures** in the pipeline logic — SDCs appear
//! when the ALU/FPU are stressed — while the SRAM **bit-cells** keep working
//! to far lower voltages (cache-stress tests crash much later than ALU/FPU
//! tests). The two mechanisms live in:
//!
//! * [`timing`] — a Poisson process over executed micro-ops whose intensity
//!   grows exponentially as supply drops below a core's critical voltage,
//! * [`sram`] — a static population of weak bit-cells per cache array with
//!   exponentially distributed fail voltages.

pub mod sram;
pub mod timing;

pub use sram::{WeakCell, WeakCellMap};
pub use timing::{FaultConsequence, OpClass, TimingFaultModel};
