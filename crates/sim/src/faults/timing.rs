//! The timing-path fault model.
//!
//! Every retired micro-op stresses a bundle of critical paths; when the
//! supply sits below the core's effective critical voltage the op may latch
//! a wrong value. The per-op failure intensity is
//!
//! ```text
//! λ(op) = w(op) · P0 · exp( −(V − Vcrit − droop − ΔT) / S_MV )
//! ```
//!
//! and faults across a run form a Poisson process, which we sample with the
//! standard inversion trick: draw a unit-exponential budget, accumulate
//! per-op intensity, fire when the accumulator crosses the budget. That
//! costs one add + compare per op and one RNG draw per *fault*, keeping
//! multi-million-op characterization campaigns fast.
//!
//! In the divided clock regime (≤ 1.2 GHz, §3.2) the slack is so large that
//! no gradual path failures occur; instead the whole chip collapses at a
//! uniform threshold — exposed here as [`TimingFaultModel::collapse_probability`].

use crate::calib;
use crate::freq::TimingRegime;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Micro-op classes, each with its own path-stress and switching weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // variants are self-describing op kinds
pub enum OpClass {
    IntAlu,
    IntMul,
    IntDiv,
    FpAdd,
    FpMul,
    FpDiv,
    FpSqrt,
    Load,
    Store,
    Branch,
    Kernel,
}

/// Number of op classes.
pub const NUM_OP_CLASSES: usize = 11;

impl OpClass {
    /// All op classes in index order.
    pub const ALL: [OpClass; NUM_OP_CLASSES] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::FpSqrt,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::Kernel,
    ];

    /// Dense index of the class.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Path-stress weight `w(op)`: how hard the op leans on long critical
    /// paths. FP divide/sqrt exercise the deepest paths (§3.4: SDCs appear
    /// when the FPU/ALU pipelines are stressed); cache-feeding loads/stores
    /// barely touch them.
    ///
    /// The weights span nearly three decades: the workload-to-workload Vmin
    /// spread of Figure 4 (~25 mV) is `S_MV · ln(stress-mass ratio)`, so a
    /// pointer-chasing integer workload must carry orders of magnitude less
    /// stress per op than an FP-divide-dense one.
    #[must_use]
    pub fn stress_weight(self) -> f64 {
        match self {
            OpClass::IntAlu => 0.010,
            OpClass::IntMul => 0.100,
            OpClass::IntDiv => 0.500,
            OpClass::FpAdd => 0.500,
            OpClass::FpMul => 0.700,
            OpClass::FpDiv => 3.000,
            OpClass::FpSqrt => 2.000,
            OpClass::Load => 0.005,
            OpClass::Store => 0.005,
            OpClass::Branch => 0.020,
            OpClass::Kernel => 1.000,
        }
    }

    /// Switching-activity weight (feeds droop and dynamic power).
    #[must_use]
    pub fn activity_weight(self) -> f64 {
        match self {
            OpClass::IntAlu => 0.30,
            OpClass::IntMul => 0.60,
            OpClass::IntDiv => 0.50,
            OpClass::FpAdd => 0.70,
            OpClass::FpMul => 0.90,
            OpClass::FpDiv => 0.80,
            OpClass::FpSqrt => 0.80,
            OpClass::Load => 0.45,
            OpClass::Store => 0.45,
            OpClass::Branch => 0.25,
            OpClass::Kernel => 0.40,
        }
    }

    /// The (SDC, AC, SC) consequence mix of a fault on this op class.
    #[must_use]
    pub fn consequence_mix(self) -> (f64, f64, f64) {
        match self {
            OpClass::IntAlu
            | OpClass::IntMul
            | OpClass::IntDiv
            | OpClass::FpAdd
            | OpClass::FpMul
            | OpClass::FpDiv
            | OpClass::FpSqrt => calib::ARITH_CONSEQUENCE,
            OpClass::Load | OpClass::Store => calib::MEM_CONSEQUENCE,
            OpClass::Branch => calib::BRANCH_CONSEQUENCE,
            // Kernel-mode faults mostly take the whole system down.
            OpClass::Kernel => (
                0.0,
                1.0 - calib::OS_FAULT_SC_FRACTION,
                calib::OS_FAULT_SC_FRACTION,
            ),
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// What a timing fault does to the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultConsequence {
    /// The op's result value latched wrong — a candidate silent data
    /// corruption if it propagates to program output.
    CorruptValue,
    /// An address/control corruption trapped: the application dies (AC).
    AppCrash,
    /// Core control state corrupted: the machine hangs (SC).
    SysCrash,
}

/// Per-run Poisson sampler of timing faults for one core.
#[derive(Debug, Clone)]
pub struct TimingFaultModel {
    regime: TimingRegime,
    vcrit_mv: f64,
    supply_mv: f64,
    /// Cached per-class intensity at the current (supply, droop).
    lambda: [f64; NUM_OP_CLASSES],
    /// Intensity accumulated since the last fault.
    accum: f64,
    /// Unit-exponential distance to the next fault.
    budget: f64,
    /// Total stress mass accumulated this run (diagnostics / calibration).
    stress_mass: f64,
    faults_fired: u32,
    /// Poisson accounting events drawn this run (one per `on_op`/`on_burst`
    /// call) — the fault model's unit of work for profiling.
    samples: u64,
}

impl TimingFaultModel {
    /// Builds the sampler for a core with critical voltage `vcrit_mv`
    /// operating in `regime` at `supply_mv`, drawing its first budget from
    /// `rng`.
    #[must_use]
    pub fn new(vcrit_mv: f64, regime: TimingRegime, supply_mv: f64, rng: &mut StdRng) -> Self {
        let mut model = TimingFaultModel {
            regime,
            vcrit_mv,
            supply_mv,
            lambda: [0.0; NUM_OP_CLASSES],
            accum: 0.0,
            budget: draw_exponential(rng),
            stress_mass: 0.0,
            faults_fired: 0,
            samples: 0,
        };
        model.refresh(0.0, 0.0);
        model
    }

    /// Recomputes cached intensities for the current droop and thermal
    /// shift (called at activity-block boundaries).
    pub fn refresh(&mut self, droop_mv: f64, thermal_shift_mv: f64) {
        match self.regime {
            TimingRegime::FullSpeed => {
                let margin = self.supply_mv - self.vcrit_mv - droop_mv - thermal_shift_mv;
                // Cap the exponent so intensities stay finite deep in the
                // crash region.
                let boost = (-margin / calib::S_MV).min(30.0).exp();
                for class in OpClass::ALL {
                    self.lambda[class.index()] = class.stress_weight() * calib::P0 * boost;
                }
            }
            TimingRegime::Divided => {
                // No gradual path failures in the divided regime; collapse
                // is sampled at run granularity.
                self.lambda = [0.0; NUM_OP_CLASSES];
            }
        }
    }

    /// Accounts one executed op; returns the consequence if a fault fires.
    pub fn on_op(&mut self, class: OpClass, rng: &mut StdRng) -> Option<FaultConsequence> {
        let lambda = self.lambda[class.index()];
        self.samples += 1;
        self.stress_mass += class.stress_weight();
        self.accum += lambda;
        if self.accum < self.budget {
            return None;
        }
        self.accum = 0.0;
        self.budget = draw_exponential(rng);
        self.faults_fired += 1;
        Some(self.sample_consequence(class, rng))
    }

    /// Accounts a burst of `n` identical ops at once (used for OS/boot
    /// activity); returns the consequence of the *first* fault inside the
    /// burst, if any.
    pub fn on_burst(
        &mut self,
        class: OpClass,
        n: u32,
        rng: &mut StdRng,
    ) -> Option<FaultConsequence> {
        let lambda = self.lambda[class.index()];
        self.samples += 1;
        self.stress_mass += class.stress_weight() * f64::from(n);
        self.accum += lambda * f64::from(n);
        if self.accum < self.budget {
            return None;
        }
        self.accum = 0.0;
        self.budget = draw_exponential(rng);
        self.faults_fired += 1;
        Some(self.sample_consequence(class, rng))
    }

    fn sample_consequence(&self, class: OpClass, rng: &mut StdRng) -> FaultConsequence {
        let (sdc, ac, _sc) = class.consequence_mix();
        let u: f64 = rng.gen();
        if u < sdc {
            FaultConsequence::CorruptValue
        } else if u < sdc + ac {
            FaultConsequence::AppCrash
        } else {
            FaultConsequence::SysCrash
        }
    }

    /// Probability that the chip collapses outright during a run in the
    /// divided clock regime (§3.2: crash-only behaviour below 760 mV).
    /// Zero in the full-speed regime (gradual faults handle it there).
    #[must_use]
    pub fn collapse_probability(&self) -> f64 {
        match self.regime {
            TimingRegime::FullSpeed => 0.0,
            TimingRegime::Divided => {
                let deficit = calib::DIVIDED_COLLAPSE_MV - self.supply_mv;
                if deficit <= 0.0 {
                    0.0
                } else {
                    1.0 - (-deficit * calib::DIVIDED_COLLAPSE_STEEPNESS).exp()
                }
            }
        }
    }

    /// Total stress mass accumulated so far this run.
    #[must_use]
    pub fn stress_mass(&self) -> f64 {
        self.stress_mass
    }

    /// Number of faults fired so far this run.
    #[must_use]
    pub fn faults_fired(&self) -> u32 {
        self.faults_fired
    }

    /// Number of Poisson accounting events drawn so far this run.
    #[must_use]
    pub fn samples_drawn(&self) -> u64 {
        self.samples
    }

    /// The effective critical voltage this model was built with.
    #[must_use]
    pub fn vcrit_mv(&self) -> f64 {
        self.vcrit_mv
    }
}

fn draw_exponential(rng: &mut StdRng) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    /// Total faults over `seeds` independent runs of `ops` ops each —
    /// aggregating over seeds keeps these statistical assertions stable.
    fn count_faults(vcrit: f64, supply: f64, ops: u32, class: OpClass, seeds: u64) -> u32 {
        let mut faults = 0;
        for seed in 0..seeds {
            let mut r = StdRng::seed_from_u64(seed * 1001 + 13);
            let mut m = TimingFaultModel::new(vcrit, TimingRegime::FullSpeed, supply, &mut r);
            for _ in 0..ops {
                if m.on_op(class, &mut r).is_some() {
                    faults += 1;
                }
            }
        }
        faults
    }

    #[test]
    fn far_above_vcrit_no_faults() {
        assert_eq!(count_faults(886.0, 980.0, 200_000, OpClass::FpDiv, 5), 0);
    }

    #[test]
    fn fault_rate_grows_as_voltage_drops() {
        let high = count_faults(886.0, 890.0, 100_000, OpClass::FpMul, 10);
        let low = count_faults(886.0, 870.0, 100_000, OpClass::FpMul, 10);
        assert!(low > high, "low-V faults {low} vs high-V faults {high}");
        assert!(low > 0);
    }

    #[test]
    fn fault_count_matches_poisson_expectation() {
        // At V = Vcrit the per-op intensity is w·P0 = 0.5e-6. Over 10 seeds
        // of 2M FpAdd ops the expectation is 10; check a generous band.
        let faults = count_faults(886.0, 886.0, 2_000_000, OpClass::FpAdd, 10);
        assert!((3..=25).contains(&faults), "got {faults}");
    }

    #[test]
    fn heavier_op_classes_fault_more() {
        let light = count_faults(886.0, 876.0, 150_000, OpClass::Load, 8);
        let heavy = count_faults(886.0, 876.0, 150_000, OpClass::FpDiv, 8);
        assert!(heavy > light, "FpDiv {heavy} vs Load {light}");
    }

    #[test]
    fn burst_equivalent_to_loop_in_expectation() {
        let mut burst_faults = 0u32;
        for seed in 0..10 {
            let mut r1 = StdRng::seed_from_u64(seed * 77 + 5);
            let mut a = TimingFaultModel::new(886.0, TimingRegime::FullSpeed, 880.0, &mut r1);
            for _ in 0..100 {
                if a.on_burst(OpClass::Kernel, 1_000, &mut r1).is_some() {
                    burst_faults += 1;
                }
            }
        }
        let loop_faults = count_faults(886.0, 880.0, 100_000, OpClass::Kernel, 10);
        let ratio = f64::from(burst_faults.max(1)) / f64::from(loop_faults.max(1));
        assert!(
            ratio > 0.4 && ratio < 2.5,
            "burst {burst_faults} loop {loop_faults}"
        );
    }

    #[test]
    fn divided_regime_has_no_gradual_faults() {
        let mut r = rng();
        let mut m = TimingFaultModel::new(886.0, TimingRegime::Divided, 800.0, &mut r);
        for _ in 0..500_000 {
            assert!(m.on_op(OpClass::FpDiv, &mut r).is_none());
        }
    }

    #[test]
    fn divided_collapse_probability_profile() {
        let mut r = rng();
        let safe = TimingFaultModel::new(760.0, TimingRegime::Divided, 760.0, &mut r);
        assert_eq!(safe.collapse_probability(), 0.0);
        let below = TimingFaultModel::new(760.0, TimingRegime::Divided, 755.0, &mut r);
        assert!(below.collapse_probability() > 0.99);
        let full = TimingFaultModel::new(760.0, TimingRegime::FullSpeed, 700.0, &mut r);
        assert_eq!(full.collapse_probability(), 0.0);
    }

    #[test]
    fn droop_raises_fault_rate() {
        let mut fq = 0u32;
        let mut fn_ = 0u32;
        for seed in 0..12 {
            let mut r1 = StdRng::seed_from_u64(seed * 31 + 1);
            let mut r2 = StdRng::seed_from_u64(seed * 31 + 2);
            let mut quiet = TimingFaultModel::new(886.0, TimingRegime::FullSpeed, 884.0, &mut r1);
            let mut noisy = TimingFaultModel::new(886.0, TimingRegime::FullSpeed, 884.0, &mut r2);
            noisy.refresh(calib::DROOP_MAX_MV, 0.0);
            for _ in 0..120_000 {
                if quiet.on_op(OpClass::FpAdd, &mut r1).is_some() {
                    fq += 1;
                }
                if noisy.on_op(OpClass::FpAdd, &mut r2).is_some() {
                    fn_ += 1;
                }
            }
        }
        assert!(fn_ > fq, "noisy {fn_} vs quiet {fq}");
    }

    #[test]
    fn consequence_mix_respected_for_kernel_ops() {
        let mut r = rng();
        let mut m = TimingFaultModel::new(886.0, TimingRegime::FullSpeed, 830.0, &mut r);
        let mut sc = 0;
        let mut total = 0;
        for _ in 0..400_000 {
            if let Some(c) = m.on_op(OpClass::Kernel, &mut r) {
                total += 1;
                if c == FaultConsequence::SysCrash {
                    sc += 1;
                }
                assert_ne!(c, FaultConsequence::CorruptValue, "kernel faults never SDC");
            }
        }
        assert!(total > 50, "need enough faults, got {total}");
        let frac = f64::from(sc) / f64::from(total);
        assert!(
            (frac - calib::OS_FAULT_SC_FRACTION).abs() < 0.1,
            "SC fraction {frac}"
        );
    }

    #[test]
    fn stress_mass_accounting() {
        let mut r = rng();
        let mut m = TimingFaultModel::new(886.0, TimingRegime::FullSpeed, 980.0, &mut r);
        for _ in 0..10 {
            let _ = m.on_op(OpClass::FpDiv, &mut r);
        }
        assert!((m.stress_mass() - 30.0).abs() < 1e-9);
        assert_eq!(m.samples_drawn(), 10);
    }
}
