//! Supply-droop (voltage-noise) model.
//!
//! Workload-dependent di/dt noise transiently depresses the effective
//! supply seen by the logic, which is equivalent to raising the critical
//! voltage of the paths switching at that moment (the voltage-emergency
//! literature the paper cites in §7: Reddi et al., Gupta et al., and the
//! ARM power-delivery studies [39–42]).
//!
//! The model tracks an exponentially weighted moving average of switching
//! activity per 64-op block; the droop contributed to the fault model is
//! `DROOP_MAX_MV · ewma`, so bursty high-activity phases see a few mV less
//! margin than quiet phases.

use crate::calib;
use serde::{Deserialize, Serialize};

/// Number of ops per activity-accounting block.
pub const BLOCK_OPS: u32 = 64;

/// Tracks switching activity and converts it into an effective droop.
///
/// ```
/// use margins_sim::droop::DroopModel;
///
/// let mut d = DroopModel::new();
/// for _ in 0..64 {
///     d.record_activity(1.0); // a block of maximum-weight ops
/// }
/// assert!(d.droop_mv() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DroopModel {
    ewma: f64,
    block_accum: f64,
    block_ops: u32,
}

impl DroopModel {
    /// A quiescent droop tracker.
    #[must_use]
    pub fn new() -> Self {
        DroopModel {
            ewma: 0.0,
            block_accum: 0.0,
            block_ops: 0,
        }
    }

    /// Records one op with switching weight `activity` (0.0–1.0-ish; the
    /// op-class power weights of the machine). Completes a block every
    /// [`BLOCK_OPS`] ops and folds it into the EWMA.
    ///
    /// Returns `true` when a block boundary was crossed (the caller may then
    /// refresh cached fault intensities).
    pub fn record_activity(&mut self, activity: f64) -> bool {
        self.block_accum += activity;
        self.block_ops += 1;
        if self.block_ops >= BLOCK_OPS {
            let mean = self.block_accum / f64::from(self.block_ops);
            self.ewma =
                calib::DROOP_EWMA_ALPHA * mean + (1.0 - calib::DROOP_EWMA_ALPHA) * self.ewma;
            self.block_accum = 0.0;
            self.block_ops = 0;
            true
        } else {
            false
        }
    }

    /// The current droop contribution (mV) to the effective critical
    /// voltage.
    #[must_use]
    pub fn droop_mv(&self) -> f64 {
        calib::DROOP_MAX_MV * self.ewma.clamp(0.0, 1.0)
    }

    /// The raw activity EWMA (diagnostics and power model input).
    #[must_use]
    pub fn activity(&self) -> f64 {
        self.ewma
    }

    /// Resets the tracker to quiescent (e.g. on power cycle).
    pub fn reset(&mut self) {
        *self = DroopModel::new();
    }
}

impl Default for DroopModel {
    fn default() -> Self {
        DroopModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_has_zero_droop() {
        assert_eq!(DroopModel::new().droop_mv(), 0.0);
    }

    #[test]
    fn block_boundary_every_64_ops() {
        let mut d = DroopModel::new();
        let mut boundaries = 0;
        for _ in 0..256 {
            if d.record_activity(0.5) {
                boundaries += 1;
            }
        }
        assert_eq!(boundaries, 4);
    }

    #[test]
    fn sustained_activity_converges_to_proportional_droop() {
        let mut d = DroopModel::new();
        for _ in 0..64 * 200 {
            d.record_activity(0.8);
        }
        let expected = calib::DROOP_MAX_MV * 0.8;
        assert!(
            (d.droop_mv() - expected).abs() < 0.05,
            "droop {}",
            d.droop_mv()
        );
    }

    #[test]
    fn heavier_activity_gives_more_droop() {
        let mut light = DroopModel::new();
        let mut heavy = DroopModel::new();
        for _ in 0..64 * 50 {
            light.record_activity(0.2);
            heavy.record_activity(0.9);
        }
        assert!(heavy.droop_mv() > light.droop_mv());
    }

    #[test]
    fn droop_is_bounded_by_max() {
        let mut d = DroopModel::new();
        for _ in 0..64 * 100 {
            d.record_activity(5.0); // out-of-range activity is clamped
        }
        assert!(d.droop_mv() <= calib::DROOP_MAX_MV + 1e-12);
    }

    #[test]
    fn reset_restores_quiescence() {
        let mut d = DroopModel::new();
        for _ in 0..64 * 10 {
            d.record_activity(1.0);
        }
        d.reset();
        assert_eq!(d.droop_mv(), 0.0);
    }
}
