//! Chip topology of the simulated micro-server: Table 2 and Figure 1 of the
//! paper.
//!
//! Eight 64-bit ARMv8-style out-of-order cores, organized as four PMDs
//! (Processor MoDules) of two cores each. Every core has private 32 KB
//! parity-protected L1 instruction and data caches; each PMD pair shares a
//! 256 KB SECDED-protected L2. The 8 MB SECDED-protected L3, the memory
//! controllers, the central switch and the I/O bridge live in the separate
//! PCP/SoC power domain.

use crate::volt::PowerDomain;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of cores on the chip (Table 2).
pub const NUM_CORES: usize = 8;
/// Number of PMDs (pairs of cores, Figure 1).
pub const NUM_PMDS: usize = 4;
/// L1 instruction-cache capacity per core, bytes (Table 2: 32 KB).
pub const L1I_BYTES: usize = 32 * 1024;
/// L1 data-cache capacity per core, bytes (Table 2: 32 KB).
pub const L1D_BYTES: usize = 32 * 1024;
/// L2 capacity per PMD, bytes (Table 2: 256 KB).
pub const L2_BYTES: usize = 256 * 1024;
/// L3 capacity, bytes (Table 2: 8 MB).
pub const L3_BYTES: usize = 8 * 1024 * 1024;
/// Cache line size in bytes (64 B, typical of the microarchitecture).
pub const LINE_BYTES: usize = 64;
/// Issue width of the out-of-order pipeline (Table 2: 4-issue).
pub const ISSUE_WIDTH: u32 = 4;
/// Maximum thermal design power in watts (Table 2: 35 W).
pub const MAX_TDP_WATTS: f64 = 35.0;
/// Manufacturing technology node in nanometres (Table 2: 28 nm).
pub const TECHNOLOGY_NM: u32 = 28;

/// Identifier of one of the eight cores (0–7).
///
/// ```
/// use margins_sim::topology::{CoreId, PmdId};
/// assert_eq!(CoreId::new(5).pmd(), PmdId::new(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(u8);

impl CoreId {
    /// Creates a core identifier.
    ///
    /// # Panics
    ///
    /// Panics if `id >= 8`.
    #[must_use]
    pub fn new(id: u8) -> Self {
        assert!(
            (id as usize) < NUM_CORES,
            "core id {id} out of range 0..{NUM_CORES}"
        );
        CoreId(id)
    }

    /// The raw core index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The PMD this core belongs to (cores 2k and 2k+1 form PMD k, Figure 1).
    #[must_use]
    pub fn pmd(self) -> PmdId {
        PmdId(self.0 / 2)
    }

    /// Iterates over all eight cores in index order.
    pub fn all() -> impl Iterator<Item = CoreId> {
        (0..NUM_CORES as u8).map(CoreId)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Identifier of one of the four PMDs (0–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PmdId(u8);

impl PmdId {
    /// Creates a PMD identifier.
    ///
    /// # Panics
    ///
    /// Panics if `id >= 4`.
    #[must_use]
    pub fn new(id: u8) -> Self {
        assert!(
            (id as usize) < NUM_PMDS,
            "PMD id {id} out of range 0..{NUM_PMDS}"
        );
        PmdId(id)
    }

    /// The raw PMD index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The two cores belonging to this PMD.
    #[must_use]
    pub fn cores(self) -> [CoreId; 2] {
        [CoreId(self.0 * 2), CoreId(self.0 * 2 + 1)]
    }

    /// Iterates over all four PMDs in index order.
    pub fn all() -> impl Iterator<Item = PmdId> {
        (0..NUM_PMDS as u8).map(PmdId)
    }
}

impl fmt::Display for PmdId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PMD{}", self.0)
    }
}

/// The levels of the on-chip memory hierarchy (used for EDAC location tags
/// and the cache simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheLevel {
    /// Per-core 32 KB L1 instruction cache (parity protected).
    L1I,
    /// Per-core 32 KB L1 data cache (parity protected).
    L1D,
    /// Per-PMD 256 KB unified L2 (SECDED protected).
    L2,
    /// Chip-wide 8 MB L3 in the PCP/SoC domain (SECDED protected).
    L3,
}

impl CacheLevel {
    /// Capacity of one instance of this cache level in bytes.
    #[must_use]
    pub fn capacity_bytes(self) -> usize {
        match self {
            CacheLevel::L1I => L1I_BYTES,
            CacheLevel::L1D => L1D_BYTES,
            CacheLevel::L2 => L2_BYTES,
            CacheLevel::L3 => L3_BYTES,
        }
    }

    /// The power domain supplying this array (L1/L2 sit with the cores in
    /// the PMD domain; L3 is in PCP/SoC — Figure 1).
    #[must_use]
    pub fn power_domain(self) -> PowerDomain {
        match self {
            CacheLevel::L1I | CacheLevel::L1D | CacheLevel::L2 => PowerDomain::Pmd,
            CacheLevel::L3 => PowerDomain::PcpSoc,
        }
    }

    /// The protection scheme guarding this array (Table 2).
    #[must_use]
    pub fn protection(self) -> Protection {
        match self {
            CacheLevel::L1I | CacheLevel::L1D => Protection::Parity,
            CacheLevel::L2 | CacheLevel::L3 => Protection::Secded,
        }
    }
}

impl fmt::Display for CacheLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CacheLevel::L1I => "L1I",
            CacheLevel::L1D => "L1D",
            CacheLevel::L2 => "L2",
            CacheLevel::L3 => "L3",
        };
        f.write_str(name)
    }
}

/// SRAM array protection scheme (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protection {
    /// Parity: detects odd bit flips; correction requires a clean refetch.
    Parity,
    /// SECDED ECC: corrects single-bit, detects double-bit errors.
    Secded,
}

/// A static description of the whole chip, as the paper's Table 2 gives it.
///
/// Useful for printing the `table2` experiment and for consistency checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipDescription {
    /// ISA name.
    pub isa: &'static str,
    /// Pipeline summary.
    pub pipeline: &'static str,
    /// Number of cores.
    pub cores: usize,
    /// Maximum core clock in MHz.
    pub core_clock_mhz: u32,
    /// L1 instruction cache description.
    pub l1i: &'static str,
    /// L1 data cache description.
    pub l1d: &'static str,
    /// L2 cache description.
    pub l2: &'static str,
    /// L3 cache description.
    pub l3: &'static str,
    /// Technology node in nm.
    pub technology_nm: u32,
    /// Maximum TDP in watts.
    pub max_tdp_watts: f64,
}

impl ChipDescription {
    /// The Table 2 configuration of the simulated X-Gene 2.
    #[must_use]
    pub fn x_gene_2() -> Self {
        ChipDescription {
            isa: "ARMv8 (AArch64, AArch32, Thumb)",
            pipeline: "64-bit OoO (4-issue)",
            cores: NUM_CORES,
            core_clock_mhz: 2400,
            l1i: "32KB per core (Parity Protected)",
            l1d: "32KB per core (Parity Protected)",
            l2: "256KB per PMD (ECC Protected)",
            l3: "8MB (ECC Protected)",
            technology_nm: TECHNOLOGY_NM,
            max_tdp_watts: MAX_TDP_WATTS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_to_pmd_mapping() {
        let expected = [0u8, 0, 1, 1, 2, 2, 3, 3];
        for (i, pmd) in expected.iter().enumerate() {
            assert_eq!(CoreId::new(i as u8).pmd(), PmdId::new(*pmd));
        }
    }

    #[test]
    fn pmd_cores_are_inverse_of_core_pmd() {
        for pmd in PmdId::all() {
            for core in pmd.cores() {
                assert_eq!(core.pmd(), pmd);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn core_id_bounds_checked() {
        let _ = CoreId::new(8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pmd_id_bounds_checked() {
        let _ = PmdId::new(4);
    }

    #[test]
    fn cache_geometry_matches_table2() {
        assert_eq!(CacheLevel::L1I.capacity_bytes(), 32 * 1024);
        assert_eq!(CacheLevel::L1D.capacity_bytes(), 32 * 1024);
        assert_eq!(CacheLevel::L2.capacity_bytes(), 256 * 1024);
        assert_eq!(CacheLevel::L3.capacity_bytes(), 8 * 1024 * 1024);
    }

    #[test]
    fn protection_matches_table2() {
        assert_eq!(CacheLevel::L1I.protection(), Protection::Parity);
        assert_eq!(CacheLevel::L1D.protection(), Protection::Parity);
        assert_eq!(CacheLevel::L2.protection(), Protection::Secded);
        assert_eq!(CacheLevel::L3.protection(), Protection::Secded);
    }

    #[test]
    fn l3_is_in_soc_domain() {
        use crate::volt::PowerDomain;
        assert_eq!(CacheLevel::L3.power_domain(), PowerDomain::PcpSoc);
        assert_eq!(CacheLevel::L2.power_domain(), PowerDomain::Pmd);
    }

    #[test]
    fn enumerations_cover_everything() {
        assert_eq!(CoreId::all().count(), NUM_CORES);
        assert_eq!(PmdId::all().count(), NUM_PMDS);
    }

    #[test]
    fn description_is_consistent_with_constants() {
        let d = ChipDescription::x_gene_2();
        assert_eq!(d.cores, NUM_CORES);
        assert_eq!(d.technology_nm, TECHNOLOGY_NM);
        assert_eq!(d.core_clock_mhz, crate::freq::MAX_FREQ.get());
    }

    #[test]
    fn display_names() {
        assert_eq!(CoreId::new(3).to_string(), "core3");
        assert_eq!(PmdId::new(2).to_string(), "PMD2");
        assert_eq!(CacheLevel::L2.to_string(), "L2");
    }
}
