//! The cache hierarchy: set-associative tag arrays with LRU replacement,
//! write-back/write-allocate policy, per-level protection (parity on L1,
//! SECDED on L2/L3 — Table 2) and weak-cell fault exposure.
//!
//! Data values live in the machine's backing memory; the caches model
//! *placement* (hits/misses for the performance counters) and *exposure*
//! (which array locations the program's data physically occupies, so that
//! weak cells corrupt the right accesses at the right voltages).

use crate::corner::ChipSpec;
use crate::edac::{EdacKind, EdacLog, EdacRecord};
use crate::faults::sram::{WeakCellMap, WORDS_PER_LINE};
use crate::topology::{CacheLevel, CoreId, Protection, LINE_BYTES, NUM_CORES, NUM_PMDS};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Associativity used for every level (8-way, typical of the design).
pub const WAYS: u8 = 8;

/// Outcome of one cache access at one level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelAccess {
    /// Whether the line was already present.
    pub hit: bool,
    /// Whether a dirty victim was evicted (write-back traffic).
    pub writeback: bool,
    /// The set the line occupies.
    pub set: u32,
    /// The way the line occupies.
    pub way: u8,
}

/// What the protection logic observed while the access touched the array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultObservation {
    /// Corrected errors reported on this access.
    pub corrected: u32,
    /// Uncorrected errors reported on this access.
    pub uncorrected: u32,
    /// Bit mask to XOR into the accessed data word — protection missed it
    /// (an SDC seed). Zero when no silent corruption occurred.
    pub silent_corruption_mask: u64,
    /// Whether uncorrected data was consumed (poison — may kill the app).
    pub poison: bool,
}

impl FaultObservation {
    fn merge(&mut self, other: FaultObservation) {
        self.corrected += other.corrected;
        self.uncorrected += other.uncorrected;
        self.silent_corruption_mask ^= other.silent_corruption_mask;
        self.poison |= other.poison;
    }
}

/// One physical set-associative tag array plus its weak-cell overlay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetAssocCache {
    level: CacheLevel,
    instance: u8,
    /// §6a enhancement: interleaved SECDED(39,32) replaces the stock
    /// protection of this array.
    extended_ecc: bool,
    sets: u32,
    tags: Vec<Option<u64>>,
    lru: Vec<u64>,
    dirty: Vec<bool>,
    stamp: u64,
    weak: WeakCellMap,
    /// Weak cells already reported this run (dedupe: EDAC logs a location
    /// once per scrub interval, not once per access).
    #[serde(skip)]
    reported: BTreeSet<(u32, u8, u8)>,
}

impl SetAssocCache {
    /// Builds the array for `level` instance `instance` on chip `spec`.
    #[must_use]
    pub fn new(spec: ChipSpec, level: CacheLevel, instance: u8) -> Self {
        Self::with_protection(spec, level, instance, false)
    }

    /// Builds the array with the §6a interleaved-SECDED upgrade toggled.
    #[must_use]
    pub fn with_protection(
        spec: ChipSpec,
        level: CacheLevel,
        instance: u8,
        extended_ecc: bool,
    ) -> Self {
        let sets = (level.capacity_bytes() / (LINE_BYTES * WAYS as usize)) as u32;
        let slots = sets as usize * WAYS as usize;
        SetAssocCache {
            level,
            instance,
            extended_ecc,
            sets,
            tags: vec![None; slots],
            lru: vec![0; slots],
            dirty: vec![false; slots],
            stamp: 0,
            weak: WeakCellMap::generate(spec, level, instance as usize, sets, WAYS),
            reported: BTreeSet::new(),
        }
    }

    /// The array's cache level.
    #[must_use]
    pub fn level(&self) -> CacheLevel {
        self.level
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// The array's weak-cell overlay.
    #[must_use]
    pub fn weak_cells(&self) -> &WeakCellMap {
        &self.weak
    }

    /// Invalidates all lines and clears run-scoped state (power cycle or
    /// new run).
    pub fn reset(&mut self) {
        self.tags.iter_mut().for_each(|t| *t = None);
        self.dirty.iter_mut().for_each(|d| *d = false);
        self.lru.iter_mut().for_each(|l| *l = 0);
        self.stamp = 0;
        self.reported.clear();
    }

    /// Clears only the per-run fault-report dedupe (between runs we keep
    /// cache contents warm unless the system was power cycled).
    pub fn begin_run(&mut self) {
        self.reported.clear();
    }

    fn slot(&self, set: u32, way: u8) -> usize {
        set as usize * WAYS as usize + way as usize
    }

    /// Accesses the line containing `line_addr` (already line-granular).
    /// Allocates on miss (write-allocate), marks dirty on writes,
    /// returns placement info.
    pub fn access(&mut self, line_addr: u64, write: bool) -> LevelAccess {
        let set = (line_addr % u64::from(self.sets)) as u32;
        self.stamp += 1;
        // Hit?
        for way in 0..WAYS {
            let slot = self.slot(set, way);
            if self.tags[slot] == Some(line_addr) {
                self.lru[slot] = self.stamp;
                if write {
                    self.dirty[slot] = true;
                }
                return LevelAccess {
                    hit: true,
                    writeback: false,
                    set,
                    way,
                };
            }
        }
        // Miss: find invalid or LRU victim.
        let mut victim = 0u8;
        let mut best = u64::MAX;
        for way in 0..WAYS {
            let slot = self.slot(set, way);
            if self.tags[slot].is_none() {
                victim = way;
                break;
            }
            if self.lru[slot] < best {
                best = self.lru[slot];
                victim = way;
            }
        }
        let slot = self.slot(set, victim);
        let writeback = self.tags[slot].is_some() && self.dirty[slot];
        self.tags[slot] = Some(line_addr);
        self.lru[slot] = self.stamp;
        self.dirty[slot] = write;
        LevelAccess {
            hit: false,
            writeback,
            set,
            way: victim,
        }
    }

    /// Evaluates weak-cell exposure for an access that touched `(set, way)`
    /// reading/writing 64-bit word `word_in_line`, with the array powered at
    /// `supply_mv`. Errors are pushed to `edac`; silent corruption of the
    /// accessed word is returned in the observation.
    pub fn probe_faults(
        &mut self,
        set: u32,
        way: u8,
        word_in_line: u8,
        supply_mv: f64,
        edac: &mut EdacLog,
    ) -> FaultObservation {
        let mut obs = FaultObservation::default();
        // Group failing cells at this location by word to evaluate the
        // per-word protection code.
        let mut per_word_flips: [u64; WORDS_PER_LINE as usize] = [0; WORDS_PER_LINE as usize];
        let mut any = false;
        for cell in self.weak.failing_at(set, way, supply_mv) {
            per_word_flips[cell.word as usize] |= 1u64 << cell.bit;
            any = true;
        }
        if !any {
            return obs;
        }
        let dirty = self.dirty[self.slot(set, way)];
        for (word, mask) in per_word_flips.iter().enumerate() {
            if *mask == 0 {
                continue;
            }
            let flips = mask.count_ones();
            let word = word as u8;
            let newly = self.reported.insert((set, way, word));
            let outcome = if self.extended_ecc {
                // §6a: two-way interleaved SECDED(39,32) on every array.
                let even = (mask & 0x5555_5555_5555_5555).count_ones();
                let odd = (mask & 0xAAAA_AAAA_AAAA_AAAA).count_ones();
                match margins_ecc::secded32::InterleavedWord::outcome_for_flips(even, odd) {
                    margins_ecc::CheckOutcome::Clean => continue,
                    margins_ecc::CheckOutcome::Corrected => WordOutcome::Corrected,
                    margins_ecc::CheckOutcome::Uncorrected => WordOutcome::Uncorrected,
                    margins_ecc::CheckOutcome::Undetected => WordOutcome::Silent,
                }
            } else {
                match self.level.protection() {
                    Protection::Parity => {
                        if flips % 2 == 1 {
                            // Parity hit: clean lines refetch (corrected at the
                            // system level); dirty lines are lost.
                            if dirty {
                                WordOutcome::Uncorrected
                            } else {
                                WordOutcome::Corrected
                            }
                        } else {
                            WordOutcome::Silent
                        }
                    }
                    Protection::Secded => match flips {
                        1 => WordOutcome::Corrected,
                        2 => WordOutcome::Uncorrected,
                        _ => WordOutcome::Silent,
                    },
                }
            };
            match outcome {
                WordOutcome::Corrected => {
                    if newly {
                        obs.corrected += 1;
                        edac.report(EdacRecord {
                            kind: EdacKind::Corrected,
                            level: self.level,
                            instance: self.instance,
                            set,
                            way,
                        });
                    }
                }
                WordOutcome::Uncorrected => {
                    if newly {
                        obs.uncorrected += 1;
                        edac.report(EdacRecord {
                            kind: EdacKind::Uncorrected,
                            level: self.level,
                            instance: self.instance,
                            set,
                            way,
                        });
                    }
                    if word == word_in_line {
                        obs.poison = true;
                    }
                }
                WordOutcome::Silent => {
                    if word == word_in_line {
                        obs.silent_corruption_mask ^= mask;
                    }
                }
            }
        }
        obs
    }
}

enum WordOutcome {
    Corrected,
    Uncorrected,
    Silent,
}

/// Result of a full hierarchy access, for counter accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyAccess {
    /// Hit in the core's L1D.
    pub l1_hit: bool,
    /// Hit in the PMD's L2 (only meaningful when L1 missed).
    pub l2_hit: bool,
    /// Hit in the L3 (only meaningful when L2 missed).
    pub l3_hit: bool,
    /// Dirty write-back evicted from the L1D.
    pub wb_l1: bool,
    /// Dirty write-back evicted from the L2.
    pub wb_l2: bool,
    /// Dirty write-back evicted from the L3.
    pub wb_l3: bool,
    /// Protection observations collected across the touched arrays.
    pub faults: FaultObservation,
}

impl HierarchyAccess {
    /// Whether the access reached DRAM.
    #[must_use]
    pub fn dram(&self) -> bool {
        !self.l1_hit && !self.l2_hit && !self.l3_hit
    }
}

/// The full chip cache hierarchy: 8 private L1D + 8 private L1I, 4 shared
/// L2s, one L3 (in the PCP/SoC power domain).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheHierarchy {
    l1d: Vec<SetAssocCache>,
    l1i: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    l3: SetAssocCache,
}

impl CacheHierarchy {
    /// Builds the stock hierarchy for chip `spec`.
    #[must_use]
    pub fn new(spec: ChipSpec) -> Self {
        Self::with_protection(spec, false)
    }

    /// Builds the hierarchy with the §6a interleaved-SECDED upgrade toggled.
    #[must_use]
    pub fn with_protection(spec: ChipSpec, extended_ecc: bool) -> Self {
        let build = |level, i| SetAssocCache::with_protection(spec, level, i, extended_ecc);
        CacheHierarchy {
            l1d: (0..NUM_CORES as u8)
                .map(|i| build(CacheLevel::L1D, i))
                .collect(),
            l1i: (0..NUM_CORES as u8)
                .map(|i| build(CacheLevel::L1I, i))
                .collect(),
            l2: (0..NUM_PMDS as u8)
                .map(|i| build(CacheLevel::L2, i))
                .collect(),
            l3: build(CacheLevel::L3, 0),
        }
    }

    /// The core's private L1 data cache.
    #[must_use]
    pub fn l1d(&self, core: CoreId) -> &SetAssocCache {
        &self.l1d[core.index()]
    }

    /// The PMD-shared L2 serving `core`.
    #[must_use]
    pub fn l2(&self, core: CoreId) -> &SetAssocCache {
        &self.l2[core.pmd().index()]
    }

    /// The chip-wide L3.
    #[must_use]
    pub fn l3(&self) -> &SetAssocCache {
        &self.l3
    }

    /// Invalidates everything (power cycle).
    pub fn reset(&mut self) {
        for c in self
            .l1d
            .iter_mut()
            .chain(self.l1i.iter_mut())
            .chain(self.l2.iter_mut())
        {
            c.reset();
        }
        self.l3.reset();
    }

    /// Clears per-run fault dedupe on every array.
    pub fn begin_run(&mut self) {
        for c in self
            .l1d
            .iter_mut()
            .chain(self.l1i.iter_mut())
            .chain(self.l2.iter_mut())
        {
            c.begin_run();
        }
        self.l3.begin_run();
    }

    /// A data access by `core` to byte address `addr`, walking
    /// L1D → L2 → L3 → DRAM, probing weak cells in each touched array.
    ///
    /// `pmd_mv` powers L1/L2 (the PMD rail); `soc_mv` powers L3.
    pub fn data_access(
        &mut self,
        core: CoreId,
        addr: u64,
        write: bool,
        pmd_mv: f64,
        soc_mv: f64,
        edac: &mut EdacLog,
    ) -> HierarchyAccess {
        let line = addr / LINE_BYTES as u64;
        let word_in_line = ((addr / 8) % u64::from(WORDS_PER_LINE)) as u8;
        let mut faults = FaultObservation::default();

        let l1 = &mut self.l1d[core.index()];
        let a1 = l1.access(line, write);
        faults.merge(l1.probe_faults(a1.set, a1.way, word_in_line, pmd_mv, edac));
        if a1.hit {
            return HierarchyAccess {
                l1_hit: true,
                l2_hit: false,
                l3_hit: false,
                wb_l1: a1.writeback,
                wb_l2: false,
                wb_l3: false,
                faults,
            };
        }

        let l2 = &mut self.l2[core.pmd().index()];
        let a2 = l2.access(line, write);
        faults.merge(l2.probe_faults(a2.set, a2.way, word_in_line, pmd_mv, edac));
        if a2.hit {
            return HierarchyAccess {
                l1_hit: false,
                l2_hit: true,
                l3_hit: false,
                wb_l1: a1.writeback,
                wb_l2: a2.writeback,
                wb_l3: false,
                faults,
            };
        }

        let a3 = self.l3.access(line, write);
        faults.merge(
            self.l3
                .probe_faults(a3.set, a3.way, word_in_line, soc_mv, edac),
        );
        HierarchyAccess {
            l1_hit: false,
            l2_hit: false,
            l3_hit: a3.hit,
            wb_l1: a1.writeback,
            wb_l2: a2.writeback,
            wb_l3: a3.writeback,
            faults,
        }
    }

    /// An instruction-fetch access by `core` (drives the L1I counters; in
    /// the kernels' working sets instruction fetches nearly always hit).
    pub fn inst_access(&mut self, core: CoreId, addr: u64) -> bool {
        let line = addr / LINE_BYTES as u64;
        self.l1i[core.index()].access(line, false).hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corner::Corner;

    fn spec() -> ChipSpec {
        ChipSpec::new(Corner::Ttt, 0)
    }

    #[test]
    fn geometry_from_capacity() {
        let l1 = SetAssocCache::new(spec(), CacheLevel::L1D, 0);
        assert_eq!(l1.sets(), 64); // 32 KB / (64 B * 8 ways)
        let l2 = SetAssocCache::new(spec(), CacheLevel::L2, 0);
        assert_eq!(l2.sets(), 512);
        let l3 = SetAssocCache::new(spec(), CacheLevel::L3, 0);
        assert_eq!(l3.sets(), 16384);
    }

    #[test]
    fn second_access_hits() {
        let mut c = SetAssocCache::new(spec(), CacheLevel::L1D, 0);
        assert!(!c.access(100, false).hit);
        assert!(c.access(100, false).hit);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = SetAssocCache::new(spec(), CacheLevel::L1D, 0);
        let sets = u64::from(c.sets());
        // Fill one set completely, then overflow it: the first line goes.
        for i in 0..u64::from(WAYS) {
            c.access(i * sets, false);
        }
        c.access(u64::from(WAYS) * sets, false); // evicts line 0
                                                 // Probe line 1 first: probing line 0 would itself evict the (new)
                                                 // LRU line.
        assert!(c.access(sets, false).hit, "line 1 must survive");
        assert!(!c.access(0, false).hit, "line 0 must have been evicted");
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = SetAssocCache::new(spec(), CacheLevel::L1D, 0);
        let sets = u64::from(c.sets());
        c.access(0, true); // dirty
        for i in 1..=u64::from(WAYS) {
            let a = c.access(i * sets, false);
            if i == u64::from(WAYS) {
                assert!(a.writeback, "evicting the dirty line must write back");
            }
        }
    }

    #[test]
    fn no_faults_at_nominal_voltage() {
        let mut h = CacheHierarchy::new(spec());
        let mut edac = EdacLog::new();
        for i in 0..20_000u64 {
            let a = h.data_access(CoreId::new(0), i * 8, false, 980.0, 950.0, &mut edac);
            assert_eq!(a.faults.corrected, 0);
            assert_eq!(a.faults.silent_corruption_mask, 0);
        }
        assert!(edac.is_empty());
    }

    #[test]
    fn deep_undervolting_exposes_weak_cells() {
        // Sweep the whole L2 at a voltage far below the weak-cell base:
        // every weak cell fails, so CE/UE reports must appear.
        let mut h = CacheHierarchy::new(spec());
        let mut edac = EdacLog::new();
        let core = CoreId::new(0);
        // Touch more lines than L2 holds so every set/way gets occupied.
        for i in 0..(2 * L2_LINES) {
            let _ = h.data_access(core, i * LINE_BYTES as u64, false, 700.0, 950.0, &mut edac);
        }
        assert!(
            !edac.is_empty(),
            "a 256KB sweep at 700mV must trip weak cells"
        );
    }
    const L2_LINES: u64 = (crate::topology::L2_BYTES / LINE_BYTES) as u64;

    #[test]
    fn fault_reports_are_deduped_within_a_run() {
        let mut h = CacheHierarchy::new(spec());
        let mut edac = EdacLog::new();
        let core = CoreId::new(0);
        for _ in 0..3 {
            for i in 0..(2 * L2_LINES) {
                let _ = h.data_access(core, i * LINE_BYTES as u64, false, 700.0, 950.0, &mut edac);
            }
        }
        let first_run = edac.drain().len();
        // Same traversal again without begin_run: everything deduped…
        for i in 0..(2 * L2_LINES) {
            let _ = h.data_access(core, i * LINE_BYTES as u64, false, 700.0, 950.0, &mut edac);
        }
        assert!(edac.records().len() <= first_run / 4, "dedupe failed");
        // …until a new run clears the dedupe set.
        h.begin_run();
        for i in 0..(2 * L2_LINES) {
            let _ = h.data_access(core, i * LINE_BYTES as u64, false, 700.0, 950.0, &mut edac);
        }
        assert!(!edac.is_empty());
    }

    #[test]
    fn l3_faults_depend_on_soc_rail_not_pmd_rail() {
        let mut h = CacheHierarchy::new(spec());
        let mut edac = EdacLog::new();
        let core = CoreId::new(0);
        // PMD rail deep-undervolted but SoC at nominal: any L3-tagged
        // record would be a bug. Use a stream bigger than L2 so L3 is hit.
        for i in 0..(4 * L2_LINES) {
            let _ = h.data_access(core, i * LINE_BYTES as u64, false, 700.0, 950.0, &mut edac);
        }
        assert!(edac.records().iter().all(|r| r.level != CacheLevel::L3));
    }

    #[test]
    fn reset_invalidates() {
        let mut h = CacheHierarchy::new(spec());
        let mut edac = EdacLog::new();
        let core = CoreId::new(0);
        h.data_access(core, 64, false, 980.0, 950.0, &mut edac);
        let warm = h.data_access(core, 64, false, 980.0, 950.0, &mut edac);
        assert!(warm.l1_hit);
        h.reset();
        let cold = h.data_access(core, 64, false, 980.0, 950.0, &mut edac);
        assert!(!cold.l1_hit);
    }

    #[test]
    fn extended_ecc_turns_dirty_parity_losses_into_corrections() {
        // §6a: a single weak-cell flip on a *dirty* L1 line is a data loss
        // (UE) under stock parity, but a plain correction under interleaved
        // SECDED. Drive the exact same physical cell through both designs.
        let spec = spec();
        let mut stock = SetAssocCache::new(spec, CacheLevel::L1D, 0);
        let mut enhanced = SetAssocCache::with_protection(spec, CacheLevel::L1D, 0, true);
        // Pick a weak cell that is alone in its 64-bit word.
        let cells = stock.weak_cells().cells().to_vec();
        let lone = cells
            .iter()
            .find(|c| {
                cells
                    .iter()
                    .filter(|o| o.set == c.set && o.way == c.way && o.word == c.word)
                    .count()
                    == 1
            })
            .copied()
            .expect("L1 arrays carry a handful of weak cells");
        let below = lone.vfail_mv - 5.0;
        for cache in [&mut stock, &mut enhanced] {
            // Occupy ways 0..=cell.way of the target set with dirty lines so
            // the probed location is valid and dirty.
            for k in 0..=u64::from(lone.way) {
                cache.access(u64::from(lone.set) + k * u64::from(cache.sets()), true);
            }
        }
        let mut edac = EdacLog::new();
        let obs = stock.probe_faults(lone.set, lone.way, lone.word, below, &mut edac);
        assert_eq!(obs.uncorrected, 1, "stock parity loses the dirty word");
        let mut edac = EdacLog::new();
        let obs = enhanced.probe_faults(lone.set, lone.way, lone.word, below, &mut edac);
        assert_eq!(obs.corrected, 1, "interleaved SECDED corrects it");
        assert_eq!(obs.uncorrected, 0);
        assert_eq!(obs.silent_corruption_mask, 0);
    }

    #[test]
    fn inst_accesses_hit_after_first_touch() {
        let mut h = CacheHierarchy::new(spec());
        let core = CoreId::new(2);
        assert!(!h.inst_access(core, 4096));
        assert!(h.inst_access(core, 4096));
    }
}
