//! A Hamming SECDED (72,64) codec: 64 data bits protected by 7 Hamming
//! check bits plus one overall parity bit, exactly the class of code used by
//! the X-Gene 2 L2/L3 arrays ("ECC Protected" in Table 2 of the paper).
//!
//! The codeword layout follows the classic extended Hamming construction:
//! codeword position 0 holds the overall parity bit, positions that are
//! powers of two (1, 2, 4, 8, 16, 32, 64) hold the Hamming check bits, and
//! the remaining 64 positions (in increasing order) hold the data bits.
//!
//! * single flipped bit  → detected *and corrected* (a **CE**),
//! * double flipped bits → detected, not corrected (a **UE**),
//! * ≥3 flipped bits     → may alias; the codec reports its best guess and
//!   the fault model treats aliased patterns as silent corruption.

use crate::CheckOutcome;

/// Number of bits in a full codeword.
pub const CODEWORD_BITS: u32 = 72;
/// Number of protected data bits per codeword.
pub const DATA_BITS: u32 = 64;
/// Number of Hamming check bits (excluding the overall parity bit).
pub const CHECK_BITS: u32 = 7;

/// Returns `true` if codeword position `pos` holds a check bit
/// (position 0 = overall parity, powers of two = Hamming bits).
#[must_use]
fn is_check_position(pos: u32) -> bool {
    pos == 0 || pos.is_power_of_two()
}

/// Maps data bit index (0–63) to its codeword position (one of the 64
/// non-check positions in 1..72, in increasing order).
#[must_use]
fn data_position(data_bit: u32) -> u32 {
    debug_assert!(data_bit < DATA_BITS);
    // Precomputed at first use: positions 3,5,6,7,9,..,71 skipping powers of 2.
    let mut seen = 0;
    for pos in 1..CODEWORD_BITS {
        if !is_check_position(pos) {
            if seen == data_bit {
                return pos;
            }
            seen += 1;
        }
    }
    unreachable!("fewer than 64 data positions in a 72-bit codeword")
}

/// A stored 72-bit SECDED codeword.
///
/// The codeword is held in the low 72 bits of a `u128`; bit `i` of the
/// integer is codeword position `i`.
///
/// ```
/// use margins_ecc::secded::Codeword;
///
/// let cw = Codeword::encode(12345);
/// assert_eq!(cw.decode().data(), Some(12345));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Codeword {
    bits: u128,
}

/// Result of decoding a [`Codeword`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// The codeword was clean; contains the data.
    Clean(u64),
    /// A single-bit error was corrected; contains the repaired data and the
    /// codeword position that was repaired.
    Corrected {
        /// The repaired 64-bit data value.
        data: u64,
        /// Codeword position (0–71) of the corrected bit.
        position: u32,
    },
    /// A double-bit error was detected; the data cannot be trusted.
    DoubleError,
}

impl Decoded {
    /// The decoded data, if usable (clean or corrected).
    ///
    /// ```
    /// use margins_ecc::secded::{Codeword, Decoded};
    /// assert_eq!(Codeword::encode(7).decode().data(), Some(7));
    /// assert_eq!(Decoded::DoubleError.data(), None);
    /// ```
    #[must_use]
    pub fn data(&self) -> Option<u64> {
        match *self {
            Decoded::Clean(d) | Decoded::Corrected { data: d, .. } => Some(d),
            Decoded::DoubleError => None,
        }
    }

    /// Translates the decode result into the EDAC-level [`CheckOutcome`].
    #[must_use]
    pub fn outcome(&self) -> CheckOutcome {
        match self {
            Decoded::Clean(_) => CheckOutcome::Clean,
            Decoded::Corrected { .. } => CheckOutcome::Corrected,
            Decoded::DoubleError => CheckOutcome::Uncorrected,
        }
    }
}

impl Codeword {
    /// Encodes 64 data bits into a 72-bit SECDED codeword.
    #[must_use]
    pub fn encode(data: u64) -> Self {
        let mut bits: u128 = 0;
        // Scatter the data bits into the non-check positions.
        for b in 0..DATA_BITS {
            if data >> b & 1 == 1 {
                bits |= 1u128 << data_position(b);
            }
        }
        // Each Hamming check bit at position 2^k covers the positions whose
        // index has bit k set; choose it to make the covered XOR zero.
        for k in 0..CHECK_BITS {
            let check_pos = 1u32 << k;
            let mut xor = 0u32;
            for pos in 1..CODEWORD_BITS {
                if pos != check_pos && pos & check_pos != 0 && bits >> pos & 1 == 1 {
                    xor ^= 1;
                }
            }
            if xor == 1 {
                bits |= 1u128 << check_pos;
            }
        }
        // Overall parity over positions 1..72 goes into position 0, making
        // the whole codeword have even parity.
        let ones = (bits >> 1).count_ones();
        if ones % 2 == 1 {
            bits |= 1;
        }
        Codeword { bits }
    }

    /// Reconstructs a codeword from raw array bits (low 72 bits are used).
    ///
    /// This is the entry point for fault injection, which flips bits in the
    /// stored array image directly.
    #[must_use]
    pub fn from_raw(bits: u128) -> Self {
        Codeword {
            bits: bits & ((1u128 << CODEWORD_BITS) - 1),
        }
    }

    /// The raw 72 stored bits.
    #[must_use]
    pub fn raw(&self) -> u128 {
        self.bits
    }

    /// Returns a copy with codeword position `pos` (0–71) flipped.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= 72`.
    #[must_use]
    pub fn with_flipped_position(&self, pos: u32) -> Self {
        assert!(pos < CODEWORD_BITS, "codeword position out of range: {pos}");
        Codeword {
            bits: self.bits ^ (1u128 << pos),
        }
    }

    /// Returns a copy with *data* bit `bit` (0–63) flipped.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64`.
    #[must_use]
    pub fn with_flipped_data_bit(&self, bit: u32) -> Self {
        assert!(bit < DATA_BITS, "data bit index out of range: {bit}");
        self.with_flipped_position(data_position(bit))
    }

    /// Extracts the 64 data bits without any checking (the raw array view).
    #[must_use]
    pub fn data_unchecked(&self) -> u64 {
        let mut data = 0u64;
        for b in 0..DATA_BITS {
            if self.bits >> data_position(b) & 1 == 1 {
                data |= 1u64 << b;
            }
        }
        data
    }

    /// Computes the Hamming syndrome: XOR of the positions of all bits that
    /// disagree with the check bits. Zero means "no Hamming-visible error".
    #[must_use]
    pub fn syndrome(&self) -> u32 {
        let mut syndrome = 0u32;
        for k in 0..CHECK_BITS {
            let check_pos = 1u32 << k;
            let mut xor = 0u32;
            for pos in 1..CODEWORD_BITS {
                if pos & check_pos != 0 && self.bits >> pos & 1 == 1 {
                    xor ^= 1;
                }
            }
            if xor == 1 {
                syndrome |= check_pos;
            }
        }
        syndrome
    }

    /// `true` when the whole 72-bit word has even parity (as encoded).
    #[must_use]
    fn overall_parity_ok(&self) -> bool {
        self.bits.count_ones().is_multiple_of(2)
    }

    /// Decodes the stored codeword, correcting a single-bit error if present.
    ///
    /// Decode logic of the extended Hamming code:
    ///
    /// | syndrome | overall parity | verdict |
    /// |----------|----------------|---------|
    /// | 0        | ok             | clean   |
    /// | 0        | bad            | parity-bit error (corrected) |
    /// | ≠0       | bad            | single-bit error at `syndrome` (corrected) |
    /// | ≠0       | ok             | double-bit error (uncorrectable) |
    #[must_use]
    pub fn decode(&self) -> Decoded {
        let syndrome = self.syndrome();
        let parity_ok = self.overall_parity_ok();
        match (syndrome, parity_ok) {
            (0, true) => Decoded::Clean(self.data_unchecked()),
            (0, false) => Decoded::Corrected {
                data: self.data_unchecked(),
                position: 0,
            },
            (s, false) if s < CODEWORD_BITS => {
                let repaired = self.with_flipped_position(s);
                Decoded::Corrected {
                    data: repaired.data_unchecked(),
                    position: s,
                }
            }
            // Syndrome pointing outside the codeword (possible for ≥2 flips)
            // or nonzero syndrome with good parity: uncorrectable.
            _ => Decoded::DoubleError,
        }
    }

    /// Decodes and classifies against a known-good reference, so that alias
    /// patterns from ≥3 flips are labelled [`CheckOutcome::Undetected`].
    #[must_use]
    pub fn check_against(&self, reference: u64) -> CheckOutcome {
        match self.decode() {
            Decoded::Clean(d) if d == reference => CheckOutcome::Clean,
            Decoded::Clean(_) => CheckOutcome::Undetected,
            Decoded::Corrected { data, .. } if data == reference => CheckOutcome::Corrected,
            Decoded::Corrected { .. } => CheckOutcome::Undetected,
            Decoded::DoubleError => CheckOutcome::Uncorrected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLES: [u64; 8] = [
        0,
        1,
        u64::MAX,
        0xDEAD_BEEF_CAFE_F00D,
        0xAAAA_AAAA_AAAA_AAAA,
        0x5555_5555_5555_5555,
        0x8000_0000_0000_0001,
        0x0123_4567_89AB_CDEF,
    ];

    #[test]
    fn data_positions_are_distinct_and_nonshared() {
        let mut seen = std::collections::HashSet::new();
        for b in 0..DATA_BITS {
            let pos = data_position(b);
            assert!(
                !is_check_position(pos),
                "data bit {b} landed on a check position"
            );
            assert!(seen.insert(pos), "duplicate codeword position {pos}");
        }
        assert_eq!(seen.len(), DATA_BITS as usize);
    }

    #[test]
    fn roundtrip_is_clean() {
        for &v in &SAMPLES {
            let cw = Codeword::encode(v);
            assert_eq!(cw.decode(), Decoded::Clean(v));
            assert_eq!(cw.syndrome(), 0);
        }
    }

    #[test]
    fn every_single_data_bit_flip_is_corrected() {
        for &v in &SAMPLES {
            let cw = Codeword::encode(v);
            for bit in 0..DATA_BITS {
                let bad = cw.with_flipped_data_bit(bit);
                match bad.decode() {
                    Decoded::Corrected { data, .. } => assert_eq!(data, v, "bit {bit}"),
                    other => panic!("bit {bit}: expected correction, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn every_single_position_flip_is_corrected() {
        let v = 0xFACE_FEED_0BAD_F00D;
        let cw = Codeword::encode(v);
        for pos in 0..CODEWORD_BITS {
            let bad = cw.with_flipped_position(pos);
            match bad.decode() {
                Decoded::Corrected { data, position } => {
                    assert_eq!(data, v);
                    assert_eq!(position, pos);
                }
                other => panic!("pos {pos}: expected correction, got {other:?}"),
            }
        }
    }

    #[test]
    fn exhaustive_double_flips_are_detected_not_corrected() {
        // Exhaustive over all 72*71/2 = 2556 double-flip patterns.
        let v = 0x1357_9BDF_2468_ACE0;
        let cw = Codeword::encode(v);
        for p1 in 0..CODEWORD_BITS {
            for p2 in (p1 + 1)..CODEWORD_BITS {
                let bad = cw.with_flipped_position(p1).with_flipped_position(p2);
                assert_eq!(
                    bad.decode(),
                    Decoded::DoubleError,
                    "double flip ({p1},{p2}) not flagged"
                );
            }
        }
    }

    #[test]
    fn check_against_classifies_clean_and_corrected() {
        let v = 424_242;
        let cw = Codeword::encode(v);
        assert_eq!(cw.check_against(v), CheckOutcome::Clean);
        assert_eq!(
            cw.with_flipped_data_bit(5).check_against(v),
            CheckOutcome::Corrected
        );
        assert_eq!(
            cw.with_flipped_position(1)
                .with_flipped_position(2)
                .check_against(v),
            CheckOutcome::Uncorrected
        );
    }

    #[test]
    fn from_raw_masks_to_72_bits() {
        let cw = Codeword::from_raw(u128::MAX);
        assert_eq!(cw.raw() >> CODEWORD_BITS, 0);
    }

    #[test]
    fn triple_flip_never_silently_returns_wrong_clean_from_syndrome_zero_path() {
        // A triple flip either decodes as a (wrong) "correction" or a double
        // error; it must never produce Decoded::Clean with wrong data unless
        // the pattern aliases exactly to another codeword, which requires
        // flipping at least the code distance (4) bits.
        let v = 77;
        let cw = Codeword::encode(v);
        for p1 in 0..8 {
            for p2 in (p1 + 1)..16 {
                for p3 in (p2 + 1)..24 {
                    let bad = cw
                        .with_flipped_position(p1)
                        .with_flipped_position(p2)
                        .with_flipped_position(p3);
                    if let Decoded::Clean(d) = bad.decode() {
                        panic!("triple flip decoded clean: ({p1},{p2},{p3}) -> {d}");
                    }
                }
            }
        }
    }
}
