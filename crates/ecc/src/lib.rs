//! Error-detection and error-correction codecs used by the simulated cache
//! hierarchy of `margins-sim`.
//!
//! The APM X-Gene 2 protects its L1 instruction and data caches with
//! **parity** (detect-only) and its L2/L3 caches with **SECDED ECC**
//! (single-error-correct, double-error-detect); see Table 2 of
//! Papadimitriou et al., MICRO-50 2017. This crate provides both codecs as
//! real, self-contained implementations:
//!
//! * [`parity`] — even parity over 64-bit words,
//! * [`secded`] — a Hamming SECDED (72,64) code: 64 data bits protected by
//!   7 Hamming check bits plus one overall parity bit,
//! * [`secded32`] — a Hamming SECDED (39,32) code and a two-way interleaved
//!   64-bit word protector built on it — the "stronger ECC" upgrade the
//!   paper's §6 recommends (adjacent double-bit errors become correctable).
//!
//! # Examples
//!
//! ```
//! use margins_ecc::secded::Codeword;
//!
//! let cw = Codeword::encode(0xDEAD_BEEF_CAFE_F00D);
//! // Flip one data bit in flight…
//! let corrupted = cw.with_flipped_data_bit(17);
//! // …and SECDED transparently corrects it.
//! assert_eq!(corrupted.decode().data(), Some(0xDEAD_BEEF_CAFE_F00D));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod parity;
pub mod secded;
pub mod secded32;

pub use parity::{parity64, ParityWord};
pub use secded::{Codeword, Decoded};
pub use secded32::{Codeword32, InterleavedWord};

/// Outcome of checking a protected memory word, in the vocabulary the Linux
/// EDAC driver (and hence the characterization framework) uses.
///
/// `Corrected` corresponds to a *CE* (corrected error) report, while
/// `Uncorrected` corresponds to a *UE* (uncorrected error) report in Table 3
/// of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckOutcome {
    /// No error was detected in the word.
    Clean,
    /// An error was detected and transparently corrected (SECDED single-bit).
    Corrected,
    /// An error was detected but could not be corrected (parity hit, or a
    /// SECDED double-bit error).
    Uncorrected,
    /// An error is present but the code could not even detect it (three or
    /// more flipped bits aliasing to a valid or single-error syndrome).
    ///
    /// Undetected corruption is what ultimately surfaces as a *silent data
    /// corruption* at program level.
    Undetected,
}

impl CheckOutcome {
    /// Returns `true` if the consumer may use the (possibly corrected) data.
    ///
    /// ```
    /// use margins_ecc::CheckOutcome;
    /// assert!(CheckOutcome::Corrected.is_usable());
    /// assert!(!CheckOutcome::Uncorrected.is_usable());
    /// ```
    #[must_use]
    pub fn is_usable(self) -> bool {
        matches!(
            self,
            CheckOutcome::Clean | CheckOutcome::Corrected | CheckOutcome::Undetected
        )
    }

    /// Returns `true` if hardware would raise any error report (CE or UE).
    #[must_use]
    pub fn is_reported(self) -> bool {
        matches!(self, CheckOutcome::Corrected | CheckOutcome::Uncorrected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_usability_matrix() {
        assert!(CheckOutcome::Clean.is_usable());
        assert!(CheckOutcome::Corrected.is_usable());
        assert!(CheckOutcome::Undetected.is_usable());
        assert!(!CheckOutcome::Uncorrected.is_usable());
    }

    #[test]
    fn outcome_reporting_matrix() {
        assert!(!CheckOutcome::Clean.is_reported());
        assert!(CheckOutcome::Corrected.is_reported());
        assert!(CheckOutcome::Uncorrected.is_reported());
        assert!(!CheckOutcome::Undetected.is_reported());
    }
}
