//! A Hamming SECDED (39,32) codec and a two-way interleaved 64-bit word
//! protector built from it.
//!
//! §6 of the paper recommends "stronger ECC codes … and more blocks
//! protected" so that SDC-prone behaviour transforms into corrected-error
//! behaviour. A standard industrial step up from per-64-bit SECDED(72,64)
//! is *interleaving*: protecting each 64-bit word as two SECDED(39,32)
//! codewords over the even and odd bits. Any double-bit error whose bits
//! fall in different interleave ways becomes two correctable single-bit
//! errors, and adjacent-bit doubles (the dominant multi-cell failure mode)
//! always split across ways.

use crate::CheckOutcome;

/// Codeword bits of the (39,32) code.
pub const CODEWORD_BITS_32: u32 = 39;
/// Data bits per codeword.
pub const DATA_BITS_32: u32 = 32;
/// Hamming check bits (excluding overall parity).
pub const CHECK_BITS_32: u32 = 6;

fn is_check_position(pos: u32) -> bool {
    pos == 0 || pos.is_power_of_two()
}

fn data_position(data_bit: u32) -> u32 {
    debug_assert!(data_bit < DATA_BITS_32);
    let mut seen = 0;
    for pos in 1..CODEWORD_BITS_32 {
        if !is_check_position(pos) {
            if seen == data_bit {
                return pos;
            }
            seen += 1;
        }
    }
    unreachable!("fewer than 32 data positions in a 39-bit codeword")
}

/// A 39-bit SECDED codeword protecting 32 data bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Codeword32 {
    bits: u64,
}

/// Decode result of a [`Codeword32`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded32 {
    /// Clean; contains the data.
    Clean(u32),
    /// Single-bit error corrected; contains the repaired data.
    Corrected(u32),
    /// Double-bit error detected.
    DoubleError,
}

impl Decoded32 {
    /// The usable data, if any.
    #[must_use]
    pub fn data(&self) -> Option<u32> {
        match *self {
            Decoded32::Clean(d) | Decoded32::Corrected(d) => Some(d),
            Decoded32::DoubleError => None,
        }
    }
}

impl Codeword32 {
    /// Encodes 32 data bits.
    #[must_use]
    pub fn encode(data: u32) -> Self {
        let mut bits: u64 = 0;
        for b in 0..DATA_BITS_32 {
            if data >> b & 1 == 1 {
                bits |= 1u64 << data_position(b);
            }
        }
        for k in 0..CHECK_BITS_32 {
            let check_pos = 1u32 << k;
            let mut xor = 0u32;
            for pos in 1..CODEWORD_BITS_32 {
                if pos != check_pos && pos & check_pos != 0 && bits >> pos & 1 == 1 {
                    xor ^= 1;
                }
            }
            if xor == 1 {
                bits |= 1u64 << check_pos;
            }
        }
        if (bits >> 1).count_ones() % 2 == 1 {
            bits |= 1;
        }
        Codeword32 { bits }
    }

    /// Returns a copy with codeword position `pos` (0–38) flipped.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= 39`.
    #[must_use]
    pub fn with_flipped_position(&self, pos: u32) -> Self {
        assert!(pos < CODEWORD_BITS_32, "position out of range: {pos}");
        Codeword32 {
            bits: self.bits ^ (1u64 << pos),
        }
    }

    /// Returns a copy with *data* bit `bit` (0–31) flipped.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 32`.
    #[must_use]
    pub fn with_flipped_data_bit(&self, bit: u32) -> Self {
        assert!(bit < DATA_BITS_32, "data bit out of range: {bit}");
        self.with_flipped_position(data_position(bit))
    }

    fn data_unchecked(&self) -> u32 {
        let mut data = 0u32;
        for b in 0..DATA_BITS_32 {
            if self.bits >> data_position(b) & 1 == 1 {
                data |= 1u32 << b;
            }
        }
        data
    }

    fn syndrome(&self) -> u32 {
        let mut syndrome = 0u32;
        for k in 0..CHECK_BITS_32 {
            let check_pos = 1u32 << k;
            let mut xor = 0u32;
            for pos in 1..CODEWORD_BITS_32 {
                if pos & check_pos != 0 && self.bits >> pos & 1 == 1 {
                    xor ^= 1;
                }
            }
            if xor == 1 {
                syndrome |= check_pos;
            }
        }
        syndrome
    }

    /// Decodes, correcting a single-bit error.
    #[must_use]
    pub fn decode(&self) -> Decoded32 {
        let syndrome = self.syndrome();
        let parity_ok = self.bits.count_ones().is_multiple_of(2);
        match (syndrome, parity_ok) {
            (0, true) => Decoded32::Clean(self.data_unchecked()),
            (0, false) => Decoded32::Corrected(self.data_unchecked()),
            (s, false) if s < CODEWORD_BITS_32 => {
                Decoded32::Corrected(self.with_flipped_position(s).data_unchecked())
            }
            _ => Decoded32::DoubleError,
        }
    }
}

/// A 64-bit word protected as two interleaved SECDED(39,32) codewords:
/// even data bits in way 0, odd data bits in way 1.
///
/// ```
/// use margins_ecc::secded32::InterleavedWord;
///
/// let w = InterleavedWord::encode(0xDEAD_BEEF_0BAD_F00D);
/// // An *adjacent* double-bit flip is fully corrected:
/// let bad = w.with_flipped_data_bit(8).with_flipped_data_bit(9);
/// assert_eq!(bad.decode_data(), Some(0xDEAD_BEEF_0BAD_F00D));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InterleavedWord {
    ways: [Codeword32; 2],
}

impl InterleavedWord {
    /// Encodes a 64-bit word into the two interleave ways.
    #[must_use]
    pub fn encode(data: u64) -> Self {
        let (mut even, mut odd) = (0u32, 0u32);
        for i in 0..32 {
            even |= (((data >> (2 * i)) & 1) as u32) << i;
            odd |= (((data >> (2 * i + 1)) & 1) as u32) << i;
        }
        InterleavedWord {
            ways: [Codeword32::encode(even), Codeword32::encode(odd)],
        }
    }

    /// Returns a copy with *data* bit `bit` (0–63) of the original word
    /// flipped (routed into the owning interleave way).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64`.
    #[must_use]
    pub fn with_flipped_data_bit(&self, bit: u32) -> Self {
        assert!(bit < 64, "data bit out of range: {bit}");
        let way = (bit % 2) as usize;
        let mut ways = self.ways;
        ways[way] = ways[way].with_flipped_data_bit(bit / 2);
        InterleavedWord { ways }
    }

    /// Decodes both ways and reassembles the word, if usable.
    #[must_use]
    pub fn decode_data(&self) -> Option<u64> {
        let even = self.ways[0].decode().data()?;
        let odd = self.ways[1].decode().data()?;
        let mut data = 0u64;
        for i in 0..32 {
            data |= u64::from(even >> i & 1) << (2 * i);
            data |= u64::from(odd >> i & 1) << (2 * i + 1);
        }
        Some(data)
    }

    /// The EDAC-level outcome of reading this word.
    #[must_use]
    pub fn check(&self) -> CheckOutcome {
        let a = self.ways[0].decode();
        let b = self.ways[1].decode();
        match (a, b) {
            (Decoded32::Clean(_), Decoded32::Clean(_)) => CheckOutcome::Clean,
            (Decoded32::DoubleError, _) | (_, Decoded32::DoubleError) => CheckOutcome::Uncorrected,
            _ => CheckOutcome::Corrected,
        }
    }

    /// Classifies a *k*-bit random error pattern's outcome without
    /// constructing bit positions: the caller supplies how many flips
    /// landed in each way. Utility for the fault model.
    #[must_use]
    pub fn outcome_for_flips(even_way_flips: u32, odd_way_flips: u32) -> CheckOutcome {
        let way = |k: u32| match k {
            0 => CheckOutcome::Clean,
            1 => CheckOutcome::Corrected,
            2 => CheckOutcome::Uncorrected,
            _ => CheckOutcome::Undetected, // may alias; treated as silent risk
        };
        match (way(even_way_flips), way(odd_way_flips)) {
            (CheckOutcome::Undetected, _) | (_, CheckOutcome::Undetected) => {
                CheckOutcome::Undetected
            }
            (CheckOutcome::Uncorrected, _) | (_, CheckOutcome::Uncorrected) => {
                CheckOutcome::Uncorrected
            }
            (CheckOutcome::Clean, CheckOutcome::Clean) => CheckOutcome::Clean,
            _ => CheckOutcome::Corrected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLES: [u32; 6] = [0, 1, u32::MAX, 0xDEAD_BEEF, 0xAAAA_AAAA, 0x5555_5555];

    #[test]
    fn roundtrip_is_clean() {
        for &v in &SAMPLES {
            assert_eq!(Codeword32::encode(v).decode(), Decoded32::Clean(v));
        }
    }

    #[test]
    fn every_single_flip_corrected() {
        for &v in &SAMPLES {
            let cw = Codeword32::encode(v);
            for pos in 0..CODEWORD_BITS_32 {
                match cw.with_flipped_position(pos).decode() {
                    Decoded32::Corrected(d) => assert_eq!(d, v, "pos {pos}"),
                    other => panic!("pos {pos}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn exhaustive_double_flips_detected() {
        let cw = Codeword32::encode(0x1357_9BDF);
        for p1 in 0..CODEWORD_BITS_32 {
            for p2 in (p1 + 1)..CODEWORD_BITS_32 {
                assert_eq!(
                    cw.with_flipped_position(p1)
                        .with_flipped_position(p2)
                        .decode(),
                    Decoded32::DoubleError,
                    "({p1},{p2})"
                );
            }
        }
    }

    #[test]
    fn interleaved_roundtrip() {
        for v in [0u64, u64::MAX, 0x0123_4567_89AB_CDEF] {
            let w = InterleavedWord::encode(v);
            assert_eq!(w.decode_data(), Some(v));
            assert_eq!(w.check(), CheckOutcome::Clean);
        }
    }

    #[test]
    fn interleaving_corrects_all_adjacent_doubles() {
        let v = 0xFACE_FEED_0BAD_F00D;
        let w = InterleavedWord::encode(v);
        for bit in 0..63 {
            let bad = w.with_flipped_data_bit(bit).with_flipped_data_bit(bit + 1);
            assert_eq!(bad.decode_data(), Some(v), "adjacent pair at {bit}");
            assert_eq!(bad.check(), CheckOutcome::Corrected);
        }
    }

    #[test]
    fn same_way_doubles_are_detected_not_corrected() {
        let v = 42u64;
        let w = InterleavedWord::encode(v);
        // Bits 0 and 2 both land in the even way.
        let bad = w.with_flipped_data_bit(0).with_flipped_data_bit(2);
        assert_eq!(bad.check(), CheckOutcome::Uncorrected);
        assert_eq!(bad.decode_data(), None);
    }

    #[test]
    fn plain_secded64_cannot_correct_adjacent_doubles_but_interleaved_can() {
        // The §6 upgrade in one assertion.
        let v = 0x0F0F_F0F0_1234_5678u64;
        let plain = crate::secded::Codeword::encode(v)
            .with_flipped_data_bit(10)
            .with_flipped_data_bit(11);
        assert_eq!(plain.decode(), crate::secded::Decoded::DoubleError);
        let inter = InterleavedWord::encode(v)
            .with_flipped_data_bit(10)
            .with_flipped_data_bit(11);
        assert_eq!(inter.decode_data(), Some(v));
    }

    #[test]
    fn outcome_for_flips_matrix() {
        use CheckOutcome::*;
        assert_eq!(InterleavedWord::outcome_for_flips(0, 0), Clean);
        assert_eq!(InterleavedWord::outcome_for_flips(1, 0), Corrected);
        assert_eq!(InterleavedWord::outcome_for_flips(1, 1), Corrected);
        assert_eq!(InterleavedWord::outcome_for_flips(2, 0), Uncorrected);
        assert_eq!(InterleavedWord::outcome_for_flips(2, 1), Uncorrected);
        assert_eq!(InterleavedWord::outcome_for_flips(3, 0), Undetected);
    }
}
