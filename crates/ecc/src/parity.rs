//! Even-parity protection for 64-bit words, modelling the X-Gene 2 L1
//! instruction/data cache protection (parity protected, per Table 2 of the
//! paper).
//!
//! Parity detects any odd number of flipped bits but corrects nothing: a
//! parity hit on a clean line can be repaired by refetching from the next
//! level, while a hit on a dirty line is an uncorrected error.

use crate::CheckOutcome;

/// Computes the even-parity bit of a 64-bit word.
///
/// The returned bit is chosen so that the total number of set bits in
/// `(word, bit)` is even.
///
/// ```
/// use margins_ecc::parity::parity64;
/// assert_eq!(parity64(0), false);
/// assert_eq!(parity64(0b1011), true);
/// ```
#[must_use]
pub fn parity64(word: u64) -> bool {
    word.count_ones() % 2 == 1
}

/// A 64-bit word stored together with its even-parity bit, as a parity
/// protected SRAM array would hold it.
///
/// ```
/// use margins_ecc::{parity::ParityWord, CheckOutcome};
///
/// let w = ParityWord::store(42);
/// assert_eq!(w.check(), CheckOutcome::Clean);
/// assert_eq!(w.data(), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParityWord {
    data: u64,
    parity: bool,
}

impl ParityWord {
    /// Stores `data` with a freshly computed parity bit.
    #[must_use]
    pub fn store(data: u64) -> Self {
        ParityWord {
            data,
            parity: parity64(data),
        }
    }

    /// Reconstructs a stored word from raw array contents (used by fault
    /// injection, which manipulates the bits behind the codec's back).
    #[must_use]
    pub fn from_raw(data: u64, parity: bool) -> Self {
        ParityWord { data, parity }
    }

    /// The raw data bits as currently held in the array (possibly corrupt).
    #[must_use]
    pub fn data(&self) -> u64 {
        self.data
    }

    /// The stored parity bit.
    #[must_use]
    pub fn parity_bit(&self) -> bool {
        self.parity
    }

    /// Flips data bit `bit` (0–63) in place, simulating a cell failure.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64`.
    pub fn flip_data_bit(&mut self, bit: u32) {
        assert!(bit < 64, "data bit index out of range: {bit}");
        self.data ^= 1u64 << bit;
    }

    /// Flips the stored parity bit in place.
    pub fn flip_parity_bit(&mut self) {
        self.parity = !self.parity;
    }

    /// Checks the stored word against its parity bit.
    ///
    /// Returns [`CheckOutcome::Clean`] when parity matches, and
    /// [`CheckOutcome::Uncorrected`] otherwise — parity can never correct.
    /// An *even* number of flips is undetectable by parity; this method
    /// cannot distinguish that case from a clean word (by construction), so
    /// callers that injected a known number of faults should use
    /// [`ParityWord::check_against`] to obtain the full outcome.
    #[must_use]
    pub fn check(&self) -> CheckOutcome {
        if parity64(self.data) == self.parity {
            CheckOutcome::Clean
        } else {
            CheckOutcome::Uncorrected
        }
    }

    /// Checks against a known-good reference value, classifying undetectable
    /// corruption (even numbers of bit flips) as [`CheckOutcome::Undetected`].
    #[must_use]
    pub fn check_against(&self, reference: u64) -> CheckOutcome {
        match (self.data == reference, self.check()) {
            (true, CheckOutcome::Clean) => CheckOutcome::Clean,
            (false, CheckOutcome::Clean) => CheckOutcome::Undetected,
            (_, outcome) => outcome,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_word_checks_clean() {
        for v in [0u64, 1, u64::MAX, 0xAAAA_AAAA_AAAA_AAAA] {
            assert_eq!(ParityWord::store(v).check(), CheckOutcome::Clean);
        }
    }

    #[test]
    fn single_flip_is_detected_never_corrected() {
        for bit in 0..64 {
            let mut w = ParityWord::store(0x0123_4567_89AB_CDEF);
            w.flip_data_bit(bit);
            assert_eq!(w.check(), CheckOutcome::Uncorrected, "bit {bit}");
        }
    }

    #[test]
    fn parity_bit_flip_is_detected() {
        let mut w = ParityWord::store(7);
        w.flip_parity_bit();
        assert_eq!(w.check(), CheckOutcome::Uncorrected);
    }

    #[test]
    fn double_flip_is_undetected() {
        let reference = 0xFEED_FACE_0000_1111;
        let mut w = ParityWord::store(reference);
        w.flip_data_bit(3);
        w.flip_data_bit(40);
        assert_eq!(w.check(), CheckOutcome::Clean, "parity alone cannot see it");
        assert_eq!(w.check_against(reference), CheckOutcome::Undetected);
    }

    #[test]
    fn check_against_matches_check_for_detected_errors() {
        let reference = 99;
        let mut w = ParityWord::store(reference);
        w.flip_data_bit(0);
        assert_eq!(w.check_against(reference), CheckOutcome::Uncorrected);
    }

    #[test]
    fn parity64_matches_count_ones() {
        for v in [0u64, 1, 2, 3, u64::MAX, 0x8000_0000_0000_0001] {
            assert_eq!(parity64(v), v.count_ones() % 2 == 1);
        }
    }

    #[test]
    fn from_raw_roundtrip() {
        let w = ParityWord::store(1234);
        let w2 = ParityWord::from_raw(w.data(), w.parity_bit());
        assert_eq!(w, w2);
    }
}
