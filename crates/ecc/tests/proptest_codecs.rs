//! Property-based tests for the parity and SECDED codecs.

use margins_ecc::parity::ParityWord;
use margins_ecc::secded::{Codeword, Decoded, CODEWORD_BITS, DATA_BITS};
use margins_ecc::CheckOutcome;
use proptest::prelude::*;

proptest! {
    #[test]
    fn secded_roundtrip(data in any::<u64>()) {
        let cw = Codeword::encode(data);
        prop_assert_eq!(cw.decode(), Decoded::Clean(data));
        prop_assert_eq!(cw.data_unchecked(), data);
    }

    #[test]
    fn secded_corrects_any_single_flip(data in any::<u64>(), pos in 0u32..CODEWORD_BITS) {
        let bad = Codeword::encode(data).with_flipped_position(pos);
        match bad.decode() {
            Decoded::Corrected { data: d, position } => {
                prop_assert_eq!(d, data);
                prop_assert_eq!(position, pos);
            }
            other => prop_assert!(false, "expected correction, got {:?}", other),
        }
    }

    #[test]
    fn secded_detects_any_double_flip(
        data in any::<u64>(),
        p1 in 0u32..CODEWORD_BITS,
        p2 in 0u32..CODEWORD_BITS,
    ) {
        prop_assume!(p1 != p2);
        let bad = Codeword::encode(data)
            .with_flipped_position(p1)
            .with_flipped_position(p2);
        prop_assert_eq!(bad.decode(), Decoded::DoubleError);
    }

    #[test]
    fn secded_check_against_is_consistent_with_decode(
        data in any::<u64>(),
        flips in proptest::collection::vec(0u32..CODEWORD_BITS, 0..4),
    ) {
        let mut cw = Codeword::encode(data);
        let mut flipped = std::collections::HashSet::new();
        for f in flips {
            cw = cw.with_flipped_position(f);
            if !flipped.insert(f) {
                flipped.remove(&f);
            }
        }
        let outcome = cw.check_against(data);
        match flipped.len() {
            0 => prop_assert_eq!(outcome, CheckOutcome::Clean),
            1 => prop_assert_eq!(outcome, CheckOutcome::Corrected),
            2 => prop_assert_eq!(outcome, CheckOutcome::Uncorrected),
            // ≥3 flips: anything except Clean-with-right-data is acceptable,
            // but "Clean" must imply wrong data was labelled Undetected.
            _ => prop_assert!(outcome != CheckOutcome::Clean),
        }
    }

    #[test]
    fn parity_detects_odd_flip_counts(
        data in any::<u64>(),
        flips in proptest::collection::vec(0u32..DATA_BITS, 1..6),
    ) {
        let mut w = ParityWord::store(data);
        let mut set = std::collections::HashSet::new();
        for f in flips {
            w.flip_data_bit(f);
            if !set.insert(f) {
                set.remove(&f);
            }
        }
        let expected = if set.is_empty() {
            CheckOutcome::Clean
        } else if set.len() % 2 == 1 {
            CheckOutcome::Uncorrected
        } else {
            CheckOutcome::Undetected
        };
        prop_assert_eq!(w.check_against(data), expected);
    }
}
