//! Criterion microbenchmarks of the substrate components behind the
//! tables: SECDED/parity codecs (Table 2's protection), the severity
//! function (Table 4), cache accesses and the timing-fault sampler.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use margins_core::effect::{Effect, EffectSet};
use margins_core::severity::SeverityWeights;
use margins_ecc::parity::ParityWord;
use margins_ecc::secded::Codeword;
use margins_sim::cache::CacheHierarchy;
use margins_sim::edac::EdacLog;
use margins_sim::faults::timing::{OpClass, TimingFaultModel};
use margins_sim::freq::TimingRegime;
use margins_sim::{ChipSpec, CoreId, Corner};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_ecc(c: &mut Criterion) {
    c.bench_function("ecc/secded_encode", |b| {
        b.iter(|| Codeword::encode(black_box(0xDEAD_BEEF_CAFE_F00D)));
    });
    let cw = Codeword::encode(0xDEAD_BEEF_CAFE_F00D);
    c.bench_function("ecc/secded_decode_clean", |b| {
        b.iter(|| black_box(&cw).decode());
    });
    let bad = cw.with_flipped_data_bit(17);
    c.bench_function("ecc/secded_decode_correcting", |b| {
        b.iter(|| black_box(&bad).decode());
    });
    c.bench_function("ecc/parity_store_check", |b| {
        b.iter(|| ParityWord::store(black_box(0x0123_4567_89AB_CDEF)).check());
    });
}

fn bench_severity(c: &mut Criterion) {
    let weights = SeverityWeights::paper();
    let runs: Vec<EffectSet> = (0..10)
        .map(|i| {
            if i < 6 {
                EffectSet::of(Effect::Sdc)
            } else if i < 8 {
                [Effect::Sdc, Effect::Ce].into_iter().collect()
            } else {
                EffectSet::of(Effect::Sc)
            }
        })
        .collect();
    c.bench_function("severity/10_runs(table4 weights)", |b| {
        b.iter(|| weights.severity(black_box(&runs)));
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/data_access_stream", |b| {
        let mut h = CacheHierarchy::new(ChipSpec::new(Corner::Ttt, 0));
        let mut edac = EdacLog::new();
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64) % (1 << 22);
            h.data_access(CoreId::new(0), addr, false, 980.0, 950.0, &mut edac)
        });
    });
}

fn bench_fault_sampler(c: &mut Criterion) {
    c.bench_function("faults/on_op_safe_voltage", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = TimingFaultModel::new(886.0, TimingRegime::FullSpeed, 980.0, &mut rng);
        b.iter(|| m.on_op(OpClass::FpMul, &mut rng));
    });
    c.bench_function("faults/on_op_unsafe_voltage", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = TimingFaultModel::new(886.0, TimingRegime::FullSpeed, 870.0, &mut rng);
        b.iter(|| m.on_op(OpClass::FpMul, &mut rng));
    });
}

criterion_group!(
    benches,
    bench_ecc,
    bench_severity,
    bench_cache,
    bench_fault_sampler
);
criterion_main!(benches);
