//! Criterion benchmarks of the §5 governor path: staircase construction,
//! scheduling and governor decisions over an 8-task table.

use criterion::{criterion_group, criterion_main, Criterion};
use margins_energy::schedule::{Assignment, Scheduler};
use margins_energy::tradeoff::pareto_curve;
use margins_energy::{Governor, Policy, VminTable};
use margins_sim::{CoreId, Millivolts};

fn fixture() -> (Vec<Assignment>, VminTable) {
    let mut table = VminTable::new();
    let data = [
        (0u8, "leslie3d", 915u32),
        (1, "bwaves", 910),
        (2, "cactusADM", 900),
        (3, "milc", 890),
        (4, "dealII", 870),
        (5, "gromacs", 875),
        (6, "namd", 885),
        (7, "mcf", 865),
    ];
    let mut assignments = Vec::new();
    for (core, wl, v) in data {
        for c in CoreId::all() {
            // Populate the whole table (core offset pattern) so the
            // scheduler has full information.
            let offset = [22u32, 19, 12, 14, 0, 2, 9, 7][c.index()];
            table.insert(c, wl, Millivolts::new(v - 22 + offset));
        }
        assignments.push(Assignment {
            core: CoreId::new(core),
            workload: wl.to_owned(),
        });
    }
    (assignments, table)
}

fn bench_staircase(c: &mut Criterion) {
    let (assignments, table) = fixture();
    c.bench_function("fig9/pareto_curve(8 tasks)", |b| {
        b.iter(|| pareto_curve(&assignments, &table).unwrap());
    });
}

fn bench_scheduler(c: &mut Criterion) {
    let (assignments, table) = fixture();
    let workloads: Vec<String> = assignments.iter().map(|a| a.workload.clone()).collect();
    c.bench_function("fig9/robust_first_schedule(8 tasks)", |b| {
        let scheduler = Scheduler::new();
        b.iter(|| scheduler.assign_robust_first(&workloads, &table).unwrap());
    });
}

fn bench_governor(c: &mut Criterion) {
    let (assignments, table) = fixture();
    let governor = Governor::new(
        table,
        Policy {
            guardband_steps: 1,
            max_performance_loss: 0.25,
        },
    );
    c.bench_function("fig9/governor_decide", |b| {
        b.iter(|| governor.decide(&assignments).unwrap());
    });
}

criterion_group!(benches, bench_staircase, bench_scheduler, bench_governor);
criterion_main!(benches);
