//! Criterion benchmarks of the adaptive Vmin search engine: campaign
//! throughput per [`SearchStrategy`] on a small reference campaign.
//!
//! Besides the Criterion measurements, `main` records a compact
//! exhaustive-vs-adaptive trajectory (machine probes + wall time per
//! strategy) to `BENCH_search.json` in the working directory, so future
//! changes have a recorded perf baseline to regress against.

use criterion::{criterion_group, Criterion};
use margins_bench::{search_exp, Scale};
use margins_core::search::{SearchPriors, SearchStrategy};
use margins_sim::{ChipSpec, CoreId, Corner};
use std::time::Instant;

const STRATEGIES: [SearchStrategy; 3] = [
    SearchStrategy::Exhaustive,
    SearchStrategy::Bisection,
    SearchStrategy::WarmStart,
];

/// A bench-sized campaign: 3 benchmarks × 2 cores × 2 iterations over the
/// full 945 → 830 mV reference grid.
fn bench_scale() -> Scale {
    Scale {
        iterations: 2,
        threads: 2,
        fig4_benchmarks: vec!["bwaves", "namd", "mcf"],
        fig4_cores: vec![CoreId::new(0), CoreId::new(4)],
        full_prediction_suite: false,
    }
}

/// Warm-start priors for the bench campaign, distilled from one exhaustive
/// characterization (what a persisted campaign cache would supply).
fn bench_priors(spec: ChipSpec, scale: &Scale) -> SearchPriors {
    let exhaustive = search_exp::run_strategy(spec, scale, SearchStrategy::Exhaustive, None);
    search_exp::priors_from(&exhaustive.result)
}

fn bench_strategies(c: &mut Criterion) {
    let spec = ChipSpec::new(Corner::Ttt, 0);
    let scale = bench_scale();
    let priors = bench_priors(spec, &scale);
    let mut group = c.benchmark_group("search/campaign(3bench,2cores,2iters)");
    for strategy in STRATEGIES {
        let seeded = (strategy == SearchStrategy::WarmStart).then_some(&priors);
        group.bench_function(strategy.name(), |b| {
            b.iter(|| search_exp::run_strategy(spec, &scale, strategy, seeded));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_strategies
}

fn main() {
    benches();
    if let Err(e) = write_trajectory("BENCH_search.json") {
        eprintln!("BENCH_search.json: {e}");
    }
}

/// Times one campaign per strategy with a monotonic clock and writes the
/// trajectory as one JSON object (hand-rendered: the payload is flat and
/// the bench must not depend on serializer availability).
fn write_trajectory(path: &str) -> std::io::Result<()> {
    let spec = ChipSpec::new(Corner::Ttt, 0);
    let scale = bench_scale();
    let mut priors: Option<SearchPriors> = None;
    let mut entries = Vec::new();
    for strategy in STRATEGIES {
        let t0 = Instant::now();
        let run = search_exp::run_strategy(spec, &scale, strategy, priors.as_ref());
        let wall_s = t0.elapsed().as_secs_f64();
        if strategy == SearchStrategy::Exhaustive {
            priors = Some(search_exp::priors_from(&run.result));
        }
        entries.push(format!(
            "{{\"strategy\":\"{}\",\"machine_steps\":{},\"grid_steps\":{},\"items\":{},\"wall_s\":{wall_s:.6}}}",
            run.strategy.name(),
            run.machine_steps,
            run.grid_steps,
            run.result.summaries.len()
        ));
    }
    let body = format!(
        "{{\"bench\":\"search\",\"campaign\":\"3bench,2cores,2iters,945-830mV\",\"strategies\":[{}]}}\n",
        entries.join(",")
    );
    std::fs::write(path, body)?;
    eprintln!("wrote {path}");
    Ok(())
}
