//! Criterion benchmarks of the Figure 3/4/5 machinery: single benchmark
//! runs on the simulated machine and a miniature characterization sweep.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use margins_core::config::CampaignConfig;
use margins_core::runner::Campaign;
use margins_sim::{ChipSpec, CoreId, Corner, Millivolts, System, SystemConfig};
use margins_workloads::{suite, Dataset};

fn bench_single_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4/single_run");
    for name in ["bwaves", "mcf", "namd"] {
        let program = suite::by_name(name, Dataset::Ref).expect("kernel exists");
        group.bench_function(format!("{name}@nominal"), |b| {
            b.iter_batched(
                || System::new(ChipSpec::new(Corner::Ttt, 0), SystemConfig::default()),
                |mut sys| sys.run(program.as_ref(), CoreId::new(4), 1).unwrap(),
                BatchSize::PerIteration,
            );
        });
        group.bench_function(format!("{name}@885mV"), |b| {
            b.iter_batched(
                || {
                    let mut sys =
                        System::new(ChipSpec::new(Corner::Ttt, 0), SystemConfig::default());
                    sys.slimpro_mut()
                        .set_pmd_voltage(Millivolts::new(885))
                        .unwrap();
                    sys
                },
                |mut sys| sys.run(program.as_ref(), CoreId::new(4), 1).unwrap(),
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

fn bench_mini_sweep(c: &mut Criterion) {
    c.bench_function("fig4/mini_sweep(namd,core4,5steps,2iters)", |b| {
        let config = CampaignConfig::builder()
            .benchmarks(["namd"])
            .cores([CoreId::new(4)])
            .iterations(2)
            .start_voltage(Millivolts::new(890))
            .floor_voltage(Millivolts::new(870))
            .seed(1)
            .build()
            .unwrap();
        let campaign = Campaign::new(ChipSpec::new(Corner::Ttt, 0), config);
        b.iter(|| campaign.execute());
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_single_runs, bench_mini_sweep
}
criterion_main!(benches);
