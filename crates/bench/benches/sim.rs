//! Criterion benchmarks of the simulator substrate: per-kernel run
//! throughput at nominal conditions.
//!
//! Besides the Criterion measurements, `main` records an ops/sec
//! trajectory to `BENCH_sim.json` in the working directory: for each
//! kernel, retired ops per wall second at nominal voltage (fault path
//! nearly idle) and at a deep-but-safe undervolt (fault sampling, SRAM
//! events and ECC machinery active), plus the per-op overhead the fault
//! path adds. Future simulator changes regress against this baseline.

use criterion::{criterion_group, Criterion};
use margins_sim::{ChipSpec, CoreId, Corner, Millivolts, RunRecord, System, SystemConfig};
use margins_workloads::{suite, Dataset};
use std::time::Instant;

const KERNELS: [&str; 3] = ["bwaves", "namd", "mcf"];
/// The paper's robust core — sweeps stay complete-able well below 900 mV.
const CORE: u8 = 4;
/// Deep-but-safe undervolt: 80 mV under the 980 mV nominal, above the
/// robust core's Vmin for every bench kernel.
const UNDERVOLT_MV: u32 = 900;
const REPS: u32 = 10;
const SEED: u64 = 0xB00C_5EED;

/// One run on a pristine board; `mv` of `None` keeps the nominal rail.
fn run_once(spec: ChipSpec, kernel: &str, mv: Option<u32>, seed: u64) -> Option<RunRecord> {
    let program = suite::by_name(kernel, Dataset::Ref).expect("bench kernels exist");
    let mut system = System::new(spec, SystemConfig::default());
    if let Some(mv) = mv {
        system
            .slimpro_mut()
            .set_pmd_voltage(Millivolts::new(mv))
            .expect("bench undervolt is on the regulator grid");
    }
    system.run(program.as_ref(), CoreId::new(CORE), seed).ok()
}

fn bench_kernels(c: &mut Criterion) {
    let spec = ChipSpec::new(Corner::Ttt, 0);
    let mut group = c.benchmark_group("sim/run@nominal");
    for kernel in KERNELS {
        group.bench_function(kernel, |b| {
            b.iter(|| run_once(spec, kernel, None, SEED));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernels
}

fn main() {
    benches();
    if let Err(e) = write_trajectory("BENCH_sim.json") {
        eprintln!("BENCH_sim.json: {e}");
    }
}

/// Wall-clock totals of `REPS` runs of one kernel at one operating point.
struct Leg {
    wall_s: f64,
    ops: u64,
    fault_samples: u64,
    sram_events: u64,
    completed: u32,
}

fn measure(spec: ChipSpec, kernel: &str, mv: Option<u32>) -> Leg {
    let mut leg = Leg {
        wall_s: 0.0,
        ops: 0,
        fault_samples: 0,
        sram_events: 0,
        completed: 0,
    };
    for rep in 0..REPS {
        let t0 = Instant::now();
        let record = run_once(spec, kernel, mv, SEED.wrapping_add(u64::from(rep)));
        leg.wall_s += t0.elapsed().as_secs_f64();
        if let Some(record) = record {
            leg.ops += record.instructions;
            leg.fault_samples += record.fault_samples;
            leg.sram_events += (record.corrected_errors + record.uncorrected_errors) as u64;
            leg.completed += 1;
        }
    }
    leg
}

fn ops_per_s(leg: &Leg) -> f64 {
    if leg.wall_s > 0.0 {
        leg.ops as f64 / leg.wall_s
    } else {
        0.0
    }
}

fn ns_per_op(leg: &Leg) -> f64 {
    if leg.ops > 0 {
        leg.wall_s * 1e9 / leg.ops as f64
    } else {
        0.0
    }
}

/// Times the nominal and undervolted legs per kernel with a monotonic
/// clock and writes the trajectory as one JSON object (hand-rendered:
/// the payload is flat and the bench must not depend on serializer
/// availability).
fn write_trajectory(path: &str) -> std::io::Result<()> {
    let spec = ChipSpec::new(Corner::Ttt, 0);
    let mut entries = Vec::new();
    for kernel in KERNELS {
        let nominal = measure(spec, kernel, None);
        let undervolt = measure(spec, kernel, Some(UNDERVOLT_MV));
        let overhead_ns = ns_per_op(&undervolt) - ns_per_op(&nominal);
        entries.push(format!(
            "{{\"kernel\":\"{kernel}\",\
              \"nominal\":{{\"wall_s\":{:.6},\"ops\":{},\"ops_per_s\":{:.1},\"completed\":{}}},\
              \"undervolt\":{{\"wall_s\":{:.6},\"ops\":{},\"ops_per_s\":{:.1},\
              \"fault_samples\":{},\"sram_events\":{},\"completed\":{}}},\
              \"fault_path_overhead_ns_per_op\":{overhead_ns:.3}}}",
            nominal.wall_s,
            nominal.ops,
            ops_per_s(&nominal),
            nominal.completed,
            undervolt.wall_s,
            undervolt.ops,
            ops_per_s(&undervolt),
            undervolt.fault_samples,
            undervolt.sram_events,
            undervolt.completed,
        ));
    }
    let body = format!(
        "{{\"bench\":\"sim\",\"core\":{CORE},\"undervolt_mv\":{UNDERVOLT_MV},\"reps\":{REPS},\"kernels\":[{}]}}\n",
        entries.join(",")
    );
    std::fs::write(path, body)?;
    eprintln!("wrote {path}");
    Ok(())
}
