//! Criterion benchmarks of the §4 prediction machinery at the paper's
//! problem shape: ~100 samples × 102 features, OLS + RFE down to 5.

use criterion::{criterion_group, criterion_main, Criterion};
use margins_predict::{LinearRegression, NaiveMean, RecursiveFeatureElimination};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic dataset shaped like the Figure 7 severity study.
fn dataset(n: usize, p: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(42);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f64> = (0..p).map(|_| rng.gen_range(0.0..1e6)).collect();
        let target = 16.0 - row[p - 1] / 1e5 + row[3] / 1e6 + rng.gen_range(-0.5..0.5);
        x.push(row);
        y.push(target);
    }
    (x, y)
}

fn bench_ols(c: &mut Criterion) {
    let (x, y) = dataset(100, 102);
    c.bench_function("fig7/ols_fit(100x102)", |b| {
        b.iter(|| LinearRegression::fit(&x, &y).unwrap());
    });
    let model = LinearRegression::fit(&x, &y).unwrap();
    c.bench_function("fig7/predict(100)", |b| {
        b.iter(|| model.predict_many(&x));
    });
}

fn bench_rfe(c: &mut Criterion) {
    let (x, y) = dataset(100, 102);
    c.bench_function("fig7/rfe_102_to_5(step5)", |b| {
        b.iter(|| RecursiveFeatureElimination::fit(&x, &y, 5, 5).unwrap());
    });
}

fn bench_naive(c: &mut Criterion) {
    let (_, y) = dataset(100, 102);
    c.bench_function("fig7/naive_baseline", |b| {
        b.iter(|| NaiveMean::fit(&y).predict_many(20));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ols, bench_rfe, bench_naive
}
criterion_main!(benches);
