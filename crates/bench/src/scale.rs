//! Experiment sizing.

use margins_sim::CoreId;

/// How big to run an experiment.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Campaign iterations per (benchmark, core, voltage) — the paper uses
    /// 10.
    pub iterations: u32,
    /// Worker threads for campaign sharding.
    pub threads: usize,
    /// Benchmarks characterized in Figures 3–5.
    pub fig4_benchmarks: Vec<&'static str>,
    /// Cores characterized in Figure 4 (the paper sweeps all eight).
    pub fig4_cores: Vec<CoreId>,
    /// Whether the prediction study uses the full 40-pair suite.
    pub full_prediction_suite: bool,
}

impl Scale {
    /// The paper-sized configuration.
    #[must_use]
    pub fn full() -> Self {
        Scale {
            iterations: 10,
            threads: default_threads(),
            fig4_benchmarks: margins_workloads::suite::FIGURE4_NAMES.to_vec(),
            fig4_cores: CoreId::all().collect(),
            full_prediction_suite: true,
        }
    }

    /// A CI-sized subset: fewer iterations, benchmarks and cores. The
    /// qualitative structure (region ordering, prediction superiority over
    /// the naïve baseline) still holds at this size.
    #[must_use]
    pub fn quick() -> Self {
        Scale {
            iterations: 4,
            threads: default_threads(),
            fig4_benchmarks: vec!["bwaves", "leslie3d", "milc", "namd", "mcf"],
            fig4_cores: vec![
                CoreId::new(0),
                CoreId::new(1),
                CoreId::new(4),
                CoreId::new(5),
            ],
            full_prediction_suite: false,
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matches_paper_dimensions() {
        let s = Scale::full();
        assert_eq!(s.iterations, 10);
        assert_eq!(s.fig4_benchmarks.len(), 10);
        assert_eq!(s.fig4_cores.len(), 8);
    }

    #[test]
    fn quick_is_a_strict_subset() {
        let full = Scale::full();
        let quick = Scale::quick();
        assert!(quick.iterations < full.iterations);
        for b in &quick.fig4_benchmarks {
            assert!(full.fig4_benchmarks.contains(b));
        }
    }
}
