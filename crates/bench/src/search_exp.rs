//! The adaptive-search study: exhaustive vs bisection vs warm-start probe
//! counts, and the boundary-equivalence claim the conformance suite
//! (`tests/search_equivalence.rs`) enforces, on the Figure 3/4 reference
//! campaign bounds.
//!
//! The equivalence claim is scoped by the paper's §3 region model: an
//! adaptive search is provably identical to the exhaustive sweep on every
//! item whose (deterministic, visit-order-independent) step verdicts form
//! contiguous regions — Safe above Unsafe above Crash. Items where the
//! sampled verdicts violate contiguity (possible at low iteration counts
//! right at the stochastic boundary) are reported separately: there the
//! adaptive search still returns a *confirmed* boundary (the abnormal step
//! it found, with the step directly above probed normal), but no
//! sub-linear probe order can promise the global first-abnormal step.

use crate::scale::Scale;
use margins_core::config::CampaignConfig;
use margins_core::exec::{ExecContext, ThreadPoolExecutor};
use margins_core::regions::{analyze, CharacterizationResult, RegionKind, SweepSummary};
use margins_core::runner::Campaign;
use margins_core::search::{ItemPrior, SearchPriors, SearchStrategy};
use margins_core::severity::SeverityWeights;
use margins_sim::{ChipSpec, Millivolts};
use margins_trace::MetricsRegistry;
use std::fmt::Write as _;

/// One strategy's campaign, analyzed, with its probe-count telemetry.
#[derive(Debug, Clone)]
pub struct StrategyRun {
    /// The strategy that produced this campaign.
    pub strategy: SearchStrategy,
    /// Voltage steps executed on the machine (the `voltage_steps` metric).
    pub machine_steps: u64,
    /// Steps of the full voltage grid, per (benchmark, core) item.
    pub grid_per_item: u32,
    /// Steps the full grid holds across all (benchmark, core) items.
    pub grid_steps: u64,
    /// The analyzed campaign.
    pub result: CharacterizationResult,
}

/// The study's campaign configuration: the Figure 3/4 reference bounds
/// (945 → 830 mV, crash-stop after 2 all-crash steps) under `strategy`.
#[must_use]
pub fn study_config(scale: &Scale, strategy: SearchStrategy) -> CampaignConfig {
    CampaignConfig::builder()
        .benchmarks(scale.fig4_benchmarks.iter().copied())
        .cores(scale.fig4_cores.iter().copied())
        .iterations(scale.iterations)
        .start_voltage(Millivolts::new(945))
        .floor_voltage(Millivolts::new(830))
        .crash_stop_steps(2)
        .seed(0xF164)
        .search(strategy)
        .build()
        .expect("search-study configuration is valid")
}

/// Runs one campaign configuration and collects its probe-count metrics.
#[must_use]
pub fn run_config(
    spec: ChipSpec,
    config: CampaignConfig,
    threads: usize,
    priors: Option<&SearchPriors>,
) -> StrategyRun {
    let strategy = config.search;
    let items = (config.benchmarks.len() * config.cores.len()) as u64;
    let grid_per_item = config.step_count();
    let grid_steps = u64::from(grid_per_item) * items;
    let campaign = Campaign::new(spec, config);
    let mut metrics = MetricsRegistry::new();
    // Attach the registry through `ExecContext` instead of disguising it
    // as a trace sink: the unified run path folds it into the finalized
    // stream exactly like `execute_metered` does.
    let outcome = campaign
        .run(
            &ThreadPoolExecutor::clamped(threads),
            ExecContext {
                metrics: Some(&mut metrics),
                priors,
                ..ExecContext::new()
            },
        )
        .expect("built-in executors uphold the delivery contract");
    StrategyRun {
        strategy,
        machine_steps: metrics.counter("voltage_steps"),
        grid_per_item,
        grid_steps,
        result: analyze(&outcome, &SeverityWeights::paper()),
    }
}

/// Runs one strategy's study campaign.
#[must_use]
pub fn run_strategy(
    spec: ChipSpec,
    scale: &Scale,
    strategy: SearchStrategy,
    priors: Option<&SearchPriors>,
) -> StrategyRun {
    run_config(spec, study_config(scale, strategy), scale.threads, priors)
}

/// Distills warm-start priors from an exhaustive characterization — the
/// boundary estimate a persisted campaign cache (or the margin predictor)
/// would supply.
#[must_use]
pub fn priors_from(result: &CharacterizationResult) -> SearchPriors {
    let mut priors = SearchPriors::new();
    for s in &result.summaries {
        let prior = ItemPrior {
            // safe_vmin is the last safe step, so the first abnormal step
            // sits one 5 mV grid step below it.
            vmin_mv: s.safe_vmin.map(|v| v.get().saturating_sub(5)),
            crash_mv: s.highest_crash.map(Millivolts::get),
        };
        priors.insert(&s.program, &s.dataset, s.core, prior);
    }
    priors
}

/// Runs all three strategies; warm-start is seeded from the exhaustive
/// leg's boundaries. The exhaustive run is always first in the result.
#[must_use]
pub fn study(spec: ChipSpec, scale: &Scale) -> Vec<StrategyRun> {
    let exhaustive = run_strategy(spec, scale, SearchStrategy::Exhaustive, None);
    let bisection = run_strategy(spec, scale, SearchStrategy::Bisection, None);
    let priors = priors_from(&exhaustive.result);
    let warm = run_strategy(spec, scale, SearchStrategy::WarmStart, Some(&priors));
    vec![exhaustive, bisection, warm]
}

/// Whether a summary's step verdicts form contiguous regions — Safe above
/// Unsafe above Crash, never interleaved. On a *fully swept* item this is
/// exactly the hypothesis under which adaptive search provably reports the
/// same boundaries as the exhaustive sweep.
#[must_use]
pub fn contiguous_regions(summary: &SweepSummary) -> bool {
    let mut seen_abnormal = false;
    let mut seen_crash = false;
    for step in &summary.steps {
        match step.region {
            RegionKind::Safe => {
                if seen_abnormal {
                    return false;
                }
            }
            RegionKind::Unsafe => {
                if seen_crash {
                    return false;
                }
                seen_abnormal = true;
            }
            RegionKind::Crash => {
                seen_abnormal = true;
                seen_crash = true;
            }
        }
    }
    true
}

/// The (program, dataset, core) keys of an exhaustive run's items on which
/// the equivalence claim is unconditional: the item was swept over the
/// whole grid (no crash-stop) and its regions are contiguous.
#[must_use]
pub fn comparable_keys(exhaustive: &StrategyRun) -> Vec<(String, String, usize)> {
    exhaustive
        .result
        .summaries
        .iter()
        .filter(|s| s.steps.len() == exhaustive.grid_per_item as usize && contiguous_regions(s))
        .map(|s| (s.program.clone(), s.dataset.clone(), s.core.index()))
        .collect()
}

/// The (program, core, safe Vmin, highest crash) boundary tuples of a
/// characterization restricted to `keys`, in canonical order.
#[must_use]
pub fn boundaries(
    result: &CharacterizationResult,
    keys: &[(String, String, usize)],
) -> Vec<(String, usize, Option<u32>, Option<u32>)> {
    result
        .summaries
        .iter()
        .filter(|s| {
            keys.iter()
                .any(|(p, d, c)| *p == s.program && *d == s.dataset && *c == s.core.index())
        })
        .map(|s| {
            (
                s.program.clone(),
                s.core.index(),
                s.safe_vmin.map(Millivolts::get),
                s.highest_crash.map(Millivolts::get),
            )
        })
        .collect()
}

/// The study report: probe counts per strategy and the boundary verdict
/// against the exhaustive sweep on the comparable (fully-swept,
/// contiguous-region) items.
#[must_use]
pub fn report(runs: &[StrategyRun]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Adaptive Vmin search — machine probes vs the exhaustive sweep"
    );
    let base = runs
        .iter()
        .find(|r| r.strategy == SearchStrategy::Exhaustive);
    let keys = base.map(comparable_keys).unwrap_or_default();
    let reference = base.map(|r| boundaries(&r.result, &keys));
    if let Some(b) = base {
        let _ = writeln!(
            out,
            "equivalence domain: {}/{} items fully swept with contiguous regions",
            keys.len(),
            b.result.summaries.len()
        );
    }
    let _ = writeln!(
        out,
        "{:<12}{:>15}{:>12}{:>12}  {}",
        "strategy", "machine steps", "grid steps", "% of grid", "boundaries"
    );
    for r in runs {
        let pct = 100.0 * r.machine_steps as f64 / r.grid_steps.max(1) as f64;
        let verdict = match &reference {
            Some(b) if *b == boundaries(&r.result, &keys) => "identical",
            Some(_) => "DIVERGED",
            None => "-",
        };
        let _ = writeln!(
            out,
            "{:<12}{:>15}{:>12}{:>11.1}%  {}",
            r.strategy.name(),
            r.machine_steps,
            r.grid_steps,
            pct,
            verdict
        );
    }
    if let Some(b) = base {
        for r in runs.iter().filter(|r| r.strategy.is_adaptive()) {
            let frac = 100.0 * r.machine_steps as f64 / b.machine_steps.max(1) as f64;
            let _ = writeln!(
                out,
                "{}: {frac:.1}% of the steps the exhaustive sweep visited (target ≤ 40%)",
                r.strategy.name()
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use margins_sim::{CoreId, Corner};

    fn tiny() -> Scale {
        Scale {
            iterations: 2,
            threads: 2,
            fig4_benchmarks: vec!["bwaves", "namd"],
            fig4_cores: vec![CoreId::new(0), CoreId::new(4)],
            full_prediction_suite: false,
        }
    }

    #[test]
    fn adaptive_matches_exhaustive_on_contiguous_items_with_fewer_probes() {
        let runs = study(ChipSpec::new(Corner::Ttt, 0), &tiny());
        assert_eq!(runs[0].strategy, SearchStrategy::Exhaustive);
        let keys = comparable_keys(&runs[0]);
        let reference = boundaries(&runs[0].result, &keys);
        for r in &runs[1..] {
            assert_eq!(
                boundaries(&r.result, &keys),
                reference,
                "{} diverged on the contiguous-region items",
                r.strategy
            );
            assert!(
                r.machine_steps < runs[0].machine_steps,
                "{} probed {} steps, exhaustive {}",
                r.strategy,
                r.machine_steps,
                runs[0].machine_steps
            );
        }
        let text = report(&runs);
        assert!(text.contains("identical"));
        assert!(!text.contains("DIVERGED"));
    }

    #[test]
    fn contiguity_accepts_ordered_and_rejects_interleaved_regions() {
        let runs = study(ChipSpec::new(Corner::Ttt, 0), &tiny());
        let exhaustive = &runs[0];
        // Every comparable item really is ordered Safe → Unsafe → Crash.
        for key in comparable_keys(exhaustive) {
            let s = exhaustive
                .result
                .summary(&key.0, &key.1, CoreId::new(key.2 as u8))
                .expect("comparable key resolves");
            assert!(contiguous_regions(s));
        }
    }
}
