//! Figures 3 and 4: the multi-chip, per-core Vmin characterization.

use crate::scale::Scale;
use margins_core::config::CampaignConfig;
use margins_core::exec::{ExecContext, ThreadPoolExecutor};
use margins_core::regions::{analyze, CharacterizationResult};
use margins_core::runner::Campaign;
use margins_core::severity::SeverityWeights;
use margins_sim::{ChipSpec, CoreId, Millivolts};
use std::fmt::Write as _;

/// One chip's full characterization.
#[derive(Debug, Clone)]
pub struct ChipCharacterization {
    /// The chip.
    pub spec: ChipSpec,
    /// Its analyzed campaign.
    pub result: CharacterizationResult,
}

/// Runs the Figure 3/4 characterization for one chip at the given scale.
#[must_use]
pub fn characterize_chip(spec: ChipSpec, scale: &Scale) -> ChipCharacterization {
    characterize_chip_traced(spec, scale, &mut [])
}

/// Like [`characterize_chip`], but streams the campaign's telemetry into
/// `sinks` (an empty slice disables tracing entirely).
pub fn characterize_chip_traced(
    spec: ChipSpec,
    scale: &Scale,
    sinks: &mut [&mut dyn margins_trace::Sink],
) -> ChipCharacterization {
    let config = CampaignConfig::builder()
        .benchmarks(scale.fig4_benchmarks.iter().copied())
        .cores(scale.fig4_cores.iter().copied())
        .iterations(scale.iterations)
        .start_voltage(Millivolts::new(945))
        .floor_voltage(Millivolts::new(830))
        .crash_stop_steps(2)
        .seed(0xF164)
        .build()
        .expect("figure-4 configuration is valid");
    // Drive the unified run path directly; the pool clamps like the old
    // `execute_traced` shim, and the trace stream is executor-invariant.
    let outcome = Campaign::new(spec, config)
        .run(
            &ThreadPoolExecutor::clamped(scale.threads),
            ExecContext {
                sinks,
                ..ExecContext::new()
            },
        )
        .expect("built-in executors uphold the delivery contract");
    ChipCharacterization {
        spec,
        result: analyze(&outcome, &SeverityWeights::paper()),
    }
}

/// Runs the characterization for all three reference chips.
#[must_use]
pub fn characterize_all(scale: &Scale) -> Vec<ChipCharacterization> {
    characterize_all_traced(scale, None).expect("tracing disabled, no IO to fail")
}

/// Runs the characterization for all three reference chips, writing one
/// deterministic JSONL telemetry stream per chip into `trace_dir` when one
/// is given (`fig34-<chip>.jsonl`).
///
/// # Errors
///
/// Returns the first IO error hit while creating or writing a trace file.
pub fn characterize_all_traced(
    scale: &Scale,
    trace_dir: Option<&std::path::Path>,
) -> std::io::Result<Vec<ChipCharacterization>> {
    characterize_all_instrumented(scale, trace_dir, None)
}

/// Like [`characterize_all_traced`], but with the full observability
/// surface: alongside each chip's JSONL stream a per-chip analytics
/// summary (`fig34-<chip>-summary.md`, via `margins-scope`) is written,
/// and when a `metrics` registry is supplied every chip's record stream
/// is accumulated into it for OpenMetrics exposition.
///
/// # Errors
///
/// Returns the first IO error hit while creating or writing an output
/// file.
pub fn characterize_all_instrumented(
    scale: &Scale,
    trace_dir: Option<&std::path::Path>,
    mut metrics: Option<&mut margins_trace::MetricsRegistry>,
) -> std::io::Result<Vec<ChipCharacterization>> {
    let mut out = Vec::new();
    for spec in crate::chips::all() {
        let instrumented = trace_dir.is_some() || metrics.is_some();
        if !instrumented {
            out.push(characterize_chip(spec, scale));
            continue;
        }
        // One in-memory copy of the stream serves the summary, the
        // registry and (via JsonlSink) the on-disk trace, so every
        // artifact describes the identical record sequence.
        let mut memory = margins_trace::MemorySink::new();
        let c = match trace_dir {
            Some(dir) => {
                let stem = format!("fig34-{}", spec.to_string().replace('#', "-"));
                let file = std::fs::File::create(dir.join(format!("{stem}.jsonl")))?;
                let mut sink = margins_trace::JsonlSink::new(std::io::BufWriter::new(file));
                let c = characterize_chip_traced(spec, scale, &mut [&mut sink, &mut memory]);
                sink.into_inner()?;
                let summary = margins_scope::summarize_records(&memory.records)
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
                std::fs::write(
                    dir.join(format!("{stem}-summary.md")),
                    margins_scope::markdown(&summary),
                )?;
                c
            }
            None => characterize_chip_traced(spec, scale, &mut [&mut memory]),
        };
        if let Some(registry) = metrics.as_deref_mut() {
            for record in &memory.records {
                margins_trace::Sink::emit(registry, record);
            }
            margins_trace::Sink::finish(registry);
        }
        out.push(c);
    }
    Ok(out)
}

/// The Figure 3 report: per benchmark and per chip, the safe Vmin of the
/// most robust core (the paper's blue/orange/grey series).
#[must_use]
pub fn fig3_report(chips: &[ChipCharacterization], scale: &Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 3 — Vmin (mV) at 2.4 GHz, most robust core per chip (nominal 980 mV)"
    );
    let _ = write!(out, "{:<12}", "benchmark");
    for c in chips {
        let _ = write!(out, "{:>10}", c.spec.corner().to_string());
    }
    let _ = writeln!(out, "{:>14}", "guardband(TTT)");
    for bench in &scale.fig4_benchmarks {
        let _ = write!(out, "{bench:<12}");
        let mut ttt_vmin = None;
        for c in chips {
            match c.result.most_robust_core(bench) {
                Some((_, v)) => {
                    if c.spec.corner() == margins_sim::Corner::Ttt {
                        ttt_vmin = Some(v);
                    }
                    let _ = write!(out, "{:>10}", v.get());
                }
                None => {
                    let _ = write!(out, "{:>10}", "-");
                }
            }
        }
        match ttt_vmin {
            Some(v) => {
                let saving = 1.0 - (v.as_f64() / 980.0).powi(2);
                let _ = writeln!(out, "{:>13.1}%", saving * 100.0);
            }
            None => {
                let _ = writeln!(out, "{:>14}", "-");
            }
        }
    }
    out
}

/// The Figure 4 report: per benchmark, per chip, per core — the region
/// band, the conservative Vmin, the highest crash voltage and the average
/// Vmin/crash lines.
#[must_use]
pub fn fig4_report(chips: &[ChipCharacterization], scale: &Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 4 — regions of operation ('.' safe, '#' unsafe, 'X' crash), sweep 945→830 mV"
    );
    for bench in &scale.fig4_benchmarks {
        let _ = writeln!(out, "\n== {bench} ==");
        for c in chips {
            let _ = writeln!(out, " chip {}", c.spec);
            for core in &scale.fig4_cores {
                let Some(s) = c.result.summary(bench, "ref", *core) else {
                    continue;
                };
                let band: String = s
                    .steps
                    .iter()
                    .map(|st| match st.region {
                        margins_core::regions::RegionKind::Safe => '.',
                        margins_core::regions::RegionKind::Unsafe => '#',
                        margins_core::regions::RegionKind::Crash => 'X',
                    })
                    .collect();
                let _ = writeln!(
                    out,
                    "  core{} {band:<21} vmin={:<5} crash={:<5} avg_vmin={:<7} avg_crash={}",
                    core.index(),
                    opt_mv(s.safe_vmin),
                    opt_mv(s.highest_crash),
                    opt_f(s.average_vmin),
                    opt_f(s.average_crash),
                );
            }
        }
    }
    out
}

/// Cross-chip/core headline statistics used by the EXPERIMENTS.md record
/// and asserted by integration tests.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4Stats {
    /// Mean safe Vmin per chip (over benchmarks × cores), mV.
    pub mean_vmin_per_chip: Vec<(String, f64)>,
    /// The most robust PMD index per chip (by mean Vmin of its cores).
    pub most_robust_pmd: Vec<(String, usize)>,
    /// Workload Vmin spread (max − min across benchmarks) on the TTT
    /// robust core, mV.
    pub ttt_workload_spread_mv: f64,
}

/// Computes the headline statistics from the characterizations.
#[must_use]
pub fn fig4_stats(chips: &[ChipCharacterization], scale: &Scale) -> Fig4Stats {
    let mut mean_vmin_per_chip = Vec::new();
    let mut most_robust_pmd = Vec::new();
    for c in chips {
        let vmins: Vec<f64> = c
            .result
            .summaries
            .iter()
            .filter_map(|s| s.safe_vmin.map(|v| v.as_f64()))
            .collect();
        let mean = vmins.iter().sum::<f64>() / vmins.len().max(1) as f64;
        mean_vmin_per_chip.push((c.spec.to_string(), mean));

        // Rank PMDs by the mean Vmin of their cores.
        let mut best_pmd = 0usize;
        let mut best = f64::INFINITY;
        for pmd in 0..4usize {
            let vs: Vec<f64> = c
                .result
                .summaries
                .iter()
                .filter(|s| s.core.pmd().index() == pmd)
                .filter_map(|s| s.safe_vmin.map(|v| v.as_f64()))
                .collect();
            if vs.is_empty() {
                continue;
            }
            let m = vs.iter().sum::<f64>() / vs.len() as f64;
            if m < best {
                best = m;
                best_pmd = pmd;
            }
        }
        most_robust_pmd.push((c.spec.to_string(), best_pmd));
    }

    // Workload spread on the TTT chip's most robust core (core 4).
    let ttt = &chips[0];
    let core = CoreId::new(4);
    let mut vmins: Vec<f64> = scale
        .fig4_benchmarks
        .iter()
        .filter_map(|b| ttt.result.summary(b, "ref", core))
        .filter_map(|s| s.safe_vmin.map(|v| v.as_f64()))
        .collect();
    vmins.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let spread = match (vmins.first(), vmins.last()) {
        (Some(lo), Some(hi)) => hi - lo,
        _ => 0.0,
    };

    Fig4Stats {
        mean_vmin_per_chip,
        most_robust_pmd,
        ttt_workload_spread_mv: spread,
    }
}

fn opt_mv(v: Option<Millivolts>) -> String {
    v.map_or_else(|| "-".into(), |x| x.get().to_string())
}

fn opt_f(v: Option<f64>) -> String {
    v.map_or_else(|| "-".into(), |x| format!("{x:.1}"))
}
