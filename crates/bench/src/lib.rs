//! Experiment harness regenerating every table and figure of the paper's
//! evaluation, plus shared fixtures for the Criterion benchmarks.
//!
//! Each experiment is a pure function from a [`scale::Scale`] (full = the
//! paper's configuration, quick = a CI-sized subset) to a structured result
//! plus a printable report. The `experiments` binary
//! (`cargo run --release -p margins-bench --bin experiments -- <id>`)
//! dispatches on experiment ids; see `EXPERIMENTS.md` at the workspace root
//! for the paper-vs-measured record.
//!
//! | id | reproduces |
//! |----|------------|
//! | `table2` | Table 2 — chip configuration |
//! | `table3` | Table 3 — effect taxonomy (exercised live) |
//! | `table4` | Table 4 — severity weights |
//! | `fig3`   | Figure 3 — robust-core Vmin across 3 chips |
//! | `fig4`   | Figure 4 — per-core safe/unsafe/crash regions |
//! | `fig5`   | Figure 5 — bwaves severity heat-map on TTT |
//! | `sec3-2` | §3.2 — the 1.2 GHz divided regime (uniform 760 mV) |
//! | `sec3-4` | §3.4 — ALU/FPU vs cache self-test ordering |
//! | `case1`  | §4.3.1 — Vmin prediction vs the naïve baseline |
//! | `fig7`   | Figure 7 — severity prediction, most sensitive core |
//! | `fig8`   | Figure 8 — severity prediction, most robust core |
//! | `fig9`   | Figure 9 — energy/performance staircase |
//! | `headline` | abstract/§5 — 19.4% / 38.8% / 69.9% savings numbers |
//! | `sec6`   | §6 design-enhancement ablation (extension) |
//! | `socrail`| PCP/SoC-rail characterization (extension) |
//! | `search` | adaptive Vmin search vs the exhaustive sweep (extension) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chips;
pub mod energy_exp;
pub mod extensions;
pub mod fig34;
pub mod fig5;
pub mod prediction;
pub mod regimes;
pub mod scale;
pub mod search_exp;
pub mod tables;

pub use scale::Scale;
