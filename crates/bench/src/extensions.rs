//! Extension experiments beyond the paper's evaluation:
//!
//! * [`sec6_ablation`] — the §6 design-enhancement recommendations,
//!   actually built and measured: stronger (interleaved) ECC, hardware
//!   timing-fault detectors, adaptive clocking.
//! * [`soc_rail_characterization`] — scaling the *other* rail (§2.1's
//!   independently regulated PCP/SoC domain): the L3's ECC becomes the
//!   first line of defence, recovering the Itanium-style
//!   corrected-errors-first profile the paper contrasts against (§3.4,
//!   §4.4's "ECC proxy" band).

use crate::scale::Scale;
use margins_core::config::{CampaignConfig, SweptRail};
use margins_core::effect::Effect;
use margins_core::regions::{analyze, CharacterizationResult, RegionKind};
use margins_core::runner::Campaign;
use margins_core::severity::SeverityWeights;
use margins_sim::{ChipSpec, CoreId, Enhancements, Millivolts};
use std::fmt::Write as _;

/// One chip-revision variant of the §6 ablation.
#[derive(Debug, Clone)]
pub struct Sec6Variant {
    /// Variant label.
    pub label: &'static str,
    /// The enhancements active.
    pub enhancements: Enhancements,
    /// The analyzed sweep.
    pub result: CharacterizationResult,
}

/// Characterizes `benchmark` on TTT core 0 under each §6 chip revision.
#[must_use]
pub fn sec6_ablation(spec: ChipSpec, benchmark: &str, scale: &Scale) -> Vec<Sec6Variant> {
    let variants: [(&'static str, Enhancements); 4] = [
        ("stock", Enhancements::stock()),
        (
            "detectors (§6b)",
            Enhancements {
                residue_checks: true,
                ..Enhancements::stock()
            },
        ),
        (
            "stronger ECC (§6a)",
            Enhancements {
                extended_ecc: true,
                ..Enhancements::stock()
            },
        ),
        ("all + adaptive clk", Enhancements::all()),
    ];
    variants
        .into_iter()
        .map(|(label, enhancements)| {
            let config = CampaignConfig::builder()
                .benchmarks([benchmark])
                .cores([CoreId::new(0)])
                .iterations(scale.iterations)
                .start_voltage(Millivolts::new(945))
                .floor_voltage(Millivolts::new(840))
                .crash_stop_steps(2)
                .enhancements(enhancements)
                .seed(0x6_6_6)
                .build()
                .expect("sec6 configuration is valid");
            let outcome = Campaign::new(spec, config).execute_parallel(scale.threads);
            Sec6Variant {
                label,
                enhancements,
                result: analyze(&outcome, &SeverityWeights::paper()),
            }
        })
        .collect()
}

/// Renders the §6 ablation: per variant, the first abnormal effect, the
/// sizes of the SDC-free and SDC-bearing bands, and the crash voltage.
#[must_use]
pub fn sec6_report(variants: &[Sec6Variant], benchmark: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "§6 design-enhancement ablation — {benchmark} on TTT core 0 at 2.4 GHz"
    );
    let _ = writeln!(
        out,
        "{:<20}{:>8}{:>8}{:>16}{:>12}{:>12}",
        "variant", "vmin", "crash", "first effect", "CE-only", "SDC steps"
    );
    for v in variants {
        let Some(s) = v.result.summaries.first() else {
            continue;
        };
        let first_effect = s
            .abnormal_steps()
            .next()
            .map(|st| st.observed().to_string())
            .unwrap_or_else(|| "-".into());
        let ce_only_steps = s
            .steps
            .iter()
            .filter(|st| {
                st.region == RegionKind::Unsafe && {
                    let o = st.observed();
                    o.contains(Effect::Ce)
                        && !o.contains(Effect::Sdc)
                        && !o.contains(Effect::Ue)
                        && !o.contains(Effect::Ac)
                }
            })
            .count();
        let sdc_steps = s
            .steps
            .iter()
            .filter(|st| st.observed().contains(Effect::Sdc))
            .count();
        let _ = writeln!(
            out,
            "{:<20}{:>8}{:>8}{:>16}{:>12}{:>12}",
            v.label,
            s.safe_vmin
                .map_or_else(|| "-".into(), |x| x.get().to_string()),
            s.highest_crash
                .map_or_else(|| "-".into(), |x| x.get().to_string()),
            first_effect,
            ce_only_steps,
            sdc_steps,
        );
    }
    let _ = writeln!(
        out,
        "(§6's claim: with stronger protection/detectors, 'SDC behavior … will have\n\
         significant probability to be transformed to corrected errors behavior')"
    );
    out
}

/// Characterizes memory-bound benchmarks against the PCP/SoC rail.
#[must_use]
pub fn soc_rail_characterization(spec: ChipSpec, scale: &Scale) -> CharacterizationResult {
    let config = CampaignConfig::builder()
        .benchmarks(["mcf", "lbm"])
        .cores([CoreId::new(4)])
        .iterations(scale.iterations)
        .rail(SweptRail::PcpSoc)
        .start_voltage(Millivolts::new(900))
        .floor_voltage(Millivolts::new(710))
        .crash_stop_steps(2)
        .seed(0x50C)
        .build()
        .expect("SoC-rail configuration is valid");
    let outcome = Campaign::new(spec, config).execute_parallel(scale.threads);
    analyze(&outcome, &SeverityWeights::paper())
}

/// Renders the SoC-rail study: the per-step region/effect/mitigation table.
#[must_use]
pub fn soc_rail_report(result: &CharacterizationResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "PCP/SoC-rail characterization on {} (PMD rail at nominal, SoC nominal 950 mV)",
        result.spec
    );
    for s in &result.summaries {
        let _ = writeln!(
            out,
            "\n {} on core{}: vmin={} crash={}",
            s.program,
            s.core.index(),
            s.safe_vmin.map_or_else(|| "-".into(), |v| v.to_string()),
            s.highest_crash
                .map_or_else(|| "-".into(), |v| v.to_string()),
        );
        for st in s.abnormal_steps() {
            let _ = writeln!(
                out,
                "   {:>4} mV  severity {:>5.1}  effects {:<10}  → {}",
                st.mv,
                st.severity.value(),
                st.observed().to_string(),
                st.severity.mitigation(st.observed()),
            );
        }
    }
    let _ = writeln!(
        out,
        "\n(the wide corrected-errors-only band is the Itanium-style behaviour of\n\
         [9, 10] — on this design it lives on the SoC rail, not the core rail,\n\
         enabling §4.4's 'ECC serves as a proxy' speculation for the L3/memory domain)"
    );
    out
}
