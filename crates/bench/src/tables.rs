//! Tables 2–4: configuration, effect taxonomy and severity weights.

use margins_core::effect::Effect;
use margins_core::severity::SeverityWeights;
use margins_sim::topology::ChipDescription;
use std::fmt::Write as _;

/// Table 2 — the basic parameters of the simulated machine.
#[must_use]
pub fn table2_report() -> String {
    let d = ChipDescription::x_gene_2();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2 — basic parameters of the simulated APM X-Gene 2"
    );
    let rows = [
        ("ISA", d.isa.to_owned()),
        ("Pipeline", d.pipeline.to_owned()),
        ("CPU", format!("{} cores", d.cores)),
        (
            "Core clock",
            format!("{:.1} GHz", f64::from(d.core_clock_mhz) / 1000.0),
        ),
        ("L1 Instr. cache", d.l1i.to_owned()),
        ("L1 Data cache", d.l1d.to_owned()),
        ("L2 cache", d.l2.to_owned()),
        ("L3 cache", d.l3.to_owned()),
        ("Technology", format!("{} nm", d.technology_nm)),
        ("Max TDP", format!("{:.0} W", d.max_tdp_watts)),
    ];
    for (k, v) in rows {
        let _ = writeln!(out, "  {k:<18}{v}");
    }
    out
}

/// Table 3 — the effects classification, plus a live demonstration: a tiny
/// sweep that actually produces (at least) NO, SDC and SC runs.
#[must_use]
pub fn table3_report() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3 — effects classification");
    for e in Effect::ALL {
        let _ = writeln!(out, "  {:<4} {}", e.abbreviation(), e.description());
    }

    // Live demonstration on a fast sweep.
    use margins_core::config::CampaignConfig;
    use margins_core::runner::Campaign;
    use margins_sim::{ChipSpec, CoreId, Corner, Millivolts};
    let cfg = CampaignConfig::builder()
        .benchmarks(["bwaves"])
        .cores([CoreId::new(0)])
        .iterations(4)
        .start_voltage(Millivolts::new(910))
        .floor_voltage(Millivolts::new(850))
        .seed(0x7AB1E3)
        .build()
        .expect("table-3 demo configuration is valid");
    let outcome = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg).execute();
    let mut counts = std::collections::BTreeMap::new();
    for r in &outcome.runs {
        if r.effects.is_normal() {
            *counts.entry("NO".to_owned()).or_insert(0usize) += 1;
        }
        for e in r.effects.iter() {
            *counts.entry(e.abbreviation().to_owned()).or_insert(0usize) += 1;
        }
    }
    let _ = writeln!(
        out,
        "\n  live demonstration (bwaves on TTT core0, 910→850 mV, 4 iterations):"
    );
    for (effect, n) in counts {
        let _ = writeln!(out, "    {effect:<4} observed in {n} runs");
    }
    out
}

/// Table 4 — the severity weights.
#[must_use]
pub fn table4_report() -> String {
    let w = SeverityWeights::paper();
    let mut out = String::new();
    let _ = writeln!(out, "Table 4 — severity weights used in the experiments");
    let rows = [
        ("W_SC", w.sc),
        ("W_AC", w.ac),
        ("W_SDC", w.sdc),
        ("W_UE", w.ue),
        ("W_CE", w.ce),
        ("W_NO", 0.0),
    ];
    for (k, v) in rows {
        let _ = writeln!(out, "  {k:<6}{v:>4}");
    }
    out
}
