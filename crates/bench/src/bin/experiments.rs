//! The experiment harness: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p margins-bench --bin experiments -- \
//!     [--quick] [--trace-dir DIR] [--metrics-out FILE] <id>...
//! cargo run --release -p margins-bench --bin experiments -- all
//! ```
//!
//! With `--trace-dir`, the shared figure-3/4 characterization writes one
//! deterministic JSONL telemetry stream per chip into the directory, plus
//! a `fig34-<chip>-summary.md` analytics report per chip. With
//! `--metrics-out`, the combined metrics of all three campaigns are
//! written as an OpenMetrics text exposition.
//!
//! Experiment ids: `table2 table3 table4 fig3 fig4 fig5 sec3-2 sec3-4
//! case1 fig7 fig8 fig9 headline sec6 socrail search all`.

use margins_bench::{
    chips, energy_exp, extensions, fig34, fig5, prediction, regimes, search_exp, tables, Scale,
};
use margins_sim::CoreId;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut trace_dir: Option<std::path::PathBuf> = None;
    let mut metrics_out: Option<std::path::PathBuf> = None;
    let mut ids: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--trace-dir" => match it.next() {
                Some(dir) => trace_dir = Some(std::path::PathBuf::from(dir)),
                None => {
                    eprintln!("--trace-dir needs a directory");
                    std::process::exit(2);
                }
            },
            "--metrics-out" => match it.next() {
                Some(path) => metrics_out = Some(std::path::PathBuf::from(path)),
                None => {
                    eprintln!("--metrics-out needs a file");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--") => {
                eprintln!("unknown flag '{other}'");
                std::process::exit(2);
            }
            other => ids.push(other),
        }
    }
    if ids.is_empty() {
        eprintln!(
            "usage: experiments [--quick] [--trace-dir DIR] [--metrics-out FILE] <id>... \n  ids: table2 table3 table4 fig3 fig4 fig5 sec3-2 sec3-4 case1 fig7 fig8 fig9 headline sec6 socrail search all"
        );
        std::process::exit(2);
    }
    let scale = if quick { Scale::quick() } else { Scale::full() };
    let all = ids.contains(&"all");
    let want = |id: &str| all || ids.contains(&id);

    println!(
        "# voltmargin experiments ({} scale)\n",
        if quick { "quick" } else { "full" }
    );

    if want("table2") {
        section("table2", tables::table2_report);
    }
    if want("table3") {
        section("table3", tables::table3_report);
    }
    if want("table4") {
        section("table4", tables::table4_report);
    }

    // Figures 3/4/5 + fig9/headline share one multi-chip characterization.
    let needs_chars = ["fig3", "fig4", "fig5", "fig9", "headline"]
        .iter()
        .any(|id| want(id));
    let characterizations = if needs_chars {
        let t0 = Instant::now();
        if let Some(dir) = &trace_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("--trace-dir {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
        let mut metrics = metrics_out
            .as_ref()
            .map(|_| margins_trace::MetricsRegistry::new());
        let c = match fig34::characterize_all_instrumented(
            &scale,
            trace_dir.as_deref(),
            metrics.as_mut(),
        ) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("--trace-dir: {e}");
                std::process::exit(1);
            }
        };
        if let Some(dir) = &trace_dir {
            eprintln!("[trace streams and summaries written to {}]", dir.display());
        }
        if let (Some(path), Some(registry)) = (&metrics_out, &metrics) {
            if let Err(e) = std::fs::write(path, registry.to_openmetrics()) {
                eprintln!("--metrics-out {}: {e}", path.display());
                std::process::exit(1);
            }
            eprintln!("[metrics exposition written to {}]", path.display());
        }
        eprintln!(
            "[characterized 3 chips in {:.1}s]",
            t0.elapsed().as_secs_f64()
        );
        Some(c)
    } else {
        None
    };

    if let Some(chars) = &characterizations {
        if want("fig3") {
            section("fig3", || fig34::fig3_report(chars, &scale));
        }
        if want("fig4") {
            section("fig4", || {
                let mut s = fig34::fig4_report(chars, &scale);
                let stats = fig34::fig4_stats(chars, &scale);
                s.push_str("\nSummary statistics:\n");
                for (chip, mean) in &stats.mean_vmin_per_chip {
                    s.push_str(&format!("  {chip}: mean Vmin {mean:.1} mV\n"));
                }
                for (chip, pmd) in &stats.most_robust_pmd {
                    s.push_str(&format!("  {chip}: most robust PMD{pmd} (paper: PMD2)\n"));
                }
                s.push_str(&format!(
                    "  TTT robust-core workload spread: {:.0} mV (paper: ~25 mV)\n",
                    stats.ttt_workload_spread_mv
                ));
                s
            });
        }
        if want("fig5") {
            section("fig5", || fig5::fig5_report(&chars[0], "bwaves"));
        }
        if want("fig9") {
            section("fig9", || energy_exp::fig9_report(&chars[0]));
        }
        if want("headline") {
            section("headline", || energy_exp::headline_report(&chars[0]));
        }
    }

    if want("sec3-2") {
        section("sec3-2", || {
            let r = regimes::divided_regime(chips::ttt(), &scale);
            regimes::sec32_report(&r, &scale)
        });
    }
    if want("sec3-4") {
        section("sec3-4", || {
            let r = regimes::selftest_characterization(
                chips::ttt(),
                CoreId::new(4),
                scale.iterations,
                scale.threads,
            );
            regimes::sec34_report(&r)
        });
    }

    if want("sec6") {
        section("sec6", || {
            let variants = extensions::sec6_ablation(chips::ttt(), "bwaves", &scale);
            extensions::sec6_report(&variants, "bwaves")
        });
    }
    if want("socrail") {
        section("socrail", || {
            let r = extensions::soc_rail_characterization(chips::ttt(), &scale);
            extensions::soc_rail_report(&r)
        });
    }
    if want("search") {
        section("search", || {
            let runs = search_exp::study(chips::ttt(), &scale);
            search_exp::report(&runs)
        });
    }

    if want("case1") {
        section("case1", || {
            let o = prediction::vmin_prediction(chips::ttt(), CoreId::new(0), &scale);
            prediction::report(
                &o,
                "§4.3.1 — Vmin prediction, most sensitive core",
                "RMSE ≈ 5 mV, R² ≈ 0; naive equally efficient",
            )
        });
    }
    if want("fig7") {
        section("fig7", || {
            let o = prediction::severity_prediction(chips::ttt(), CoreId::new(0), &scale);
            prediction::report(
                &o,
                "Figure 7 — severity prediction, most sensitive core",
                "RMSE 2.8 vs naive 6.4, R² = 0.92",
            )
        });
    }
    if want("fig8") {
        section("fig8", || {
            let o = prediction::severity_prediction(chips::ttt(), CoreId::new(4), &scale);
            prediction::report(
                &o,
                "Figure 8 — severity prediction, most robust core",
                "RMSE 2.65 vs naive 6.9, R² = 0.91",
            )
        });
    }
}

fn section(id: &str, f: impl FnOnce() -> String) {
    let t0 = Instant::now();
    let body = f();
    println!("## {id}\n");
    println!("{body}");
    eprintln!("[{id} done in {:.1}s]", t0.elapsed().as_secs_f64());
}
