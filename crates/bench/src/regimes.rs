//! §3.2 (the divided clock regime) and §3.4 (the component self-tests).

use crate::scale::Scale;
use margins_core::config::CampaignConfig;
use margins_core::regions::{analyze, CharacterizationResult};
use margins_core::runner::Campaign;
use margins_core::severity::SeverityWeights;
use margins_sim::{ChipSpec, CoreId, Megahertz, Millivolts};
use std::fmt::Write as _;

/// Characterizes a benchmark set at 1.2 GHz (the divided regime) on the
/// given chip — §3.2's experiment.
#[must_use]
pub fn divided_regime(spec: ChipSpec, scale: &Scale) -> CharacterizationResult {
    let config = CampaignConfig::builder()
        .benchmarks(scale.fig4_benchmarks.iter().copied())
        .cores(scale.fig4_cores.iter().copied())
        .iterations(scale.iterations)
        .target_frequency(Megahertz::new(1200))
        .start_voltage(Millivolts::new(790))
        .floor_voltage(Millivolts::new(740))
        .crash_stop_steps(2)
        .seed(0x3_2_2)
        .build()
        .expect("divided-regime configuration is valid");
    let outcome = Campaign::new(spec, config).execute_parallel(scale.threads);
    analyze(&outcome, &SeverityWeights::paper())
}

/// The §3.2 report: per (benchmark, core) the 1.2 GHz Vmin and whether any
/// non-crash abnormality was ever seen below it.
#[must_use]
pub fn sec32_report(result: &CharacterizationResult, scale: &Scale) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "§3.2 — 1.2 GHz (divided clock regime) on {}: Vmin per (benchmark, core)",
        result.spec
    );
    let mut vmins = Vec::new();
    let mut non_crash_abnormal = 0usize;
    for s in &result.summaries {
        if let Some(v) = s.safe_vmin {
            vmins.push(v.get());
        }
        for st in &s.steps {
            if st.region == margins_core::regions::RegionKind::Unsafe {
                non_crash_abnormal += 1;
            }
        }
    }
    vmins.sort_unstable();
    vmins.dedup();
    let _ = writeln!(
        out,
        "  distinct Vmin values across {} sweeps: {:?} (paper: uniform 760 mV)",
        result.summaries.len(),
        vmins
    );
    let _ = writeln!(
        out,
        "  unsafe (non-crash abnormal) steps below Vmin: {non_crash_abnormal} (paper: 0 — crash-only)"
    );
    let _ = writeln!(
        out,
        "  benchmarks×cores characterized: {}×{}",
        scale.fig4_benchmarks.len(),
        scale.fig4_cores.len()
    );
    out
}

/// Characterizes the §3.4 self-tests (cache march vs ALU vs FPU) on one
/// core of the given chip at 2.4 GHz.
#[must_use]
pub fn selftest_characterization(
    spec: ChipSpec,
    core: CoreId,
    iterations: u32,
    threads: usize,
) -> CharacterizationResult {
    let config = CampaignConfig::builder()
        .benchmarks([
            "selftest-fpu",
            "selftest-alu",
            "selftest-l1d",
            "selftest-l2",
        ])
        .cores([core])
        .iterations(iterations)
        .start_voltage(Millivolts::new(945))
        .floor_voltage(Millivolts::new(830))
        .crash_stop_steps(2)
        .seed(0x3_4_4)
        .build()
        .expect("self-test configuration is valid");
    let outcome = Campaign::new(spec, config).execute_parallel(threads);
    analyze(&outcome, &SeverityWeights::paper())
}

/// The §3.4 report: first-abnormal voltage per self-test, demonstrating the
/// timing-path-dominated behaviour (FPU/ALU fail high, cache tests keep
/// running far lower).
#[must_use]
pub fn sec34_report(result: &CharacterizationResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "§3.4 — component self-tests on {} core4 at 2.4 GHz",
        result.spec
    );
    let _ = writeln!(
        out,
        "{:<14}{:>12}{:>14}",
        "self-test", "safe Vmin", "highest crash"
    );
    for s in &result.summaries {
        let _ = writeln!(
            out,
            "{:<14}{:>12}{:>14}",
            s.program,
            s.safe_vmin
                .map_or_else(|| "-".into(), |v| v.get().to_string()),
            s.highest_crash
                .map_or_else(|| "-".into(), |v| v.get().to_string()),
        );
    }
    let _ = writeln!(
        out,
        "(paper: SDCs appear when the pipeline is stressed; cache tests crash much lower)"
    );
    out
}
