//! Figure 5: the bwaves severity heat-map on the TTT chip.

use crate::fig34::ChipCharacterization;
use margins_sim::Millivolts;
use std::fmt::Write as _;

/// Renders the Figure 5 panel: per voltage step (rows, descending) and per
/// core (columns), the severity value of bwaves on the TTT chip. Empty
/// cells are the safe region; the paper's figure shows values from 1.3 up
/// to 16.0 as the voltage descends through the unsafe region.
#[must_use]
pub fn fig5_report(ttt: &ChipCharacterization, benchmark: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 5 — {benchmark} severity on {} cores (blank = safe region)",
        ttt.spec
    );
    let summaries: Vec<_> = ttt.result.by_program(benchmark).collect();
    if summaries.is_empty() {
        let _ = writeln!(out, "  (no data: benchmark was not characterized)");
        return out;
    }
    // Collect the union of voltages seen across cores, descending.
    let mut voltages: Vec<u32> = summaries
        .iter()
        .flat_map(|s| s.steps.iter().map(|st| st.mv))
        .collect();
    voltages.sort_unstable_by(|a, b| b.cmp(a));
    voltages.dedup();

    let _ = write!(out, "{:>6}", "mV");
    for s in &summaries {
        let _ = write!(out, "{:>8}", format!("core{}", s.core.index()));
    }
    let _ = writeln!(out);
    for mv in voltages {
        let _ = write!(out, "{mv:>6}");
        for s in &summaries {
            match s.step(Millivolts::new(mv)) {
                Some(st) if st.severity.value() > 0.0 => {
                    let _ = write!(out, "{:>8.1}", st.severity.value());
                }
                Some(_) => {
                    let _ = write!(out, "{:>8}", "");
                }
                None => {
                    let _ = write!(out, "{:>8}", "·");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Extracts the severity series of one core (descending voltage) — used by
/// tests to check the smooth-growth property the paper highlights for
/// bwaves.
#[must_use]
pub fn severity_series(
    ttt: &ChipCharacterization,
    benchmark: &str,
    core: margins_sim::CoreId,
) -> Vec<(u32, f64)> {
    ttt.result
        .summary(benchmark, "ref", core)
        .map(|s| {
            s.steps
                .iter()
                .map(|st| (st.mv, st.severity.value()))
                .collect()
        })
        .unwrap_or_default()
}
