//! The three reference parts of the study (§3): the nominal-rated TTT chip
//! and the two sigma chips TFF (fast/leaky) and TSS (slow/low-leakage).

use margins_sim::{ChipSpec, Corner};

/// The nominal TTT part.
#[must_use]
pub fn ttt() -> ChipSpec {
    ChipSpec::new(Corner::Ttt, 0)
}

/// The fast-corner TFF part.
#[must_use]
pub fn tff() -> ChipSpec {
    ChipSpec::new(Corner::Tff, 1)
}

/// The slow-corner TSS part.
#[must_use]
pub fn tss() -> ChipSpec {
    ChipSpec::new(Corner::Tss, 2)
}

/// All three parts in the paper's presentation order.
#[must_use]
pub fn all() -> [ChipSpec; 3] {
    [ttt(), tff(), tss()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_distinct_chips() {
        let chips = all();
        assert_eq!(chips.len(), 3);
        assert_ne!(chips[0], chips[1]);
        assert_ne!(chips[1], chips[2]);
        assert_eq!(chips[0].corner(), Corner::Ttt);
        assert_eq!(chips[1].corner(), Corner::Tff);
        assert_eq!(chips[2].corner(), Corner::Tss);
    }
}
