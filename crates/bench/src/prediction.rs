//! §4: the Vmin and severity prediction studies (Figures 7–8, case 1).

use crate::scale::Scale;
use margins_core::config::{BenchmarkRef, CampaignConfig};
use margins_core::dataset::{
    severity_feature_names, severity_samples, to_matrix, vmin_feature_names, vmin_samples,
};
use margins_core::regions::analyze;
use margins_core::runner::{profile, Campaign};
use margins_core::severity::SeverityWeights;
use margins_predict::{r2_score, rmse, train_test_split, NaiveMean, RecursiveFeatureElimination};
use margins_sim::{ChipSpec, CoreId, Millivolts};
use margins_workloads::Dataset;
use std::fmt::Write as _;

/// Number of features RFE keeps (§4.2: "we eventually selected the 5 most
/// efficient and representative events").
pub const RFE_KEEP: usize = 5;
/// Features removed per RFE round (a throughput/accuracy compromise over
/// scikit-learn's step=1).
pub const RFE_STEP: usize = 5;
/// Training fraction (§4.3: 80/20).
pub const TRAIN_FRACTION: f64 = 0.8;

/// The evaluated outcome of one prediction test case.
#[derive(Debug, Clone)]
pub struct PredictionOutcome {
    /// Core whose behaviour was predicted.
    pub core: CoreId,
    /// Total samples in the dataset.
    pub samples: usize,
    /// Names of the RFE-selected features.
    pub selected_features: Vec<String>,
    /// RMSE of the linear model on the held-out test set.
    pub model_rmse: f64,
    /// RMSE of the naïve (training-mean) baseline on the same test set.
    pub naive_rmse: f64,
    /// R² of the linear model on the test set.
    pub r2: f64,
    /// (actual, predicted) pairs of the test set — the dots/line of
    /// Figures 7–8.
    pub test_points: Vec<(f64, f64)>,
}

/// The benchmark list of the prediction study.
#[must_use]
pub fn prediction_benchmarks(scale: &Scale) -> Vec<BenchmarkRef> {
    if scale.full_prediction_suite {
        let mut refs = Vec::new();
        for name in margins_workloads::suite::ALL_NAMES {
            refs.push(BenchmarkRef {
                name: name.to_owned(),
                dataset: Dataset::Ref,
            });
            if margins_workloads::suite::TRAIN_DATASET_NAMES.contains(&name) {
                refs.push(BenchmarkRef {
                    name: name.to_owned(),
                    dataset: Dataset::Train,
                });
            }
        }
        refs
    } else {
        scale
            .fig4_benchmarks
            .iter()
            .map(|n| BenchmarkRef {
                name: (*n).to_owned(),
                dataset: Dataset::Ref,
            })
            .collect()
    }
}

fn characterize_core(
    spec: ChipSpec,
    core: CoreId,
    benchmarks: &[BenchmarkRef],
    scale: &Scale,
) -> margins_core::regions::CharacterizationResult {
    let config = CampaignConfig::builder()
        .benchmark_refs(benchmarks.iter().cloned())
        .cores([core])
        .iterations(scale.iterations)
        .start_voltage(Millivolts::new(945))
        .floor_voltage(Millivolts::new(830))
        .crash_stop_steps(2)
        .seed(0x9E_D1C7)
        .build()
        .expect("prediction campaign configuration is valid");
    let outcome = Campaign::new(spec, config).execute_parallel(scale.threads);
    analyze(&outcome, &SeverityWeights::paper())
}

fn evaluate(
    x: &[Vec<f64>],
    y: &[f64],
    names: &[&'static str],
    core: CoreId,
    split_seed: u64,
) -> PredictionOutcome {
    let split = train_test_split(y.len(), TRAIN_FRACTION, split_seed);
    let x_train = split.train_of(x);
    let y_train = split.train_of(y);
    let x_test = split.test_of(x);
    let y_test = split.test_of(y);

    let rfe = RecursiveFeatureElimination::fit(&x_train, &y_train, RFE_KEEP, RFE_STEP)
        .expect("prediction datasets are well-formed");
    let pred = rfe.predict_many(&x_test);
    let naive = NaiveMean::fit(&y_train);
    let naive_pred = naive.predict_many(y_test.len());

    PredictionOutcome {
        core,
        samples: y.len(),
        selected_features: rfe
            .selected_features()
            .iter()
            .map(|&j| names[j].to_owned())
            .collect(),
        model_rmse: rmse(&y_test, &pred),
        naive_rmse: rmse(&y_test, &naive_pred),
        r2: r2_score(&y_test, &pred),
        test_points: y_test.iter().copied().zip(pred).collect(),
    }
}

/// Runs the severity prediction test case of §4.3.2/§4.3.3 for `core`.
#[must_use]
pub fn severity_prediction(spec: ChipSpec, core: CoreId, scale: &Scale) -> PredictionOutcome {
    let benchmarks = prediction_benchmarks(scale);
    let result = characterize_core(spec, core, &benchmarks, scale);
    let profiles =
        profile(spec, &benchmarks, core).expect("prediction benchmark names are suite names");
    let samples = severity_samples(&result, &profiles, core);
    let (x, y) = to_matrix(&samples);
    evaluate(&x, &y, &severity_feature_names(), core, 0x51_EA7)
}

/// Runs the Vmin prediction test case of §4.3.1 for `core`.
#[must_use]
pub fn vmin_prediction(spec: ChipSpec, core: CoreId, scale: &Scale) -> PredictionOutcome {
    let benchmarks = prediction_benchmarks(scale);
    let result = characterize_core(spec, core, &benchmarks, scale);
    let profiles =
        profile(spec, &benchmarks, core).expect("prediction benchmark names are suite names");
    let samples = vmin_samples(&result, &profiles, core);
    let (x, y) = to_matrix(&samples);
    evaluate(&x, &y, &vmin_feature_names(), core, 0x7_1117)
}

/// Renders a prediction outcome like the paper reports Figures 7–8.
#[must_use]
pub fn report(outcome: &PredictionOutcome, title: &str, paper_note: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title} (core {})", outcome.core.index());
    let _ = writeln!(out, "  samples: {}", outcome.samples);
    let _ = writeln!(
        out,
        "  RFE-selected features: {:?}",
        outcome.selected_features
    );
    let _ = writeln!(
        out,
        "  linear-model RMSE: {:.2}   naive RMSE: {:.2}   R²: {:.2}",
        outcome.model_rmse, outcome.naive_rmse, outcome.r2
    );
    let _ = writeln!(out, "  paper: {paper_note}");
    let _ = writeln!(out, "  test set (actual → predicted):");
    let mut pts = outcome.test_points.clone();
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    for (actual, predicted) in pts {
        let _ = writeln!(out, "    {actual:>7.2} → {predicted:>7.2}");
    }
    out
}
