//! §5: the energy/performance tradeoff experiments (Figure 9 and the
//! abstract's headline savings numbers).

use crate::fig34::ChipCharacterization;
use margins_energy::model::undervolt_savings;
use margins_energy::schedule::{binding_vmin, Assignment, Scheduler};
use margins_energy::tradeoff::{pareto_curve, per_pmd_rails_comparison};
use margins_energy::vmin::VminTable;
use margins_sim::{CoreId, Millivolts};
use std::fmt::Write as _;

/// The eight-benchmark multiprogram workload of Figure 9.
pub const FIG9_WORKLOAD: [&str; 8] = [
    "bwaves",
    "cactusADM",
    "dealII",
    "gromacs",
    "leslie3d",
    "mcf",
    "milc",
    "namd",
];

/// Builds the in-order Figure 9 assignments from whatever the
/// characterization actually covered: benchmark k on the k-th available
/// core, cycling benchmarks when fewer were characterized.
#[must_use]
pub fn fig9_assignments(chars: &ChipCharacterization) -> (Vec<Assignment>, VminTable) {
    let table = VminTable::from_characterization(&chars.result);
    let mut cores: Vec<CoreId> = CoreId::all()
        .filter(|c| FIG9_WORKLOAD.iter().any(|w| table.get(*c, w).is_some()))
        .collect();
    cores.sort();
    let mut assignments = Vec::new();
    for (i, core) in cores.iter().enumerate() {
        // Pick the i-th workload (cycling) that has data on this core.
        let mut chosen = None;
        for k in 0..FIG9_WORKLOAD.len() {
            let w = FIG9_WORKLOAD[(i + k) % FIG9_WORKLOAD.len()];
            if table.get(*core, w).is_some() {
                chosen = Some(w);
                break;
            }
        }
        if let Some(w) = chosen {
            assignments.push(Assignment {
                core: *core,
                workload: w.to_owned(),
            });
        }
    }
    (assignments, table)
}

/// The Figure 9 report: the measured staircase plus the robust-first
/// scheduling comparison of §5.
#[must_use]
pub fn fig9_report(chars: &ChipCharacterization) -> String {
    let mut out = String::new();
    let (assignments, table) = fig9_assignments(chars);
    let _ = writeln!(
        out,
        "Figure 9 — energy/performance staircase on {} ({} tasks)",
        chars.spec,
        assignments.len()
    );
    let Some(points) = pareto_curve(&assignments, &table) else {
        let _ = writeln!(out, "  (insufficient characterization data)");
        return out;
    };
    let _ = writeln!(
        out,
        "{:>24}{:>10}{:>12}{:>12}{:>10}",
        "point", "voltage", "rel power", "rel perf", "savings"
    );
    for p in &points {
        let _ = writeln!(
            out,
            "{:>24}{:>9}{:>11.1}%{:>11.1}%{:>9.1}%",
            p.label,
            p.voltage.to_string(),
            p.relative_power * 100.0,
            p.relative_performance * 100.0,
            p.energy_savings * 100.0,
        );
    }
    let _ = writeln!(
        out,
        "(paper's figure: 87.2%@915mV, 73.8%@900mV, 61.2%@885mV, 49.8%@875mV; final point 30.1% power per the §5 text's 69.9% savings)"
    );

    // §6c counterfactual: finer-grained voltage domains.
    if let Some((shared, per_pmd)) = per_pmd_rails_comparison(&assignments, &table) {
        let _ = writeln!(
            out,
            "§6c counterfactual: shared rail {:.1}% savings vs per-PMD rails {:.1}% savings at full speed",
            shared.energy_savings * 100.0,
            per_pmd.energy_savings * 100.0,
        );
    }

    // Scheduling comparison.
    let workloads: Vec<String> = assignments.iter().map(|a| a.workload.clone()).collect();
    if let Some(smart) = Scheduler::new().assign_robust_first(&workloads, &table) {
        if let (Some(naive_v), Some(smart_v)) = (
            binding_vmin(&assignments, &table),
            binding_vmin(&smart, &table),
        ) {
            let _ = writeln!(
                out,
                "scheduling: in-order binding Vmin {naive_v} ({:.1}% savings) vs robust-first {smart_v} ({:.1}% savings)",
                undervolt_savings(naive_v) * 100.0,
                undervolt_savings(smart_v) * 100.0,
            );
        }
    }
    out
}

/// The abstract/§5 headline numbers from the measured characterization.
#[must_use]
pub fn headline_report(chars: &ChipCharacterization) -> String {
    let mut out = String::new();
    let table = VminTable::from_characterization(&chars.result);
    let _ = writeln!(out, "Headline energy-savings numbers on {}", chars.spec);

    // Per-benchmark robust-core savings (the "19.4% without compromising
    // performance" claim is the robust-core potential).
    let mut savings = Vec::new();
    for s in &chars.result.summaries {
        if s.dataset != "ref" {
            continue;
        }
        if let Some((_, v)) = chars.result.most_robust_core(&s.program) {
            savings.push((s.program.clone(), undervolt_savings(v)));
        }
    }
    savings.sort_by(|a, b| a.0.cmp(&b.0));
    savings.dedup_by(|a, b| a.0 == b.0);
    if !savings.is_empty() {
        let mean = savings.iter().map(|(_, s)| *s).sum::<f64>() / savings.len() as f64;
        let _ = writeln!(
            out,
            "  mean robust-core savings at full speed: {:.1}% (paper: 19.4%)",
            mean * 100.0
        );
    }

    // The leslie3d domain-limit example of §5.
    if let (Some((rc, rv)), Some((sc, sv))) = (
        chars.result.most_robust_core("leslie3d"),
        chars.result.most_sensitive_core("leslie3d"),
    ) {
        let _ = writeln!(
            out,
            "  leslie3d: robust core{} Vmin {rv} ({:.1}% savings) vs sensitive core{} Vmin {sv} ({:.1}% savings; paper: 19.4% vs 12.8%)",
            rc.index(),
            undervolt_savings(rv) * 100.0,
            sc.index(),
            undervolt_savings(sv) * 100.0,
        );
    }

    // The staircase's 25% and 50% performance-loss points.
    let (assignments, _) = fig9_assignments(chars);
    if let Some(points) = pareto_curve(&assignments, &table) {
        for (target, paper) in [(0.75, "38.8%"), (0.5, "69.9%")] {
            if let Some(p) = points
                .iter()
                .filter(|p| p.relative_performance + 1e-9 >= target)
                .max_by(|a, b| {
                    a.energy_savings
                        .partial_cmp(&b.energy_savings)
                        .expect("finite")
                })
            {
                let _ = writeln!(
                    out,
                    "  best point at ≥{:.0}% performance: {} → {:.1}% savings (paper: {paper})",
                    target * 100.0,
                    p.voltage,
                    p.energy_savings * 100.0,
                );
            }
        }
    }

    // The 1.2 GHz uniform floor.
    let _ = writeln!(
        out,
        "  all PMDs at 1.2 GHz / {}: {:.1}% power savings with 50% performance loss (paper: 69.9%)",
        Millivolts::new(760),
        (1.0 - (760.0f64 / 980.0).powi(2) * 0.5) * 100.0,
    );
    out
}
