//! Rendering tests of the experiment harness library: the static tables
//! plus quick-scale smoke coverage of the figure reports.

use margins_bench::{extensions, fig34, fig5, tables, Scale};
use margins_sim::{ChipSpec, CoreId, Corner};

#[test]
fn table2_renders_the_paper_configuration() {
    let t = tables::table2_report();
    for needle in [
        "ARMv8",
        "8 cores",
        "2.4 GHz",
        "32KB per core (Parity Protected)",
        "256KB per PMD (ECC Protected)",
        "8MB (ECC Protected)",
        "28 nm",
        "35 W",
    ] {
        assert!(t.contains(needle), "table2 missing {needle:?}:\n{t}");
    }
}

#[test]
fn table4_renders_the_severity_weights() {
    let t = tables::table4_report();
    for needle in ["W_SC", "16", "W_AC", "W_SDC", "W_CE", "W_NO"] {
        assert!(t.contains(needle), "table4 missing {needle:?}");
    }
}

#[test]
fn fig_reports_render_from_a_tiny_characterization() {
    // One small chip characterization drives fig3/fig4/fig5 rendering.
    let scale = Scale {
        iterations: 2,
        threads: 4,
        fig4_benchmarks: vec!["bwaves", "mcf"],
        fig4_cores: vec![CoreId::new(0), CoreId::new(4)],
        full_prediction_suite: false,
    };
    let chars = vec![fig34::characterize_chip(
        ChipSpec::new(Corner::Ttt, 0),
        &scale,
    )];

    let f3 = fig34::fig3_report(&chars, &scale);
    assert!(f3.contains("bwaves") && f3.contains("mcf"));
    assert!(f3.contains("TTT"));

    let f4 = fig34::fig4_report(&chars, &scale);
    assert!(f4.contains("core0") && f4.contains("core4"));
    assert!(f4.contains("vmin="));

    let stats = fig34::fig4_stats(&chars, &scale);
    assert_eq!(stats.mean_vmin_per_chip.len(), 1);
    assert!(stats.mean_vmin_per_chip[0].1 > 840.0);

    let f5 = fig5::fig5_report(&chars[0], "bwaves");
    assert!(f5.contains("core0"));
    let series = fig5::severity_series(&chars[0], "bwaves", CoreId::new(0));
    assert!(!series.is_empty());
    assert!(series.windows(2).all(|w| w[0].0 > w[1].0), "descending mV");

    // Unknown benchmark degrades gracefully.
    let missing = fig5::fig5_report(&chars[0], "doom");
    assert!(missing.contains("no data"));
}

#[test]
fn sec6_report_lists_all_variants() {
    let scale = Scale {
        iterations: 2,
        threads: 4,
        fig4_benchmarks: vec!["bwaves"],
        fig4_cores: vec![CoreId::new(0)],
        full_prediction_suite: false,
    };
    let variants = extensions::sec6_ablation(ChipSpec::new(Corner::Ttt, 0), "bwaves", &scale);
    assert_eq!(variants.len(), 4);
    let report = extensions::sec6_report(&variants, "bwaves");
    for needle in ["stock", "detectors", "stronger ECC", "adaptive"] {
        assert!(report.contains(needle), "sec6 missing {needle:?}");
    }
}
