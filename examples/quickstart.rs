//! Quickstart: characterize one benchmark on two cores of a simulated
//! X-Gene 2 and print the regions of operation, the safe Vmin and the
//! severity function.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use voltmargin::characterize::config::CampaignConfig;
use voltmargin::characterize::exec::{ExecContext, ThreadPoolExecutor};
use voltmargin::characterize::regions::analyze;
use voltmargin::characterize::report;
use voltmargin::characterize::runner::Campaign;
use voltmargin::characterize::severity::SeverityWeights;
use voltmargin::sim::{ChipSpec, CoreId, Corner, Millivolts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Initialization phase (Figure 2 of the paper): declare what to
    //    characterize. `bwaves` is the paper's highest-stress benchmark;
    //    core 0 is the most sensitive core, core 4 the most robust.
    let config = CampaignConfig::builder()
        .benchmarks(["bwaves"])
        .cores([CoreId::new(0), CoreId::new(4)])
        .iterations(10)
        .start_voltage(Millivolts::new(930))
        .floor_voltage(Millivolts::new(850))
        .build()?;

    // 2. Execution phase: the campaign sweeps the shared PMD rail down in
    //    5 mV steps, 10 runs per step, recovering via the watchdog whenever
    //    a run hangs the simulated board. A four-worker thread pool and a
    //    serial executor produce byte-identical results; swap in
    //    `SerialExecutor` to see for yourself.
    let chip = ChipSpec::new(Corner::Ttt, 0);
    let campaign = Campaign::new(chip, config);
    let outcome = campaign.run(&ThreadPoolExecutor::new(4)?, ExecContext::new())?;
    println!(
        "executed {} runs ({} watchdog power cycles)\n",
        outcome.runs.len(),
        outcome.watchdog_power_cycles
    );

    // 3. Parsing phase: classify every run into {NO, SDC, CE, UE, AC, SC},
    //    derive the safe/unsafe/crash regions and the severity function.
    let result = analyze(&outcome, &SeverityWeights::paper());
    print!("{}", report::region_band_text(&result, "bwaves"));

    for core in [CoreId::new(0), CoreId::new(4)] {
        let summary = result
            .summary("bwaves", "ref", core)
            .expect("characterized above");
        println!("\nbwaves on {core:?}:");
        println!(
            "  safe Vmin: {}   guardband: {} mV",
            summary
                .safe_vmin
                .map_or_else(|| "-".into(), |v| v.to_string()),
            summary
                .guardband_mv()
                .map_or_else(|| "-".into(), |g| g.get().to_string()),
        );
        println!("  severity by voltage (unsafe/crash region):");
        for step in summary.abnormal_steps() {
            println!(
                "    {:>4} mV  severity {:>5.1}  [{:?}]",
                step.mv,
                step.severity.value(),
                step.region
            );
        }
    }
    Ok(())
}
