//! Two framework capabilities beyond the paper's main flow:
//!
//! 1. **Multi-campaign merging** — the paper ran its ten campaigns over six
//!    months and aggregated them; here two independently seeded campaigns
//!    merge into one analysis with the combined iteration count.
//! 2. **PCP/SoC-rail characterization** — sweeping the chip's second rail
//!    (§2.1) exposes the Itanium-style corrected-errors-first band the
//!    paper contrasts against (§3.4, §4.4's "ECC proxy").
//!
//! ```text
//! cargo run --release --example soc_rail_and_merging
//! ```

use voltmargin::characterize::config::{CampaignConfig, SweptRail};
use voltmargin::characterize::regions::analyze;
use voltmargin::characterize::runner::{Campaign, CampaignOutcome};
use voltmargin::characterize::severity::SeverityWeights;
use voltmargin::sim::{ChipSpec, CoreId, Corner, Millivolts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chip = ChipSpec::new(Corner::Ttt, 0);

    // --- Part 1: merge two campaigns into one analysis. -----------------
    let base = CampaignConfig::builder()
        .benchmarks(["milc"])
        .cores([CoreId::new(4)])
        .iterations(4)
        .start_voltage(Millivolts::new(905))
        .floor_voltage(Millivolts::new(860));
    let first = Campaign::new(chip, base.clone().seed(101).build()?).execute_parallel(4);
    let second = Campaign::new(chip, base.seed(202).build()?).execute_parallel(4);
    let merged = CampaignOutcome::merge([first, second])?;
    println!(
        "merged campaign: {} runs, {} iterations per voltage step",
        merged.runs.len(),
        merged.config.iterations
    );
    let result = analyze(&merged, &SeverityWeights::paper());
    let s = result
        .summary("milc", "ref", CoreId::new(4))
        .expect("characterized");
    println!(
        "milc on core4 (8 merged iterations): vmin={}  crash={}\n",
        s.safe_vmin.map_or_else(|| "-".into(), |v| v.to_string()),
        s.highest_crash
            .map_or_else(|| "-".into(), |v| v.to_string()),
    );

    // --- Part 2: the SoC rail. ------------------------------------------
    let config = CampaignConfig::builder()
        .benchmarks(["mcf"])
        .cores([CoreId::new(4)])
        .iterations(4)
        .rail(SweptRail::PcpSoc)
        .start_voltage(Millivolts::new(880))
        .floor_voltage(Millivolts::new(715))
        .seed(7)
        .build()?;
    eprintln!("sweeping the PCP/SoC rail with mcf (PMD rail stays at nominal)…");
    let outcome = Campaign::new(chip, config).execute_parallel(4);
    let result = analyze(&outcome, &SeverityWeights::paper());
    let s = result
        .summary("mcf", "ref", CoreId::new(4))
        .expect("characterized");
    println!("SoC-rail sweep of mcf:");
    for st in s.abnormal_steps() {
        println!(
            "  {:>4} mV  severity {:>5.1}  {:<10}  {}",
            st.mv,
            st.severity.value(),
            st.observed().to_string(),
            st.severity.mitigation(st.observed()),
        );
    }
    println!(
        "\nNote the wide corrected-errors-only band (severity 1.0): on this rail\n\
         the L3's SECDED is the first line of defence — the behaviour Bacha &\n\
         Teodorescu exploited on Itanium, recovered here for the memory domain."
    );
    Ok(())
}
