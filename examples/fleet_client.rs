//! A minimal fleet client for `voltmargin serve`.
//!
//! Connects over TCP, submits one fleet characterization, waits for the
//! merged results, and writes the per-client artifacts:
//!
//! ```text
//! cargo run --example fleet_client -- --addr 127.0.0.1:4750 \
//!     --client rack-a --chips 64 --out-dir ./fleet-out [--shutdown]
//! ```
//!
//! Writes `<out-dir>/<client>/trace.jsonl` and `metrics.om`, and prints
//! one summary line (chips, runs, power cycles, executed ops) — the line
//! CI greps to gate the zero-probe warm rerun. With `--health`, prints the
//! daemon's health snapshot after the results; with `--metrics-out FILE`,
//! saves the daemon's OpenMetrics exposition. With `--shutdown`, asks
//! the daemon to stop after the results arrive.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use voltmargin::characterize::search::SearchStrategy;
use voltmargin::fleet::{FleetSpec, Request, Response};
use voltmargin::sim::Corner;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("fleet_client: {msg}");
            ExitCode::from(1)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut flags: BTreeMap<String, String> = BTreeMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{flag}'"))?;
        if key == "shutdown" || key == "health" {
            flags.insert(key.to_owned(), String::new());
            continue;
        }
        let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_owned(), value.clone());
    }
    let get = |key: &str, default: &str| -> String {
        flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_owned())
    };
    let num = |key: &str, default: u64| -> Result<u64, String> {
        match flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad value '{v}'")),
        }
    };

    let addr = get("addr", "127.0.0.1:4750");
    let client = get("client", "fleet-client");
    let corner = match get("corner", "ttt").as_str() {
        "ttt" => Corner::Ttt,
        "tff" => Corner::Tff,
        "tss" => Corner::Tss,
        other => return Err(format!("unknown corner '{other}' (ttt|tff|tss)")),
    };
    let search_token = get("search", "exhaustive");
    let search = SearchStrategy::parse(&search_token)
        .ok_or_else(|| format!("unknown search strategy '{search_token}'"))?;
    let spec = FleetSpec {
        corner,
        first_serial: num("first-serial", 0)?,
        chips: num("chips", 4)? as u32,
        benchmarks: get("benchmarks", "namd")
            .split(',')
            .map(|s| s.trim().to_owned())
            .collect(),
        cores: get("cores", "0")
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<u8>()
                    .map_err(|_| format!("--cores: bad core '{s}'"))
            })
            .collect::<Result<Vec<u8>, String>>()?,
        iterations: num("iterations", 1)? as u32,
        start_mv: num("start", 890)? as u32,
        floor_mv: num("floor", 880)? as u32,
        seed: num("seed", 0x00DD_BA11)?,
        search,
    };

    let stream = TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut exchange = |request: &Request| -> Result<Response, String> {
        writeln!(writer, "{}", request.to_line()).map_err(|e| format!("send: {e}"))?;
        writer.flush().map_err(|e| format!("send: {e}"))?;
        let mut reply = String::new();
        reader
            .read_line(&mut reply)
            .map_err(|e| format!("receive: {e}"))?;
        if reply.is_empty() {
            return Err("daemon closed the connection".to_owned());
        }
        Response::parse_line(&reply).map_err(|e| format!("bad frame from daemon: {e}"))
    };

    let submitted = exchange(&Request::Submit {
        client: client.clone(),
        spec,
    })?;
    let job = match submitted {
        Response::Submitted { job, chips } => {
            eprintln!("{client}: job {job} accepted ({chips} chips)");
            job
        }
        Response::Error { code, message, .. } => {
            return Err(format!("submit rejected ({code}): {message}"))
        }
        other => return Err(format!("unexpected reply to submit: {other:?}")),
    };

    let results = exchange(&Request::Results {
        client: client.clone(),
        job,
    })?;
    let Response::Results {
        chips,
        runs,
        power_cycles,
        executed_ops,
        trace,
        metrics,
        ..
    } = results
    else {
        return Err(format!("unexpected reply to results: {results:?}"));
    };

    if let Some(dir) = flags.get("out-dir") {
        let client_dir = std::path::Path::new(dir).join(&client);
        std::fs::create_dir_all(&client_dir)
            .map_err(|e| format!("{}: {e}", client_dir.display()))?;
        let trace_path = client_dir.join("trace.jsonl");
        std::fs::write(&trace_path, &trace)
            .map_err(|e| format!("{}: {e}", trace_path.display()))?;
        let metrics_path = client_dir.join("metrics.om");
        std::fs::write(&metrics_path, &metrics)
            .map_err(|e| format!("{}: {e}", metrics_path.display()))?;
    }

    println!(
        "client={client} job={job} chips={chips} runs={runs} power_cycles={power_cycles} executed_ops={executed_ops}"
    );

    if flags.contains_key("health") {
        match exchange(&Request::Health)? {
            Response::Health(h) => println!(
                "health: workers={} busy={} queued_units={} jobs_queued={} \
                 jobs_running={} jobs_done={} jobs_cancelled={} jobs_failed={} subscribers={}",
                h.workers,
                h.busy,
                h.queued_units,
                h.jobs_queued,
                h.jobs_running,
                h.jobs_done,
                h.jobs_cancelled,
                h.jobs_failed,
                h.subscribers
            ),
            other => return Err(format!("unexpected reply to health: {other:?}")),
        }
    }

    if let Some(path) = flags.get("metrics-out") {
        match exchange(&Request::Metrics)? {
            Response::Metrics { body } => {
                std::fs::write(path, &body).map_err(|e| format!("--metrics-out {path}: {e}"))?;
                eprintln!("{client}: daemon metrics saved to {path}");
            }
            other => return Err(format!("unexpected reply to metrics: {other:?}")),
        }
    }

    if flags.contains_key("shutdown") {
        match exchange(&Request::Shutdown)? {
            Response::Bye => eprintln!("{client}: daemon shutting down"),
            other => return Err(format!("unexpected reply to shutdown: {other:?}")),
        }
    }
    Ok(())
}
