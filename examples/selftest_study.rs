//! The §3.4 component study: why the X-Gene 2 (and its simulated twin) is
//! dominated by timing-path failures rather than SRAM failures.
//!
//! Runs the cache march tests and the ALU/FPU stress tests through the
//! characterization framework and prints where each starts failing — the
//! FPU/ALU tests fail (with SDCs) far above the cache tests.
//!
//! ```text
//! cargo run --release --example selftest_study
//! ```

use voltmargin::characterize::config::CampaignConfig;
use voltmargin::characterize::effect::Effect;
use voltmargin::characterize::regions::analyze;
use voltmargin::characterize::runner::Campaign;
use voltmargin::characterize::severity::SeverityWeights;
use voltmargin::sim::{ChipSpec, CoreId, Corner, Millivolts};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chip = ChipSpec::new(Corner::Ttt, 0);
    let config = CampaignConfig::builder()
        .benchmarks([
            "selftest-fpu",
            "selftest-alu",
            "selftest-l1d",
            "selftest-l2",
        ])
        .cores([CoreId::new(4)])
        .iterations(8)
        .start_voltage(Millivolts::new(935))
        .floor_voltage(Millivolts::new(840))
        .build()?;
    let outcome = Campaign::new(chip, config).execute_parallel(4);
    let result = analyze(&outcome, &SeverityWeights::paper());

    println!("§3.4 self-test study on {chip}, core 4 at 2.4 GHz\n");
    println!(
        "{:<14}{:>10}{:>10}{:>22}",
        "test", "Vmin", "crash", "first abnormal effect"
    );
    for s in &result.summaries {
        let first_effect = s
            .abnormal_steps()
            .next()
            .map(|st| {
                let mut names: Vec<&str> = Effect::ALL
                    .into_iter()
                    .filter(|e| e.is_abnormal() && st.observed().contains(*e))
                    .map(Effect::abbreviation)
                    .collect();
                names.sort_unstable();
                names.join("+")
            })
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<14}{:>10}{:>10}{:>22}",
            s.program,
            s.safe_vmin.map_or_else(|| "-".into(), |v| v.to_string()),
            s.highest_crash
                .map_or_else(|| "-".into(), |v| v.to_string()),
            first_effect,
        );
    }
    println!(
        "\nReading: the FPU/ALU tests lose their margin first — their faults are\n\
         datapath timing failures, surfacing as output corruptions (SDC) or the\n\
         traps they trigger (AC) — while the cache march tests keep running\n\
          ~20 mV lower: the bit-cells are not the weak link on this design (§3.4)."
    );
    Ok(())
}
