//! Predictor-guided undervolting with task scheduling (§5 of the paper):
//! characterize a chip, build the safe-voltage table, schedule an
//! eight-task workload robust-cores-first, and walk the Figure 9
//! energy/performance staircase.
//!
//! ```text
//! cargo run --release --example undervolt_governor
//! ```

use voltmargin::characterize::config::CampaignConfig;
use voltmargin::characterize::regions::analyze;
use voltmargin::characterize::runner::Campaign;
use voltmargin::characterize::severity::SeverityWeights;
use voltmargin::energy::schedule::{binding_vmin, Scheduler};
use voltmargin::energy::tradeoff::pareto_curve;
use voltmargin::energy::{Governor, Policy, VminTable};
use voltmargin::sim::{ChipSpec, CoreId, Corner, Millivolts};

const WORKLOAD: [&str; 8] = [
    "bwaves",
    "cactusADM",
    "dealII",
    "gromacs",
    "leslie3d",
    "mcf",
    "milc",
    "namd",
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Characterize the eight benchmarks on all eight cores (reduced
    // iteration count to keep the example snappy).
    let chip = ChipSpec::new(Corner::Ttt, 0);
    let config = CampaignConfig::builder()
        .benchmarks(WORKLOAD)
        .cores(CoreId::all())
        .iterations(5)
        .start_voltage(Millivolts::new(935))
        .floor_voltage(Millivolts::new(845))
        .build()?;
    eprintln!("characterizing {chip} (this takes a few seconds)…");
    let outcome = Campaign::new(chip, config).execute_parallel(8);
    let result = analyze(&outcome, &SeverityWeights::paper());
    let table = VminTable::from_characterization(&result);
    println!("safe-voltage table: {} entries", table.len());

    // Robust-first scheduling vs a naive in-order placement.
    let workloads: Vec<String> = WORKLOAD.iter().map(|s| (*s).to_owned()).collect();
    let scheduler = Scheduler::new();
    let naive = scheduler.assign_in_order(&workloads);
    let smart = scheduler
        .assign_robust_first(&workloads, &table)
        .expect("all workloads characterized");
    println!("\nscheduling comparison (shared rail = max Vmin over tasks):");
    if let (Some(nv), Some(sv)) = (binding_vmin(&naive, &table), binding_vmin(&smart, &table)) {
        println!("  in-order placement : rail must stay at {nv}");
        println!("  robust-first       : rail can drop to  {sv}");
    }

    // The Figure 9 staircase for the robust-first schedule.
    println!("\nenergy/performance staircase:");
    for p in pareto_curve(&smart, &table).expect("table is complete") {
        println!(
            "  {:<24} {:>6}  power {:>5.1}%  perf {:>5.1}%  savings {:>5.1}%",
            p.label,
            p.voltage.to_string(),
            p.relative_power * 100.0,
            p.relative_performance * 100.0,
            p.energy_savings * 100.0,
        );
    }

    // Let the governor pick operating points under different budgets.
    println!("\ngovernor decisions:");
    for (label, loss) in [
        ("no perf loss", 0.0),
        ("≤25% loss", 0.25),
        ("≤50% loss", 0.5),
    ] {
        let governor = Governor::new(
            table.clone(),
            Policy {
                guardband_steps: 1,
                max_performance_loss: loss,
            },
        );
        if let Some(d) = governor.decide(&smart) {
            println!(
                "  {label:<14} → {} / {:?} GHz pattern, savings {:.1}%",
                d.voltage,
                d.freqs.map(|f| f.get() as f64 / 1000.0),
                d.energy_savings * 100.0
            );
        }
    }
    Ok(())
}
