//! Severity prediction (Figures 7–8 of the paper): characterize a core,
//! profile the benchmarks' performance counters at nominal conditions,
//! train a linear regression with recursive feature elimination and
//! compare it against the naïve mean baseline.
//!
//! ```text
//! cargo run --release --example predict_severity
//! ```

use voltmargin::characterize::config::{BenchmarkRef, CampaignConfig};
use voltmargin::characterize::dataset::{severity_feature_names, severity_samples, to_matrix};
use voltmargin::characterize::regions::analyze;
use voltmargin::characterize::runner::{profile, Campaign};
use voltmargin::characterize::severity::SeverityWeights;
use voltmargin::predict::{
    r2_score, rmse, train_test_split, NaiveMean, RecursiveFeatureElimination,
};
use voltmargin::sim::{ChipSpec, CoreId, Corner, Millivolts};
use voltmargin::workloads::Dataset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let chip = ChipSpec::new(Corner::Ttt, 0);
    let core = CoreId::new(0); // the most sensitive core, as in Figure 7

    // A medium-sized benchmark set (the paper uses 26 programs / 40 pairs;
    // the full set is exercised by `experiments fig7`).
    let benchmarks: Vec<BenchmarkRef> = [
        "bwaves",
        "leslie3d",
        "cactusADM",
        "zeusmp",
        "milc",
        "gromacs",
        "dealII",
        "namd",
        "soplex",
        "mcf",
        "lbm",
        "hmmer",
    ]
    .into_iter()
    .map(|name| BenchmarkRef {
        name: name.to_owned(),
        dataset: Dataset::Ref,
    })
    .collect();

    // Phase 1: offline characterization of the unsafe region.
    let config = CampaignConfig::builder()
        .benchmark_refs(benchmarks.iter().cloned())
        .cores([core])
        .iterations(8)
        .start_voltage(Millivolts::new(935))
        .floor_voltage(Millivolts::new(845))
        .build()?;
    let outcome = Campaign::new(chip, config).execute_parallel(4);
    let result = analyze(&outcome, &SeverityWeights::paper());

    // Phase 2: profile the performance counters at nominal conditions.
    let profiles = profile(chip, &benchmarks, core)?;

    // Phase 3: assemble samples (counters + step voltage → severity).
    let samples = severity_samples(&result, &profiles, core);
    println!(
        "assembled {} severity samples from the unsafe region",
        samples.len()
    );
    let (x, y) = to_matrix(&samples);

    // Phase 4: train (80/20 split), select 5 features with RFE, evaluate.
    let split = train_test_split(y.len(), 0.8, 42);
    let rfe = RecursiveFeatureElimination::fit(&split.train_of(&x), &split.train_of(&y), 5, 5)?;
    let names = severity_feature_names();
    println!("RFE-selected features:");
    for &j in rfe.selected_features() {
        println!("  {}", names[j]);
    }

    let y_test = split.test_of(&y);
    let pred = rfe.predict_many(&split.test_of(&x));
    let naive = NaiveMean::fit(&split.train_of(&y));
    println!(
        "\nlinear model: RMSE {:.2}, R² {:.2}",
        rmse(&y_test, &pred),
        r2_score(&y_test, &pred)
    );
    println!(
        "naive baseline: RMSE {:.2}",
        rmse(&y_test, &naive.predict_many(y_test.len()))
    );
    println!("(paper, Figure 7: linear RMSE 2.8 vs naive 6.4, R² 0.92)");
    Ok(())
}
