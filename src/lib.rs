//! # voltmargin
//!
//! A comprehensive reproduction of *"Harnessing Voltage Margins for Energy
//! Efficiency in Multicore CPUs"* (Papadimitriou et al., MICRO-50 2017) as a
//! Rust workspace: a behavioural X-Gene 2 class chip simulator, SPEC-like
//! workload kernels, the automated voltage-margin characterization framework
//! (severity function, regions of operation), linear-regression prediction
//! and energy/performance tradeoff analysis.
//!
//! This umbrella crate re-exports every sub-crate under a stable name:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`ecc`] | `margins-ecc` | parity + SECDED(72,64) codecs |
//! | [`sim`] | `margins-sim` | the simulated micro-server substrate |
//! | [`workloads`] | `margins-workloads` | SPEC-like kernels + self-tests |
//! | [`characterize`] | `margins-core` | the characterization framework |
//! | [`predict`] | `margins-predict` | OLS / RFE / metrics |
//! | [`energy`] | `margins-energy` | power model, governor, tradeoffs |
//! | [`trace`] | `margins-trace` | campaign telemetry: events, metrics, sinks |
//! | [`fleet`] | `margins-fleet` | fleet characterization daemon + wire protocol |
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for an end-to-end campaign; the shortest
//! possible tour is:
//!
//! ```
//! use voltmargin::sim::{ChipSpec, Corner};
//!
//! let spec = ChipSpec::new(Corner::Ttt, 1);
//! assert_eq!(spec.corner(), Corner::Ttt);
//! ```

#![forbid(unsafe_code)]

pub use margins_core as characterize;
pub use margins_ecc as ecc;
pub use margins_energy as energy;
pub use margins_fleet as fleet;
pub use margins_predict as predict;
pub use margins_sim as sim;
pub use margins_trace as trace;
pub use margins_workloads as workloads;
