//! The `voltmargin` command-line tool: characterize a simulated chip,
//! profile workloads, and plan undervolted operating points — the workflow
//! a system integrator would run against real silicon, end to end.
//!
//! ```text
//! voltmargin characterize --chip ttt --benchmarks bwaves,mcf --cores 0,4 \
//!     --iterations 10 --out-dir ./out
//! voltmargin profile --chip ttt --benchmarks bwaves,mcf --core 0
//! voltmargin govern --chip ttt --tasks bwaves,leslie3d,milc,namd --max-loss 0.25
//! voltmargin serve --addr 127.0.0.1:4750 --workers 4 --cache fleet-cache.jsonl
//! voltmargin watch --addr 127.0.0.1:4750 --client lab --job 0
//! voltmargin list-benchmarks
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;

use voltmargin::characterize::cache::CampaignCache;
use voltmargin::characterize::config::{CampaignConfig, SweptRail};
use voltmargin::characterize::exec::{
    CacheHandle, CampaignExecutor, ExecContext, SerialExecutor, ThreadPoolExecutor,
};
use voltmargin::characterize::regions::analyze;
use voltmargin::characterize::report;
use voltmargin::characterize::runner::{profile, Campaign};
use voltmargin::characterize::search::SearchStrategy;
use voltmargin::characterize::severity::SeverityWeights;
use voltmargin::energy::schedule::Scheduler;
use voltmargin::energy::tradeoff::pareto_curve;
use voltmargin::energy::{Governor, Policy, VminTable};
use voltmargin::sim::{ChipSpec, CoreId, Corner, Millivolts, PmuEvent};
use voltmargin::trace::{
    EventBuffer, JsonlSink, MetricsRegistry, ProgressSink, Sink, StreamFinalizer,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
usage: voltmargin <command> [options]

commands:
  characterize   sweep the PMD (or SoC) rail and print/export regions
  profile        run benchmarks at nominal and print key PMU counters
  govern         plan undervolted operating points for a task set
  serve          run the fleet characterization daemon (line-delimited
                 JSON protocol: submit/status/cancel/results/shutdown,
                 plus subscribe/unsubscribe/health/metrics)
  watch          subscribe to a fleet job's live event stream and print
                 one line per event; optionally reassemble the job's
                 trace from the streamed per-chip payloads
  cache compact FILE   rewrite a campaign-cache JSONL file in canonical
                       form, dropping superseded duplicate entries
  list-benchmarks      list characterizable workloads
  help                 print this usage text

common options:
  --chip ttt|tff|tss        chip corner (default ttt)
  --serial N                chip serial (default by corner: 0/1/2)
  --benchmarks a,b,c        benchmark names (see list-benchmarks)
  --cores 0,4               target cores (default: all eight)
  --iterations N            runs per voltage step (default 10)
  --start MV --floor MV     sweep bounds (default 930 → 840)
  --rail pmd|soc            which rail to sweep (default pmd)
  --threads N               worker threads (default 8)
  --executor serial|pool    (characterize) campaign executor (default pool);
                            both produce byte-identical traces and results
  --out-dir DIR             also write runs/regions/severity CSV files
  --tasks a,b,c             (govern) workloads to schedule
  --max-loss F              (govern) performance-loss budget, e.g. 0.25
  --seed N                  campaign seed (default 3405691582)
  --search STRATEGY         (characterize) exhaustive|bisection|warm-start
                            (default exhaustive; adaptive strategies probe a
                            subset of the grid and report identical regions)
  --cache FILE              (characterize) persistent campaign cache (JSONL);
                            characterized points are replayed, fresh results
                            are appended after the campaign
  --trace FILE              write the deterministic JSONL telemetry stream
  --metrics-out FILE        write the OpenMetrics text exposition of the
                            campaign metrics registry (deterministic)
  --progress                (characterize) live sweep progress on stderr
  --profile                 (characterize) attribute work units to pipeline
                            phases; emits deterministic ProfileSample /
                            ProfilePhase records into the trace stream
  --profile-timing FILE     (characterize) write a wall-clock timing sidecar;
                            host time never enters traces, CSVs or metrics
  --addr HOST:PORT          (serve) bind address (default 127.0.0.1:4750;
                            port 0 picks a free port — the chosen address is
                            printed as `listening on ADDR` on stdout)
  --workers N               (serve) scheduler worker threads (default 4);
                            serve also honours --cache (shared campaign
                            cache, loaded at start, saved at shutdown) and
                            --out-dir (per-client job artifacts)
  --subscriber-queue N      (serve) bound on each subscriber's event queue
                            (default 1024); slow consumers overflowing it
                            lose events (reported via a `lagged` frame)
                            instead of blocking the scheduler
  --client NAME             (watch) job owner, as given to the submitter
  --job N                   (watch) job id printed by the submitter
  --trace-out FILE          (watch) after the terminal event, reassemble
                            the job trace from the streamed per-chip
                            payloads and write it as JSONL";

fn run(args: &[String]) -> Result<(), String> {
    // `cache` takes a positional subcommand, not --flags; dispatch it
    // before the flag parser sees the arguments.
    if args.first().map(String::as_str) == Some("cache") {
        return cache_cmd(&args[1..]);
    }
    let mut opts = Options::parse(args)?;
    match opts.command.as_str() {
        "characterize" => characterize(&mut opts),
        "profile" => profile_cmd(&mut opts),
        "govern" => govern(&mut opts),
        "serve" => serve_cmd(&opts),
        "watch" => watch_cmd(&opts),
        "help" => {
            println!("{USAGE}");
            Ok(())
        }
        "list-benchmarks" => {
            for name in voltmargin::workloads::suite::ALL_NAMES {
                let train = voltmargin::workloads::suite::TRAIN_DATASET_NAMES.contains(&name);
                println!("{name}{}", if train { "  (ref, train)" } else { "  (ref)" });
            }
            println!("selftest-alu  selftest-fpu  selftest-l1d  selftest-l2  selftest-l3");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

/// `voltmargin cache <subcommand>`: maintenance operations on persistent
/// campaign-cache files.
fn cache_cmd(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("compact") => {
            let path = args.get(1).ok_or("cache compact needs a cache file path")?;
            if args.len() > 2 {
                return Err("cache compact takes exactly one file path".into());
            }
            let stats = CampaignCache::compact_file(path).map_err(|e| e.to_string())?;
            if stats.rewritten {
                println!(
                    "compacted {path}: {} lines -> {} ({} superseded line(s) dropped)",
                    stats.lines_before,
                    stats.lines_after,
                    stats.dropped()
                );
            } else {
                println!("{path} already compact ({} lines)", stats.lines_after);
            }
            Ok(())
        }
        Some(other) => Err(format!("unknown cache subcommand '{other}' (compact)")),
        None => Err("cache needs a subcommand (compact)".into()),
    }
}

/// `voltmargin serve`: run the fleet characterization daemon until a
/// client sends a `shutdown` frame.
fn serve_cmd(opts: &Options) -> Result<(), String> {
    let config = voltmargin::fleet::ServeConfig {
        addr: opts
            .flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:4750".to_owned()),
        workers: opts.parse_num("workers", 4usize)?,
        cache_path: opts.flags.get("cache").cloned(),
        out_dir: opts.flags.get("out-dir").cloned(),
        subscriber_queue: opts.parse_num("subscriber-queue", 0usize)?,
    };
    voltmargin::fleet::serve(&config).map_err(|e| e.to_string())
}

/// `voltmargin watch`: subscribe to a job's event stream and narrate it.
///
/// Prints one human line per event to stdout, skips unknown event kinds
/// (forward compatibility with newer daemons), and — with `--trace-out` —
/// reassembles the job's canonical trace from the streamed per-chip
/// payloads once the terminal event arrives. Exits non-zero when the
/// watched job failed.
fn watch_cmd(opts: &Options) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    use voltmargin::fleet::{FleetEvent, Request, Response};

    let addr = opts
        .flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:4750".to_owned());
    let client = opts
        .flags
        .get("client")
        .cloned()
        .ok_or("watch: --client is required")?;
    let job: u64 = opts
        .flags
        .get("job")
        .ok_or("watch: --job is required")?
        .parse()
        .map_err(|_| "watch: --job: bad value".to_owned())?;
    let trace_out = opts.flags.get("trace-out").cloned();

    let stream = std::net::TcpStream::connect(&addr).map_err(|e| format!("watch: {addr}: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("watch: {addr}: {e}"))?;
    writeln!(
        writer,
        "{}",
        Request::Subscribe {
            client: client.clone(),
            job,
        }
        .to_line()
    )
    .map_err(|e| format!("watch: {addr}: {e}"))?;
    writer.flush().map_err(|e| format!("watch: {addr}: {e}"))?;

    // Per-chip sealed streams, keyed by canonical chip index; the
    // terminal event triggers the canonical re-seal, which is
    // byte-identical to the daemon's artifact merge.
    let mut chip_traces: std::collections::BTreeMap<u32, Vec<voltmargin::trace::TraceRecord>> =
        std::collections::BTreeMap::new();
    let mut failed = false;
    let mut terminal = false;
    for line in BufReader::new(stream).lines() {
        let line = line.map_err(|e| format!("watch: {addr}: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let response = Response::parse_line(&line).map_err(|e| format!("watch: {e}"))?;
        match response {
            Response::Subscribed { job } => eprintln!("watching job {job} on {addr}"),
            Response::Error { code, message, .. } => {
                return Err(format!("watch: daemon error [{code}]: {message}"));
            }
            Response::Event(event) => {
                if let Some(line) = narrate(&event) {
                    println!("{line}");
                }
                match event {
                    FleetEvent::ChipFinished { chip, trace, .. } => {
                        let records = voltmargin::trace::read_jsonl(&trace)
                            .map_err(|e| format!("watch: chip {chip} trace: {e}"))?;
                        chip_traces.insert(chip, records);
                    }
                    FleetEvent::JobFinished { .. } | FleetEvent::JobCancelled { .. } => {
                        terminal = true;
                    }
                    FleetEvent::JobFailed { .. } => {
                        failed = true;
                        terminal = true;
                    }
                    _ => {}
                }
                if terminal {
                    break;
                }
            }
            other => return Err(format!("watch: unexpected frame {other:?}")),
        }
    }
    if !terminal {
        return Err("watch: connection closed before the job reached a terminal event".into());
    }
    if let Some(path) = &trace_out {
        let records =
            voltmargin::trace::merge_streams(chip_traces.values().map(std::vec::Vec::as_slice));
        let mut body = String::new();
        for record in &records {
            let line = record
                .to_json_line()
                .map_err(|e| format!("watch: --trace-out: {e}"))?;
            body.push_str(&line);
            body.push('\n');
        }
        std::fs::write(path, &body).map_err(|e| format!("watch: --trace-out {path}: {e}"))?;
        eprintln!(
            "wrote {} reassembled trace records to {path}",
            records.len()
        );
    }
    if failed {
        // The job's failure is already narrated; distinguish it from
        // watch's own errors (exit 2) without reprinting usage.
        std::process::exit(1);
    }
    Ok(())
}

/// One human-readable line per fleet event; `None` for kinds this client
/// does not know (skipped, per the protocol's forward-compatibility
/// contract).
fn narrate(event: &voltmargin::fleet::FleetEvent) -> Option<String> {
    use voltmargin::fleet::FleetEvent;
    Some(match event {
        FleetEvent::JobQueued { job, client, chips } => {
            format!("job {job} queued by {client}: {chips} chip(s)")
        }
        FleetEvent::JobStarted { job } => format!("job {job} started"),
        FleetEvent::ChipStarted { chip, chip_id, .. } => {
            format!("chip {chip} ({chip_id}) started")
        }
        FleetEvent::SweepProgress {
            chip,
            program,
            dataset,
            core,
            runs,
            ..
        } => format!("chip {chip} swept {program}/{dataset} core{core}: {runs} run(s)"),
        FleetEvent::ChipFinished {
            chip,
            chip_id,
            runs,
            power_cycles,
            vmin_mv,
            severity_sum,
            cache_hits,
            cache_lookups,
            ..
        } => {
            let vmin = vmin_mv.map_or_else(|| "censored".to_owned(), |mv| format!("{mv}mV"));
            format!(
                "chip {chip} ({chip_id}) finished: vmin={vmin} runs={runs} \
                 power_cycles={power_cycles} severity={severity_sum} \
                 cache={cache_hits}/{cache_lookups}"
            )
        }
        FleetEvent::JobFinished {
            job,
            chips,
            runs,
            power_cycles,
        } => format!("job {job} finished: chips={chips} runs={runs} power_cycles={power_cycles}"),
        FleetEvent::JobCancelled { job, done, total } => {
            format!("job {job} cancelled: {done}/{total} chip(s) completed")
        }
        FleetEvent::JobFailed { job, message } => format!("job {job} failed: {message}"),
        FleetEvent::Lagged { job, dropped } => {
            format!("job {job} lagged: {dropped} event(s) dropped")
        }
        FleetEvent::Unknown { .. } => return None,
    })
}

struct Options {
    command: String,
    flags: BTreeMap<String, String>,
}

impl Options {
    /// Flags that take no value argument.
    const BOOLEAN_FLAGS: [&'static str; 2] = ["progress", "profile"];

    fn parse(args: &[String]) -> Result<Self, String> {
        let mut it = args.iter();
        let command = it.next().ok_or("missing command")?.clone();
        let mut flags = BTreeMap::new();
        while let Some(flag) = it.next() {
            let key = flag
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got '{flag}'"))?;
            if Self::BOOLEAN_FLAGS.contains(&key) {
                flags.insert(key.to_owned(), String::new());
                continue;
            }
            let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            flags.insert(key.to_owned(), value.clone());
        }
        Ok(Options { command, flags })
    }

    fn chip(&self) -> Result<ChipSpec, String> {
        let corner = match self.flags.get("chip").map(String::as_str).unwrap_or("ttt") {
            "ttt" => Corner::Ttt,
            "tff" => Corner::Tff,
            "tss" => Corner::Tss,
            other => return Err(format!("unknown chip '{other}' (ttt|tff|tss)")),
        };
        let default_serial = match corner {
            Corner::Ttt => 0,
            Corner::Tff => 1,
            Corner::Tss => 2,
        };
        let serial = self.parse_num("serial", default_serial)?;
        Ok(ChipSpec::new(corner, serial))
    }

    fn parse_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad value '{v}'")),
        }
    }

    fn list(&self, key: &str) -> Option<Vec<String>> {
        self.flags
            .get(key)
            .map(|v| v.split(',').map(str::trim).map(str::to_owned).collect())
    }

    fn cores(&self) -> Result<Vec<CoreId>, String> {
        match self.list("cores") {
            None => Ok(CoreId::all().collect()),
            Some(ids) => ids
                .iter()
                .map(|s| {
                    s.parse::<u8>()
                        .map_err(|_| format!("--cores: bad core '{s}'"))
                        .and_then(|i| {
                            if usize::from(i) < voltmargin::sim::topology::NUM_CORES {
                                Ok(CoreId::new(i))
                            } else {
                                Err(format!("--cores: core {i} out of range"))
                            }
                        })
                })
                .collect(),
        }
    }

    fn benchmarks(&self) -> Result<Vec<String>, String> {
        self.list("benchmarks")
            .ok_or_else(|| "--benchmarks is required".to_owned())
    }
}

fn build_config(opts: &Options) -> Result<CampaignConfig, String> {
    let rail = match opts.flags.get("rail").map(String::as_str).unwrap_or("pmd") {
        "pmd" => SweptRail::Pmd,
        "soc" => SweptRail::PcpSoc,
        other => return Err(format!("unknown rail '{other}' (pmd|soc)")),
    };
    let default_start = if rail == SweptRail::Pmd { 930 } else { 900 };
    let default_floor = if rail == SweptRail::Pmd { 840 } else { 710 };
    let search = match opts.flags.get("search") {
        None => SearchStrategy::Exhaustive,
        Some(s) => SearchStrategy::parse(s).ok_or_else(|| {
            format!("--search: unknown strategy '{s}' (exhaustive|bisection|warm-start)")
        })?,
    };
    CampaignConfig::builder()
        .benchmarks(opts.benchmarks()?)
        .cores(opts.cores()?)
        .iterations(opts.parse_num("iterations", 10u32)?)
        .start_voltage(Millivolts::new(opts.parse_num("start", default_start)?))
        .floor_voltage(Millivolts::new(opts.parse_num("floor", default_floor)?))
        .rail(rail)
        .seed(opts.parse_num("seed", 0xCAFE_BABEu64)?)
        .search(search)
        .profile(opts.flags.contains_key("profile"))
        .build()
        .map_err(|e| e.to_string())
}

fn characterize(opts: &mut Options) -> Result<(), String> {
    let spec = opts.chip()?;
    let config = build_config(opts)?;
    let threads = opts.parse_num("threads", 8usize)?;
    eprintln!(
        "characterizing {spec}: {} benchmarks × {} cores × {} steps × {} iterations…",
        config.benchmarks.len(),
        config.cores.len(),
        config.step_count(),
        config.iterations
    );
    let trace_path = opts.flags.get("trace").cloned();
    let metrics_out = opts.flags.get("metrics-out").cloned();
    let progress = opts.flags.contains_key("progress");
    let profiling = opts.flags.contains_key("profile");
    let timing_path = opts.flags.get("profile-timing").cloned();
    // Profiling emits its records into the trace stream, so it implies an
    // observed (traced) execution even without an explicit sink.
    let traced = trace_path.is_some() || progress || metrics_out.is_some() || profiling;

    let mut jsonl = match &trace_path {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("--trace {path}: {e}"))?;
            Some(JsonlSink::new(std::io::BufWriter::new(file)))
        }
        None => None,
    };
    let mut progress_sink = progress.then(|| ProgressSink::new(std::io::stderr()));

    let cache_path = opts.flags.get("cache").cloned();
    let mut cache = match &cache_path {
        Some(path) => {
            let loaded = CampaignCache::load(path).map_err(|e| e.to_string())?;
            if !loaded.is_empty() {
                eprintln!(
                    "campaign cache: {} entries loaded from {path}",
                    loaded.len()
                );
            }
            Some(loaded)
        }
        None => None,
    };

    // Both executors drive the identical shard-partition → reorder-merge →
    // finalize pipeline, so the choice never shows in any output.
    let executor: Box<dyn CampaignExecutor> = match opts
        .flags
        .get("executor")
        .map(String::as_str)
        .unwrap_or("pool")
    {
        "serial" => Box::new(SerialExecutor),
        "pool" => Box::new(ThreadPoolExecutor::new(threads).map_err(|e| e.to_string())?),
        other => return Err(format!("unknown executor '{other}' (serial|pool)")),
    };

    let campaign = Campaign::new(spec, config);
    // The timing plane is wall-clock by definition and lives only in its
    // opt-in sidecar file: it never reaches the JSONL stream, the CSV
    // exports or the OpenMetrics exposition, which stay deterministic.
    let campaign_started = timing_path.as_ref().map(|_| std::time::Instant::now());
    let mut metrics = MetricsRegistry::new();
    let outcome = {
        // With no sink and no registry attached, events are never even
        // constructed; results are identical either way.
        let mut sinks: Vec<&mut dyn Sink> = Vec::new();
        if let Some(sink) = progress_sink.as_mut() {
            sinks.push(sink);
        }
        if let Some(sink) = jsonl.as_mut() {
            sinks.push(sink);
        }
        campaign
            .run(
                &*executor,
                ExecContext {
                    sinks: &mut sinks,
                    cache: cache.as_mut().map(CacheHandle::Owned),
                    priors: None,
                    metrics: traced.then_some(&mut metrics),
                    profile_out: None,
                },
            )
            .map_err(|e| e.to_string())?
    };
    let campaign_wall_s = campaign_started.map(|t| t.elapsed().as_secs_f64());
    let result = analyze(&outcome, &SeverityWeights::paper());
    if let (Some(path), Some(campaign_wall_s)) = (&timing_path, campaign_wall_s) {
        write_timing_sidecar(path, campaign_wall_s, &outcome)?;
        eprintln!("wrote wall-clock timing sidecar to {path}");
    }

    // Region bands per benchmark.
    let mut names: Vec<String> = result.summaries.iter().map(|s| s.program.clone()).collect();
    names.dedup();
    for name in names {
        print!("{}", report::region_band_text(&result, &name));
    }
    println!(
        "watchdog power cycles: {}   total runs: {}",
        outcome.watchdog_power_cycles,
        outcome.runs.len()
    );

    if let Some(dir) = opts.flags.get("out-dir") {
        std::fs::create_dir_all(dir).map_err(|e| format!("--out-dir: {e}"))?;
        let write = |file: &str, data: String| {
            std::fs::write(format!("{dir}/{file}"), data).map_err(|e| format!("{file}: {e}"))
        };
        write("runs.csv", report::runs_csv(&outcome))?;
        write("regions.csv", report::regions_csv(&result))?;
        write("severity.csv", report::severity_csv(&result))?;
        eprintln!("wrote {dir}/runs.csv, regions.csv, severity.csv");
    }

    if let (Some(cache), Some(path)) = (&cache, &cache_path) {
        cache.save(path).map_err(|e| e.to_string())?;
        eprintln!("campaign cache: {} entries saved to {path}", cache.len());
    }

    if let (Some(sink), Some(path)) = (jsonl, &trace_path) {
        let lines = sink.lines();
        sink.into_inner()
            .map_err(|e| format!("--trace {path}: {e}"))?;
        eprintln!("wrote {lines} trace records to {path}");
    }
    if let Some(path) = &metrics_out {
        std::fs::write(path, metrics.to_openmetrics())
            .map_err(|e| format!("--metrics-out {path}: {e}"))?;
        eprintln!("wrote campaign metrics to {path}");
    }
    if traced {
        eprintln!("campaign metrics:");
        for line in metrics.render().lines() {
            eprintln!("  {line}");
        }
    }
    Ok(())
}

/// Writes the opt-in wall-clock timing sidecar.
///
/// This is the only place host time is allowed to land on disk; the
/// deterministic outputs (JSONL traces, CSVs, OpenMetrics) never carry
/// it, so they stay byte-identical across reruns while the sidecar is
/// free to vary with the machine.
fn write_timing_sidecar(
    path: &str,
    campaign_wall_s: f64,
    outcome: &voltmargin::characterize::runner::CampaignOutcome,
) -> Result<(), String> {
    let runs = outcome.runs.len();
    let runs_per_s = if campaign_wall_s > 0.0 {
        runs as f64 / campaign_wall_s
    } else {
        0.0
    };
    let body = format!(
        "# voltmargin wall-clock timing sidecar\n\
         # Host-time measurements only; never part of deterministic outputs.\n\
         campaign_wall_s={campaign_wall_s:.6}\n\
         runs={runs}\n\
         runs_per_wall_s={runs_per_s:.3}\n"
    );
    std::fs::write(path, body).map_err(|e| format!("--profile-timing {path}: {e}"))
}

fn profile_cmd(opts: &mut Options) -> Result<(), String> {
    let spec = opts.chip()?;
    let core = opts
        .cores()?
        .first()
        .copied()
        .ok_or("--cores must name at least one core")?;
    let benchmarks: Vec<_> = opts
        .benchmarks()?
        .into_iter()
        .map(|name| voltmargin::characterize::config::BenchmarkRef {
            name,
            dataset: voltmargin::workloads::Dataset::Ref,
        })
        .collect();
    let profiles = profile(spec, &benchmarks, core).map_err(|e| e.to_string())?;
    let shown = [
        PmuEvent::InstRetired,
        PmuEvent::CpuCycles,
        PmuEvent::FpInstRetired,
        PmuEvent::FpDivRetired,
        PmuEvent::ReadMemAccess,
        PmuEvent::L2DCacheRefill,
        PmuEvent::BrMisPred,
        PmuEvent::DispatchStallCycles,
        PmuEvent::ExcTaken,
    ];
    print!("{:<12}{:>10}", "benchmark", "golden");
    for e in shown {
        print!("{:>22}", e.label());
    }
    println!();
    for p in &profiles {
        print!("{:<12}{:>10.10}", p.name, p.golden.to_string());
        for e in shown {
            print!("{:>22}", p.counters.get(e));
        }
        println!();
    }
    Ok(())
}

fn govern(opts: &mut Options) -> Result<(), String> {
    let spec = opts.chip()?;
    let tasks = opts
        .list("tasks")
        .ok_or_else(|| "--tasks is required".to_owned())?;
    let max_loss: f64 = opts.parse_num("max-loss", 0.0)?;
    let threads = opts.parse_num("threads", 8usize)?;

    // Characterize exactly the requested tasks on all cores.
    let config = CampaignConfig::builder()
        .benchmarks(tasks.clone())
        .cores(CoreId::all())
        .iterations(opts.parse_num("iterations", 5u32)?)
        .start_voltage(Millivolts::new(opts.parse_num("start", 935)?))
        .floor_voltage(Millivolts::new(opts.parse_num("floor", 845)?))
        .seed(opts.parse_num("seed", 0x60_0Du64)?)
        .build()
        .map_err(|e| e.to_string())?;
    eprintln!("characterizing {spec} for {} tasks…", tasks.len());
    let outcome = Campaign::new(spec, config).execute_parallel(threads);
    let table = VminTable::from_characterization(&analyze(&outcome, &SeverityWeights::paper()));

    let assignments = Scheduler::new()
        .assign_robust_first(&tasks, &table)
        .ok_or("characterization did not cover every task")?;
    println!("robust-first schedule:");
    for a in &assignments {
        let vmin = table
            .get(a.core, &a.workload)
            .map_or_else(|| "-".into(), |v| v.to_string());
        println!(
            "  {:<12} → core{} (Vmin {vmin})",
            a.workload,
            a.core.index()
        );
    }

    println!("\nstaircase:");
    for p in pareto_curve(&assignments, &table).ok_or("incomplete table")? {
        println!(
            "  {:<24}{:>7}  power {:>5.1}%  perf {:>5.1}%  savings {:>5.1}%",
            p.label,
            p.voltage.to_string(),
            p.relative_power * 100.0,
            p.relative_performance * 100.0,
            p.energy_savings * 100.0
        );
    }

    let governor = Governor::new(
        table,
        Policy {
            guardband_steps: 1,
            max_performance_loss: max_loss,
        },
    );
    let trace_path = opts.flags.get("trace").cloned();
    let metrics_out = opts.flags.get("metrics-out").cloned();
    let decision = if trace_path.is_some() || metrics_out.is_some() {
        let buffer = EventBuffer::new();
        let decision = governor.decide_observed(&assignments, &buffer);
        // Finalize once; the JSONL stream and the metrics registry both
        // consume the same sealed records.
        let mut finalizer = StreamFinalizer::new();
        let records: Vec<_> = buffer
            .drain()
            .into_iter()
            .map(|event| finalizer.seal(event))
            .collect();
        if let Some(path) = &trace_path {
            let file = std::fs::File::create(path).map_err(|e| format!("--trace {path}: {e}"))?;
            let mut sink = JsonlSink::new(std::io::BufWriter::new(file));
            for record in &records {
                sink.emit(record);
            }
            sink.finish();
            let lines = sink.lines();
            sink.into_inner()
                .map_err(|e| format!("--trace {path}: {e}"))?;
            eprintln!("wrote {lines} trace records to {path}");
        }
        if let Some(path) = &metrics_out {
            let mut registry = MetricsRegistry::new();
            for record in &records {
                registry.emit(record);
            }
            registry.finish();
            std::fs::write(path, registry.to_openmetrics())
                .map_err(|e| format!("--metrics-out {path}: {e}"))?;
            eprintln!("wrote governor metrics to {path}");
        }
        decision
    } else {
        governor.decide(&assignments)
    };
    let decision = decision.ok_or("governor could not produce a decision")?;
    println!(
        "\ndecision (≤{:.0}% loss, 1-step guardband): {} @ {:?} MHz → {:.1}% savings",
        max_loss * 100.0,
        decision.voltage,
        decision.freqs.map(voltmargin::sim::Megahertz::get),
        decision.energy_savings * 100.0
    );
    Ok(())
}
