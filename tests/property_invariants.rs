//! Property-based invariants across the public API.
//!
//! The campaign-cache properties live in plain helper functions exercised
//! twice: by deterministic example tests (always run) and by proptest
//! wrappers drawing arbitrary inputs.

use proptest::prelude::*;
use voltmargin::characterize::cache::{
    CacheError, CachedRun, CampaignCache, GoldenEntry, GoldenKey, StepEntry, StepKey,
};
use voltmargin::characterize::config::CampaignConfig;
use voltmargin::characterize::effect::{Effect, EffectSet};
use voltmargin::characterize::regions::RegionKind;
use voltmargin::characterize::runner::Campaign;
use voltmargin::characterize::search::SearchStrategy;
use voltmargin::characterize::severity::SeverityWeights;
use voltmargin::predict::{r2_score, train_test_split, LinearRegression};
use voltmargin::sim::{ChipSpec, CoreId, Corner, Millivolts};

fn arb_effect() -> impl Strategy<Value = Effect> {
    prop::sample::select(vec![
        Effect::No,
        Effect::Sdc,
        Effect::Ce,
        Effect::Ue,
        Effect::Ac,
        Effect::Sc,
    ])
}

fn arb_effect_set() -> impl Strategy<Value = EffectSet> {
    prop::collection::vec(arb_effect(), 0..4).prop_map(|v| v.into_iter().collect())
}

proptest! {
    #[test]
    fn severity_is_bounded_by_weights(runs in prop::collection::vec(arb_effect_set(), 1..20)) {
        let w = SeverityWeights::paper();
        let s = w.severity(&runs).value();
        prop_assert!(s >= 0.0);
        prop_assert!(s <= w.max_severity());
    }

    #[test]
    fn severity_never_decreases_when_a_run_gets_worse(
        mut runs in prop::collection::vec(arb_effect_set(), 1..15),
        idx in 0usize..15,
        extra in arb_effect(),
    ) {
        let w = SeverityWeights::paper();
        let before = w.severity(&runs).value();
        let i = idx % runs.len();
        let mut worse = runs[i];
        worse.insert(extra);
        runs[i] = worse;
        let after = w.severity(&runs).value();
        prop_assert!(after + 1e-12 >= before);
    }

    #[test]
    fn severity_is_permutation_invariant(runs in prop::collection::vec(arb_effect_set(), 1..15)) {
        let w = SeverityWeights::paper();
        let forward = w.severity(&runs).value();
        let mut reversed = runs.clone();
        reversed.reverse();
        prop_assert!((w.severity(&reversed).value() - forward).abs() < 1e-12);
    }

    #[test]
    fn region_classification_is_monotone(runs in prop::collection::vec(arb_effect_set(), 1..12)) {
        // Adding an SC run always yields Crash; adding any abnormal run
        // never moves the region towards Safe.
        let before = RegionKind::of_runs(runs.iter());
        let mut with_sc = runs.clone();
        with_sc.push(EffectSet::of(Effect::Sc));
        prop_assert_eq!(RegionKind::of_runs(with_sc.iter()), RegionKind::Crash);
        let mut with_sdc = runs;
        with_sdc.push(EffectSet::of(Effect::Sdc));
        let after = RegionKind::of_runs(with_sdc.iter());
        let holds = match (before, after) {
            (RegionKind::Crash, x) => x == RegionKind::Crash,
            (_, RegionKind::Safe) => false,
            _ => true,
        };
        prop_assert!(holds);
    }

    #[test]
    fn effect_set_union_is_commutative_and_idempotent(a in arb_effect_set(), b in arb_effect_set()) {
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert_eq!(a.union(a), a);
        // Union only grows.
        for e in a.iter() {
            prop_assert!(a.union(b).contains(e));
        }
    }

    #[test]
    fn millivolt_step_arithmetic_roundtrips(base in 100u32..2000, steps in 0u32..50) {
        let v = Millivolts::new(base * 5);
        prop_assert_eq!(v.down_steps(steps).up_steps(steps), v);
        prop_assert!(v.down_steps(steps) <= v);
    }

    #[test]
    fn split_is_always_a_partition(n in 2usize..200, seed in any::<u64>()) {
        let s = train_test_split(n, 0.8, seed);
        prop_assert!(!s.train.is_empty());
        prop_assert!(!s.test.is_empty());
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn ols_training_fit_is_at_least_as_good_as_the_mean(
        rows in prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 3), 8..40),
        coefs in prop::collection::vec(-5.0f64..5.0, 3),
        noise_seed in any::<u64>(),
    ) {
        // On its own training data, ridge-OLS explains at least (almost) as
        // much variance as the constant mean predictor.
        let mut lcg = noise_seed | 1;
        let mut noise = || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((lcg >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let y: Vec<f64> = rows
            .iter()
            .map(|r| r.iter().zip(&coefs).map(|(x, c)| x * c).sum::<f64>() + noise())
            .collect();
        let model = LinearRegression::fit(&rows, &y).unwrap();
        let pred = model.predict_many(&rows);
        prop_assert!(r2_score(&y, &pred) >= -1e-6);
    }
}

/// A deterministic campaign cache with `n` step entries (and a golden for
/// every other one), all fields mixed from `salt` so nearby salts produce
/// structurally different keys, runs and float payloads.
fn sample_cache(n: usize, salt: u64) -> CampaignCache {
    let effects = [
        EffectSet::new(),
        EffectSet::of(Effect::Sdc),
        EffectSet::of(Effect::Ce),
        EffectSet::of(Effect::Sc),
        EffectSet::of(Effect::Ue).union(EffectSet::of(Effect::Ac)),
    ];
    let programs = ["bwaves", "namd", "mcf"];
    let mut cache = CampaignCache::new();
    for i in 0..n {
        let k = salt
            .wrapping_add(i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let runs = (0..(k % 4))
            .map(|j| CachedRun {
                effects: effects[((k >> j) % effects.len() as u64) as usize],
                corrected_errors: k % 17,
                uncorrected_errors: k % 5,
                runtime_s: (k % 1000) as f64 * 1e-4,
                energy_j: (k % 777) as f64 * 1e-3,
            })
            .collect();
        cache.insert_step(
            StepKey {
                chip: format!("TTT#{}", k % 3),
                rail: if k & 1 == 0 { "vdd" } else { "soc" }.to_owned(),
                target_mhz: 2400,
                parked_mhz: 1200 + (k % 7) as u32,
                enhancements: (k >> 3) as u8 & 0x7,
                seed: k,
                iterations: 1 + (k % 9) as u32,
                program: programs[(k % 3) as usize].to_owned(),
                dataset: if k & 2 == 0 { "ref" } else { "train" }.to_owned(),
                core: (k % 8) as u8,
                mv: 830 + 5 * (k % 24) as u32,
            },
            StepEntry {
                runs,
                power_cycles: (k % 3) as u32,
            },
        );
        if i % 2 == 0 {
            cache.insert_golden(
                GoldenKey {
                    chip: format!("TFF#{}", k % 2),
                    target_mhz: 2400,
                    parked_mhz: 1200,
                    enhancements: (k % 8) as u8,
                    seed: k,
                    program: programs[(k % 3) as usize].to_owned(),
                    dataset: "ref".to_owned(),
                    core: (k % 8) as u8,
                },
                GoldenEntry {
                    digest: k ^ 0xABCD,
                    runtime_s: (k % 500) as f64 * 1e-3,
                },
            );
        }
    }
    cache
}

/// A cache must survive serialize → parse → serialize with byte-identical
/// JSONL and entry-identical contents.
fn check_roundtrip(cache: &CampaignCache) {
    let text = cache.to_jsonl();
    let reparsed = CampaignCache::from_jsonl(&text).expect("serialized cache must reparse");
    assert_eq!(reparsed.len(), cache.len());
    assert_eq!(
        reparsed.to_jsonl(),
        text,
        "JSONL encoding must be byte-deterministic across a round-trip"
    );
    for (key, entry) in cache.steps() {
        assert_eq!(
            reparsed.step(key),
            Some(entry),
            "step entry must survive the round-trip"
        );
    }
}

/// Parsing mangled cache text must yield `Ok` or a typed parse error —
/// never a panic, never an I/O error class.
fn expect_typed_parse(input: &str) {
    match CampaignCache::from_jsonl(input) {
        Ok(_) => {}
        Err(CacheError::Corrupt { line, .. }) => assert!(line >= 1, "corrupt lines are 1-based"),
        Err(e) => panic!("parsing returned a non-parse error class: {e}"),
    }
}

/// Truncates the sample cache's JSONL at an arbitrary byte and flips an
/// arbitrary byte; both mutations must parse to `Ok` or `Corrupt`.
fn check_corrupt_no_panic(cut: usize, pos: usize, byte: u8) {
    let text = sample_cache(6, 0xC0FF_EE00).to_jsonl();
    let bytes = text.as_bytes();
    let truncated = String::from_utf8_lossy(&bytes[..cut % (bytes.len() + 1)]).into_owned();
    expect_typed_parse(&truncated);
    let mut flipped = bytes.to_vec();
    let at = pos % flipped.len();
    flipped[at] = byte;
    expect_typed_parse(&String::from_utf8_lossy(&flipped).into_owned());
}

/// A campaign must produce the identical outcome with no cache, with a
/// cold cache being populated, and with a warmed cache replaying — for
/// both the exhaustive sweep and an adaptive search.
fn check_cache_preserves_outcome(seed: u64) {
    let config = |strategy: SearchStrategy| {
        CampaignConfig::builder()
            .benchmarks(["namd"])
            .cores([CoreId::new(4)])
            .iterations(1)
            .start_voltage(Millivolts::new(890))
            .floor_voltage(Millivolts::new(875))
            .seed(seed)
            .search(strategy)
            .build()
            .expect("valid configuration")
    };
    for strategy in [SearchStrategy::Exhaustive, SearchStrategy::Bisection] {
        let plain = Campaign::new(ChipSpec::new(Corner::Ttt, 0), config(strategy)).execute_with(
            1,
            &mut [],
            None,
            None,
        );
        let mut cache = CampaignCache::new();
        let campaign = Campaign::new(ChipSpec::new(Corner::Ttt, 0), config(strategy));
        let cold = campaign.execute_with(1, &mut [], Some(&mut cache), None);
        let warm = campaign.execute_with(1, &mut [], Some(&mut cache), None);
        assert_eq!(
            plain.runs, cold.runs,
            "{strategy}: cold cache changed the runs"
        );
        assert_eq!(plain.goldens, cold.goldens);
        assert_eq!(
            cold.runs, warm.runs,
            "{strategy}: cache replay changed the runs"
        );
        assert_eq!(cold.goldens, warm.goldens);
        assert_eq!(cold.watchdog_power_cycles, warm.watchdog_power_cycles);
        // A cache a real campaign populated must round-trip too.
        check_roundtrip(&cache);
    }
}

#[test]
fn campaign_cache_roundtrip_examples() {
    for (n, salt) in [(0, 1), (1, 0xDEAD), (7, 42), (24, 0x5EED)] {
        check_roundtrip(&sample_cache(n, salt));
    }
}

#[test]
fn corrupted_campaign_caches_fail_without_panicking() {
    assert!(matches!(
        CampaignCache::from_jsonl("not json\n"),
        Err(CacheError::Corrupt { line: 1, .. })
    ));
    for (cut, pos, byte) in [
        (0, 0, b'{'),
        (17, 3, b'}'),
        (usize::MAX, 25, 0xFF),
        (101, 7, b'0'),
    ] {
        check_corrupt_no_panic(cut, pos, byte);
    }
}

#[test]
fn campaign_cache_load_and_save_are_typed() {
    let missing = CampaignCache::load("/nonexistent/voltmargin-cache.jsonl")
        .expect("a missing cache file is an empty cache");
    assert!(missing.is_empty());
    assert!(matches!(
        CampaignCache::load(std::env::temp_dir()),
        Err(CacheError::Io { .. })
    ));
    let path = std::env::temp_dir().join(format!("voltmargin-cache-{}.jsonl", std::process::id()));
    let cache = sample_cache(5, 77);
    cache.save(&path).expect("cache saves");
    let loaded = CampaignCache::load(&path).expect("saved cache loads");
    assert_eq!(loaded.to_jsonl(), cache.to_jsonl());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn cache_lookups_preserve_outcomes_example() {
    check_cache_preserves_outcome(0xBEEF);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cache_jsonl_roundtrip_is_lossless(n in 0usize..24, salt in any::<u64>()) {
        check_roundtrip(&sample_cache(n, salt));
    }

    #[test]
    fn corrupted_caches_fail_typed_never_panic(
        cut in any::<usize>(),
        pos in any::<usize>(),
        byte in any::<u8>(),
    ) {
        check_corrupt_no_panic(cut, pos, byte);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn cache_lookups_never_change_outcomes(seed in any::<u64>()) {
        check_cache_preserves_outcome(seed);
    }
}
