//! Property-based invariants across the public API.

use proptest::prelude::*;
use voltmargin::characterize::effect::{Effect, EffectSet};
use voltmargin::characterize::regions::RegionKind;
use voltmargin::characterize::severity::SeverityWeights;
use voltmargin::predict::{r2_score, train_test_split, LinearRegression};
use voltmargin::sim::Millivolts;

fn arb_effect() -> impl Strategy<Value = Effect> {
    prop::sample::select(vec![
        Effect::No,
        Effect::Sdc,
        Effect::Ce,
        Effect::Ue,
        Effect::Ac,
        Effect::Sc,
    ])
}

fn arb_effect_set() -> impl Strategy<Value = EffectSet> {
    prop::collection::vec(arb_effect(), 0..4).prop_map(|v| v.into_iter().collect())
}

proptest! {
    #[test]
    fn severity_is_bounded_by_weights(runs in prop::collection::vec(arb_effect_set(), 1..20)) {
        let w = SeverityWeights::paper();
        let s = w.severity(&runs).value();
        prop_assert!(s >= 0.0);
        prop_assert!(s <= w.max_severity());
    }

    #[test]
    fn severity_never_decreases_when_a_run_gets_worse(
        mut runs in prop::collection::vec(arb_effect_set(), 1..15),
        idx in 0usize..15,
        extra in arb_effect(),
    ) {
        let w = SeverityWeights::paper();
        let before = w.severity(&runs).value();
        let i = idx % runs.len();
        let mut worse = runs[i];
        worse.insert(extra);
        runs[i] = worse;
        let after = w.severity(&runs).value();
        prop_assert!(after + 1e-12 >= before);
    }

    #[test]
    fn severity_is_permutation_invariant(runs in prop::collection::vec(arb_effect_set(), 1..15)) {
        let w = SeverityWeights::paper();
        let forward = w.severity(&runs).value();
        let mut reversed = runs.clone();
        reversed.reverse();
        prop_assert!((w.severity(&reversed).value() - forward).abs() < 1e-12);
    }

    #[test]
    fn region_classification_is_monotone(runs in prop::collection::vec(arb_effect_set(), 1..12)) {
        // Adding an SC run always yields Crash; adding any abnormal run
        // never moves the region towards Safe.
        let before = RegionKind::of_runs(runs.iter());
        let mut with_sc = runs.clone();
        with_sc.push(EffectSet::of(Effect::Sc));
        prop_assert_eq!(RegionKind::of_runs(with_sc.iter()), RegionKind::Crash);
        let mut with_sdc = runs;
        with_sdc.push(EffectSet::of(Effect::Sdc));
        let after = RegionKind::of_runs(with_sdc.iter());
        let holds = match (before, after) {
            (RegionKind::Crash, x) => x == RegionKind::Crash,
            (_, RegionKind::Safe) => false,
            _ => true,
        };
        prop_assert!(holds);
    }

    #[test]
    fn effect_set_union_is_commutative_and_idempotent(a in arb_effect_set(), b in arb_effect_set()) {
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert_eq!(a.union(a), a);
        // Union only grows.
        for e in a.iter() {
            prop_assert!(a.union(b).contains(e));
        }
    }

    #[test]
    fn millivolt_step_arithmetic_roundtrips(base in 100u32..2000, steps in 0u32..50) {
        let v = Millivolts::new(base * 5);
        prop_assert_eq!(v.down_steps(steps).up_steps(steps), v);
        prop_assert!(v.down_steps(steps) <= v);
    }

    #[test]
    fn split_is_always_a_partition(n in 2usize..200, seed in any::<u64>()) {
        let s = train_test_split(n, 0.8, seed);
        prop_assert!(!s.train.is_empty());
        prop_assert!(!s.test.is_empty());
        let mut all: Vec<usize> = s.train.iter().chain(&s.test).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn ols_training_fit_is_at_least_as_good_as_the_mean(
        rows in prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 3), 8..40),
        coefs in prop::collection::vec(-5.0f64..5.0, 3),
        noise_seed in any::<u64>(),
    ) {
        // On its own training data, ridge-OLS explains at least (almost) as
        // much variance as the constant mean predictor.
        let mut lcg = noise_seed | 1;
        let mut noise = || {
            lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((lcg >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let y: Vec<f64> = rows
            .iter()
            .map(|r| r.iter().zip(&coefs).map(|(x, c)| x * c).sum::<f64>() + noise())
            .collect();
        let model = LinearRegression::fit(&rows, &y).unwrap();
        let pred = model.predict_many(&rows);
        prop_assert!(r2_score(&y, &pred) >= -1e-6);
    }
}
