//! Property tests for the fleet wire protocol.
//!
//! Mirrors the campaign-cache property suite: every property lives in a
//! plain helper function exercised twice — by deterministic example tests
//! (always run) and by proptest wrappers drawing arbitrary frames.
//!
//! The properties under test are the protocol's three contracts:
//!
//! 1. encoding is canonical and lossless — `parse_line(to_line(x)) == x`;
//! 2. decoding is total — truncated or corrupt bytes yield a typed
//!    [`ProtoError`], never a panic;
//! 3. unknown `kind` discriminators are rejected with the protocol
//!    version attached — but unknown *event* sub-kinds inside a
//!    well-formed `event` frame decode to [`FleetEvent::Unknown`], so a
//!    version-aware client can skip what a newer daemon pushes.

use proptest::prelude::*;
use voltmargin::characterize::search::SearchStrategy;
use voltmargin::fleet::{
    FleetEvent, FleetSpec, HealthSnapshot, ProtoError, Request, Response, PROTO_VERSION,
};
use voltmargin::sim::Corner;

// ---------------------------------------------------------------------
// Properties as plain functions
// ---------------------------------------------------------------------

fn assert_request_roundtrips(frame: &Request) {
    let line = frame.to_line();
    assert!(!line.contains('\n'), "frames are single lines: {line}");
    let back = Request::parse_line(&line).expect("canonical frame decodes");
    assert_eq!(&back, frame, "lossless round trip for {line}");
    // The encoding is canonical: re-encoding the decoded frame is
    // byte-identical.
    assert_eq!(back.to_line(), line);
}

fn assert_response_roundtrips(frame: &Response) {
    let line = frame.to_line();
    assert!(!line.contains('\n'), "frames are single lines: {line}");
    let back = Response::parse_line(&line).expect("canonical frame decodes");
    assert_eq!(&back, frame, "lossless round trip for {line}");
    assert_eq!(back.to_line(), line);
}

/// Decoding arbitrary bytes must return `Ok` or a typed error — it must
/// never panic, whatever the input.
fn assert_decode_is_total(line: &str) {
    let _ = Request::parse_line(line);
    let _ = Response::parse_line(line);
}

/// Every proper prefix of a valid frame decodes to a typed error (a
/// truncated line is never accepted and never panics).
fn assert_truncations_are_typed_errors(whole: &str) {
    for cut in 0..whole.len() {
        if !whole.is_char_boundary(cut) {
            continue;
        }
        let prefix = &whole[..cut];
        let err = Request::parse_line(prefix).expect_err("a proper prefix cannot decode");
        assert!(
            matches!(
                err,
                ProtoError::Malformed { .. }
                    | ProtoError::NotAnObject
                    | ProtoError::MissingField { .. }
                    | ProtoError::BadField { .. }
            ),
            "cut at {cut}: {err:?}"
        );
    }
}

fn assert_unknown_kind_is_versioned(kind: &str) {
    let line = format!("{{\"kind\":{}}}", margins_json_string(kind));
    let err = Request::parse_line(&line).expect_err("unknown kind rejected");
    assert_eq!(
        err,
        ProtoError::UnknownKind {
            kind: kind.to_owned(),
            proto: PROTO_VERSION,
        }
    );
    let Response::Error { proto, code, .. } = err.to_response() else {
        panic!("decode failures become error frames");
    };
    assert_eq!((proto, code.as_str()), (PROTO_VERSION, "unknown-kind"));
}

/// Renders a string as a JSON string token via the deterministic layer.
fn margins_json_string(s: &str) -> String {
    voltmargin::trace::json::render(&voltmargin::trace::json::Value::from_str_val(s))
}

// ---------------------------------------------------------------------
// Generators
//
// Frames are derived deterministically from one u64 seed through a
// splitmix-style mixer, so a single `any::<u64>()` strategy covers the
// whole frame space — and the same builders drive the deterministic
// example twins below.
// ---------------------------------------------------------------------

/// Strings that stress JSON escaping: quotes, backslashes, control
/// characters, non-ASCII, embedded "JSON".
fn tricky_strings() -> Vec<String> {
    vec![
        String::new(),
        "rack-a".to_owned(),
        "rack \"b\"".to_owned(),
        "back\\slash".to_owned(),
        "new\nline\r\ttab".to_owned(),
        "nul\u{0}byte".to_owned(),
        "ünïcødé — 電圧".to_owned(),
        "{\"kind\":\"submit\"}".to_owned(),
    ]
}

/// splitmix64: advances `state` and returns a well-mixed draw.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn string_from(state: &mut u64) -> String {
    let pool = tricky_strings();
    pool[(mix(state) % pool.len() as u64) as usize].clone()
}

fn spec_from(state: &mut u64) -> FleetSpec {
    let corner = match mix(state) % 3 {
        0 => Corner::Ttt,
        1 => Corner::Tff,
        _ => Corner::Tss,
    };
    let search = match mix(state) % 3 {
        0 => SearchStrategy::Exhaustive,
        1 => SearchStrategy::Bisection,
        _ => SearchStrategy::WarmStart,
    };
    let names = ["namd", "mcf", "bwaves"];
    let benchmarks = (0..mix(state) % 4)
        .map(|_| names[(mix(state) % names.len() as u64) as usize].to_owned())
        .collect();
    let cores = (0..mix(state) % 4)
        .map(|_| (mix(state) % 16) as u8)
        .collect();
    FleetSpec {
        corner,
        first_serial: mix(state) % 1_000_000,
        chips: (mix(state) % 200) as u32,
        benchmarks,
        cores,
        iterations: (mix(state) % 20) as u32,
        start_mv: 800 + (mix(state) % 200) as u32,
        floor_mv: 800 + (mix(state) % 200) as u32,
        seed: mix(state),
        search,
    }
}

fn request_from(seed: u64) -> Request {
    let mut state = seed;
    let client = string_from(&mut state);
    let job = mix(&mut state);
    match mix(&mut state) % 9 {
        0 => Request::Submit {
            client,
            spec: spec_from(&mut state),
        },
        1 => Request::Status { client, job },
        2 => Request::Cancel { client, job },
        3 => Request::Results { client, job },
        4 => Request::Subscribe { client, job },
        5 => Request::Unsubscribe { client, job },
        6 => Request::Health,
        7 => Request::Metrics,
        _ => Request::Shutdown,
    }
}

/// Event `what` tokens no proto-v2 decoder knows; used to exercise the
/// skip-don't-fail contract.
const UNKNOWN_WHATS: [&str; 3] = ["chip-rebooted", "rail-browned-out", "x"];

fn event_from(state: &mut u64) -> FleetEvent {
    let job = mix(state);
    let chip = mix(state) as u32;
    match mix(state) % 10 {
        0 => FleetEvent::JobQueued {
            job,
            client: string_from(state),
            chips: mix(state) as u32,
        },
        1 => FleetEvent::JobStarted { job },
        2 => FleetEvent::ChipStarted {
            job,
            chip,
            chip_id: string_from(state),
        },
        3 => FleetEvent::SweepProgress {
            job,
            chip,
            program: string_from(state),
            dataset: string_from(state),
            core: (mix(state) % 8) as u8,
            runs: mix(state),
        },
        4 => FleetEvent::ChipFinished {
            job,
            chip,
            chip_id: string_from(state),
            runs: mix(state),
            power_cycles: mix(state),
            vmin_mv: mix(state)
                .is_multiple_of(2)
                .then(|| 800 + (mix(state) % 200) as u32),
            severity_sum: (mix(state) % 1_000) as f64 / 8.0,
            cache_hits: mix(state),
            cache_lookups: mix(state),
            trace: string_from(state),
        },
        5 => FleetEvent::JobFinished {
            job,
            chips: mix(state) as u32,
            runs: mix(state),
            power_cycles: mix(state),
        },
        6 => FleetEvent::JobCancelled {
            job,
            done: mix(state) as u32,
            total: mix(state) as u32,
        },
        7 => FleetEvent::JobFailed {
            job,
            message: string_from(state),
        },
        8 => FleetEvent::Lagged {
            job,
            dropped: mix(state),
        },
        _ => FleetEvent::Unknown {
            what: UNKNOWN_WHATS[(mix(state) % UNKNOWN_WHATS.len() as u64) as usize].to_owned(),
        },
    }
}

fn response_from(seed: u64) -> Response {
    let mut state = seed;
    let text_a = string_from(&mut state);
    let text_b = string_from(&mut state);
    let job = mix(&mut state);
    match mix(&mut state) % 11 {
        0 => Response::Submitted {
            job,
            chips: mix(&mut state) as u32,
        },
        1 => Response::Status {
            job,
            state: text_a,
            done: mix(&mut state) as u32,
            total: mix(&mut state) as u32,
            queue_position: mix(&mut state) as u32,
            progress: (mix(&mut state) % 101) as f64 / 100.0,
        },
        2 => Response::Cancelled {
            job,
            done: mix(&mut state) as u32,
            total: mix(&mut state) as u32,
        },
        3 => Response::Results {
            job,
            chips: mix(&mut state) as u32,
            runs: mix(&mut state),
            power_cycles: mix(&mut state),
            executed_ops: mix(&mut state),
            trace: text_a,
            metrics: text_b,
        },
        4 => Response::Bye,
        5 => Response::Subscribed { job },
        6 => Response::Unsubscribed { job },
        7 => Response::Health(HealthSnapshot {
            workers: mix(&mut state) as u32,
            busy: mix(&mut state) as u32,
            queued_units: mix(&mut state),
            jobs_queued: mix(&mut state) as u32,
            jobs_running: mix(&mut state) as u32,
            jobs_done: mix(&mut state) as u32,
            jobs_cancelled: mix(&mut state) as u32,
            jobs_failed: mix(&mut state) as u32,
            subscribers: mix(&mut state) as u32,
        }),
        8 => Response::Metrics { body: text_a },
        9 => Response::Event(event_from(&mut state)),
        _ => Response::Error {
            proto: mix(&mut state) as u32,
            code: text_a,
            message: text_b,
        },
    }
}

// Referenced only inside `proptest!`; offline stand-ins of the harness
// may compile that macro to nothing.
#[allow(dead_code)]
fn arb_request() -> impl Strategy<Value = Request> {
    any::<u64>().prop_map(request_from)
}

#[allow(dead_code)]
fn arb_response() -> impl Strategy<Value = Response> {
    any::<u64>().prop_map(response_from)
}

// ---------------------------------------------------------------------
// Deterministic example twins (always run, even where the proptest
// harness is unavailable)
// ---------------------------------------------------------------------

fn example_spec() -> FleetSpec {
    FleetSpec {
        corner: Corner::Tff,
        first_serial: 128,
        chips: 64,
        benchmarks: vec!["namd".into(), "mcf".into()],
        cores: vec![0, 4],
        iterations: 3,
        start_mv: 890,
        floor_mv: 870,
        seed: 41,
        search: SearchStrategy::WarmStart,
    }
}

#[test]
fn example_requests_roundtrip() {
    for client in tricky_strings() {
        assert_request_roundtrips(&Request::Submit {
            client: client.clone(),
            spec: example_spec(),
        });
        assert_request_roundtrips(&Request::Status {
            client: client.clone(),
            job: u64::MAX,
        });
        assert_request_roundtrips(&Request::Cancel {
            client: client.clone(),
            job: 0,
        });
        assert_request_roundtrips(&Request::Results {
            client: client.clone(),
            job: 7,
        });
        assert_request_roundtrips(&Request::Subscribe {
            client: client.clone(),
            job: 9,
        });
        assert_request_roundtrips(&Request::Unsubscribe { client, job: 9 });
    }
    assert_request_roundtrips(&Request::Shutdown);
    assert_request_roundtrips(&Request::Health);
    assert_request_roundtrips(&Request::Metrics);
}

#[test]
fn example_responses_roundtrip() {
    for text in tricky_strings() {
        assert_response_roundtrips(&Response::Status {
            job: 3,
            state: text.clone(),
            done: 1,
            total: 64,
            queue_position: 2,
            progress: 0.015_625,
        });
        assert_response_roundtrips(&Response::Results {
            job: 3,
            chips: 64,
            runs: 7_680,
            power_cycles: 12,
            executed_ops: 0,
            trace: text.clone(),
            metrics: text.clone(),
        });
        assert_response_roundtrips(&Response::Error {
            proto: PROTO_VERSION,
            code: "bad-spec".into(),
            message: text,
        });
    }
    assert_response_roundtrips(&Response::Submitted { job: 1, chips: 64 });
    assert_response_roundtrips(&Response::Cancelled {
        job: 1,
        done: 5,
        total: 64,
    });
    assert_response_roundtrips(&Response::Bye);
    assert_response_roundtrips(&Response::Subscribed { job: 1 });
    assert_response_roundtrips(&Response::Unsubscribed { job: 1 });
    assert_response_roundtrips(&Response::Health(HealthSnapshot {
        workers: 4,
        busy: 3,
        queued_units: 61,
        jobs_queued: 1,
        jobs_running: 1,
        jobs_done: 2,
        jobs_cancelled: 1,
        jobs_failed: 0,
        subscribers: 2,
    }));
    assert_response_roundtrips(&Response::Metrics {
        body: "# TYPE voltmargin_fleet_workers gauge\nvoltmargin_fleet_workers 4\n# EOF\n".into(),
    });
}

#[test]
fn example_events_roundtrip() {
    for seed in 0..64u64 {
        let mut state = seed;
        assert_response_roundtrips(&Response::Event(event_from(&mut state)));
    }
    // The censored chip encodes its Vmin by omission and still round-trips.
    assert_response_roundtrips(&Response::Event(FleetEvent::ChipFinished {
        job: 0,
        chip: 1,
        chip_id: "TSS#2".into(),
        runs: 6,
        power_cycles: 2,
        vmin_mv: None,
        severity_sum: 1.5,
        cache_hits: 0,
        cache_lookups: 6,
        trace: "{\"seq\":0}\n".into(),
    }));
}

#[test]
fn example_unknown_event_kinds_are_skippable_not_fatal() {
    // A well-formed event frame whose `what` this version has never
    // heard of decodes to `FleetEvent::Unknown` — the client skips it and
    // keeps the stream, instead of dropping the connection.
    for what in UNKNOWN_WHATS {
        let line = format!(
            "{{\"kind\":\"event\",\"what\":{},\"job\":3,\"payload\":{{\"novel\":true}}}}",
            margins_json_string(what)
        );
        let decoded = Response::parse_line(&line).expect("unknown event kinds decode");
        assert_eq!(
            decoded,
            Response::Event(FleetEvent::Unknown {
                what: what.to_owned()
            })
        );
    }
    // A *known* what with a broken payload is still a typed error: the
    // skip contract covers novelty, not corruption.
    let corrupt = "{\"kind\":\"event\",\"what\":\"job-started\"}";
    assert!(Response::parse_line(corrupt).is_err());
}

#[test]
fn seeded_frames_roundtrip_and_truncate_safely() {
    for seed in 0..256u64 {
        assert_request_roundtrips(&request_from(seed));
        assert_response_roundtrips(&response_from(seed));
    }
    // Truncation is expensive (every prefix of every frame); sample it.
    for seed in 0..16u64 {
        assert_truncations_are_typed_errors(&request_from(seed).to_line());
    }
}

#[test]
fn example_truncations_never_decode() {
    assert_truncations_are_typed_errors(
        &Request::Submit {
            client: "rack \"a\"\n".into(),
            spec: example_spec(),
        }
        .to_line(),
    );
    assert_truncations_are_typed_errors(
        &Response::Results {
            job: 1,
            chips: 2,
            runs: 3,
            power_cycles: 4,
            executed_ops: 5,
            trace: "{\"seq\":0}\n".into(),
            metrics: "# EOF\n".into(),
        }
        .to_line(),
    );
}

#[test]
fn example_corrupt_bytes_decode_totally() {
    for line in [
        "",
        "   ",
        "null",
        "true",
        "42",
        "\"just a string\"",
        "[1,2,3]",
        "{}",
        "{\"kind\":7}",
        "{\"kind\":\"submit\"}",
        "{\"kind\":\"submit\",\"client\":\"c\",\"spec\":3}",
        "{\"kind\":\"status\",\"client\":\"c\",\"job\":\"one\"}",
        "{\"kind\":\"status\",\"client\":\"c\",\"job\":-1}",
        "{\"kind\":\"submitted\",\"job\":0,\"chips\":4294967296}",
        "\u{0}\u{1}\u{2}",
        "ütterly wröng",
        "{\"kind\":\"submit\",\"client\":\"c\",\"spec\":{\"corner\":\"xyz\"}}",
    ] {
        assert_decode_is_total(line);
        assert!(
            Request::parse_line(line).is_err(),
            "corrupt frame must not decode: {line:?}"
        );
    }
}

#[test]
fn example_unknown_kinds_carry_the_version() {
    for kind in ["reboot", "Submit", "SUBMIT", "submit ", "", "結果"] {
        assert_unknown_kind_is_versioned(kind);
    }
}

// ---------------------------------------------------------------------
// Proptest wrappers
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn request_wire_roundtrip_is_lossless(frame in arb_request()) {
        assert_request_roundtrips(&frame);
    }

    #[test]
    fn response_wire_roundtrip_is_lossless(frame in arb_response()) {
        assert_response_roundtrips(&frame);
    }

    #[test]
    fn truncated_frames_are_typed_errors(frame in arb_request()) {
        assert_truncations_are_typed_errors(&frame.to_line());
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(line in ".*") {
        assert_decode_is_total(&line);
    }

    #[test]
    fn mutated_frames_never_panic_the_decoder(
        frame in arb_request(),
        idx in 0usize..400,
        replacement in prop::sample::select(vec!['x', '"', '{', '}', ':', ',', '\\', '\u{0}']),
    ) {
        let line = frame.to_line();
        let chars: Vec<char> = line.chars().collect();
        let mut mutated: String = chars[..idx % chars.len()].iter().collect();
        mutated.push(replacement);
        mutated.extend(&chars[idx % chars.len() + 1..]);
        assert_decode_is_total(&mutated);
    }

    #[test]
    fn unknown_kinds_are_versioned_rejections(kind in "[a-z-]{1,12}") {
        // Skip the kinds this protocol version does define.
        let known = [
            "submit", "status", "cancel", "results", "shutdown",
            "subscribe", "unsubscribe", "health", "metrics",
        ];
        prop_assume!(!known.contains(&kind.as_str()));
        assert_unknown_kind_is_versioned(&kind);
    }

    #[test]
    fn unknown_event_whats_decode_skippable(what in "[a-z-]{1,16}") {
        let known = [
            "job-queued", "job-started", "chip-started", "sweep-progress",
            "chip-finished", "job-finished", "job-cancelled", "job-failed",
            "lagged",
        ];
        prop_assume!(!known.contains(&what.as_str()));
        let line = format!(
            "{{\"kind\":\"event\",\"what\":{}}}",
            margins_json_string(&what)
        );
        let decoded = Response::parse_line(&line).expect("unknown event kinds decode");
        prop_assert_eq!(decoded, Response::Event(FleetEvent::Unknown { what }));
    }
}
