//! Fleet conformance: the daemon's scheduling must be *invisible* in its
//! outputs.
//!
//! Three contracts, each proven end to end against the in-process
//! [`FleetService`] (the `voltmargin serve` TCP front-end is a thin frame
//! pump over exactly this API):
//!
//! 1. **Byte-identity** — a fleet run of N chips produces the same trace
//!    JSONL, OpenMetrics exposition, tallies and cache bytes as N
//!    sequential `characterize` runs merged in canonical chip order.
//! 2. **Client isolation** — concurrent clients each receive exactly
//!    their own merged stream; another client's records never interleave.
//! 3. **Warm replay** — a second fleet pass over the same chips answers
//!    every probe from the shared campaign cache and executes zero
//!    machine ops.

use voltmargin::characterize::cache::SharedCampaignCache;
use voltmargin::characterize::exec::{CacheHandle, ExecContext, ExecError, SerialExecutor};
use voltmargin::characterize::profile::PhaseTallies;
use voltmargin::characterize::runner::Campaign;
use voltmargin::characterize::search::SearchStrategy;
use voltmargin::fleet::{FleetService, FleetSpec, JobOutcome, SpecError};
use voltmargin::sim::Corner;
use voltmargin::trace::{merge_streams, validate_records, MemorySink, MetricsRegistry, Sink};

fn spec(corner: Corner, first_serial: u64, chips: u32) -> FleetSpec {
    FleetSpec {
        corner,
        first_serial,
        chips,
        benchmarks: vec!["namd".into()],
        cores: vec![0],
        iterations: 1,
        start_mv: 890,
        floor_mv: 880,
        seed: 0x00DD_BA11,
        search: SearchStrategy::Exhaustive,
    }
}

/// What a fleet job must reproduce, computed the reference way: one
/// sequential `Campaign::run` per chip in canonical order, merged through
/// the canonical re-seal.
struct Baseline {
    trace: String,
    metrics: String,
    runs: u64,
    power_cycles: u64,
    executed_ops: u64,
}

fn serial_baseline(fleet: &FleetSpec, cache: &SharedCampaignCache) -> Baseline {
    let config = fleet
        .campaign_config()
        .expect("conformance specs are valid");
    let mut streams = Vec::new();
    let mut tallies = PhaseTallies::new();
    let mut runs = 0u64;
    let mut power_cycles = 0u64;
    for chip in fleet.chip_specs() {
        let mut buffer = MemorySink::new();
        let mut chip_tallies = PhaseTallies::new();
        let outcome = {
            let mut sinks: Vec<&mut dyn Sink> = vec![&mut buffer];
            Campaign::new(chip, config.clone())
                .run(
                    &SerialExecutor,
                    ExecContext {
                        sinks: &mut sinks,
                        cache: Some(CacheHandle::Shared(cache)),
                        priors: None,
                        metrics: None,
                        profile_out: Some(&mut chip_tallies),
                    },
                )
                .expect("serial baseline campaigns run")
        };
        runs += outcome.runs.len() as u64;
        power_cycles += u64::from(outcome.watchdog_power_cycles);
        tallies.merge(&chip_tallies);
        streams.push(buffer.records);
    }
    let records = merge_streams(streams.iter().map(Vec::as_slice));
    let mut trace = String::new();
    for record in &records {
        trace.push_str(&record.to_json_line().expect("campaign records encode"));
        trace.push('\n');
    }
    let mut registry = MetricsRegistry::new();
    for record in &records {
        registry.emit(record);
    }
    registry.finish();
    Baseline {
        trace,
        metrics: registry.to_openmetrics(),
        runs,
        power_cycles,
        executed_ops: tallies.executed_ops(),
    }
}

fn results_of(outcome: Option<JobOutcome>) -> voltmargin::fleet::FleetResults {
    match outcome {
        Some(JobOutcome::Done(r)) => r,
        other => panic!("expected a completed job, got {other:?}"),
    }
}

#[test]
fn fleet_run_is_byte_identical_to_the_serial_merge() {
    let fleet = spec(Corner::Ttt, 100, 6);

    let svc = FleetService::new(4, SharedCampaignCache::new()).expect("valid worker count");
    let results = svc.run(|| {
        let (job, chips) = svc.submit("lab", &fleet).expect("valid spec");
        assert_eq!(chips, 6);
        results_of(svc.wait("lab", job))
    });

    let baseline_cache = SharedCampaignCache::new();
    let baseline = serial_baseline(&fleet, &baseline_cache);

    assert!(
        baseline.executed_ops > 0,
        "a cold pass must probe simulated boards"
    );
    assert_eq!(
        results.trace, baseline.trace,
        "trace JSONL must be byte-identical"
    );
    assert_eq!(
        results.metrics, baseline.metrics,
        "OpenMetrics exposition must be byte-identical"
    );
    assert_eq!(results.runs, baseline.runs);
    assert_eq!(results.power_cycles, baseline.power_cycles);
    assert_eq!(results.executed_ops, baseline.executed_ops);

    // The merged stream is a valid stream in its own right: dense seqs
    // from 0, monotonic modelled clock, balanced spans.
    let records = voltmargin::trace::read_jsonl(&results.trace).expect("trace parses");
    validate_records(&records).expect("merged stream upholds the stream invariants");

    // The shared cache serializes to the same canonical bytes no matter
    // which side — fleet workers or the serial loop — appended first.
    assert_eq!(
        svc.cache().to_jsonl(),
        baseline_cache.to_jsonl(),
        "cache bytes must be append-order-free"
    );
}

#[test]
fn concurrent_clients_receive_only_their_own_streams() {
    // Disjoint chip sets (different corners *and* serial ranges) so the
    // shared cache stays all-miss for both jobs in the cold pass.
    let fleet_a = spec(Corner::Ttt, 0, 4);
    let fleet_b = FleetSpec {
        benchmarks: vec!["mcf".into()],
        ..spec(Corner::Tss, 500, 3)
    };

    let svc = FleetService::new(3, SharedCampaignCache::new()).expect("valid worker count");
    let (results_a, results_b) = svc.run(|| {
        std::thread::scope(|scope| {
            let a = scope.spawn(|| {
                let (job, _) = svc.submit("client-a", &fleet_a).expect("valid spec");
                results_of(svc.wait("client-a", job))
            });
            let b = scope.spawn(|| {
                let (job, _) = svc.submit("client-b", &fleet_b).expect("valid spec");
                results_of(svc.wait("client-b", job))
            });
            (
                a.join().expect("client a thread"),
                b.join().expect("client b thread"),
            )
        })
    });

    let baseline_a = serial_baseline(&fleet_a, &SharedCampaignCache::new());
    let baseline_b = serial_baseline(&fleet_b, &SharedCampaignCache::new());

    assert_eq!(
        results_a.trace, baseline_a.trace,
        "client a's stream must be exactly its own serial merge"
    );
    assert_eq!(
        results_b.trace, baseline_b.trace,
        "client b's stream must be exactly its own serial merge"
    );
    assert_eq!(results_a.metrics, baseline_a.metrics);
    assert_eq!(results_b.metrics, baseline_b.metrics);
    assert_ne!(
        results_a.trace, results_b.trace,
        "sanity: the two clients ran different fleets"
    );

    // Isolation also means completeness: every chip of each fleet is in
    // its owner's stream and nowhere else.
    assert!(results_a.trace.contains("TTT#3"));
    assert!(!results_a.trace.contains("TSS#"));
    assert!(results_b.trace.contains("TSS#502"));
    assert!(!results_b.trace.contains("TTT#"));
}

#[test]
fn warm_fleet_rerun_executes_zero_machine_ops() {
    let fleet = spec(Corner::Tff, 40, 3);
    let svc = FleetService::new(2, SharedCampaignCache::new()).expect("valid worker count");

    let (cold, warm) = svc.run(|| {
        let (job, _) = svc.submit("lab", &fleet).expect("valid spec");
        let cold = results_of(svc.wait("lab", job));
        // Same client, same spec, same service — every probe is now in
        // the shared cache.
        let (rerun, _) = svc.submit("lab", &fleet).expect("valid spec");
        (cold, results_of(svc.wait("lab", rerun)))
    });

    assert!(cold.executed_ops > 0, "cold pass probes simulated boards");
    assert_eq!(
        warm.executed_ops, 0,
        "a fully warm fleet rerun must execute zero machine ops"
    );
    // The replay is not a degraded mode: it reproduces every classified
    // run and recovery count of the cold pass.
    assert_eq!(warm.runs, cold.runs);
    assert_eq!(warm.power_cycles, cold.power_cycles);

    // The warm stream shows the replay honestly: every cache lookup is a
    // hit, and no voltage is ever actually stepped on a board.
    assert!(warm.trace.contains("\"hit\":true"));
    assert!(!warm.trace.contains("\"hit\":false"));
    assert!(!warm.trace.contains("VoltageStepped"));
    assert!(!warm.trace.contains("RailSet"));

    // And the semantic payload — the classified runs themselves — is
    // event-identical between the passes.
    let semantic = |trace: &str| -> Vec<voltmargin::trace::TraceEvent> {
        voltmargin::trace::read_jsonl(trace)
            .expect("trace parses")
            .into_iter()
            .map(|r| r.event)
            .filter(|e| {
                matches!(
                    e,
                    voltmargin::trace::TraceEvent::RunCompleted { .. }
                        | voltmargin::trace::TraceEvent::GoldenCaptured { .. }
                )
            })
            .collect()
    };
    assert_eq!(semantic(&warm.trace), semantic(&cold.trace));
}

#[test]
fn invalid_workers_and_specs_are_typed_rejections() {
    assert_eq!(
        FleetService::new(0, SharedCampaignCache::new()).err(),
        Some(ExecError::ZeroThreads)
    );
    assert!(matches!(
        FleetService::new(usize::MAX, SharedCampaignCache::new()).err(),
        Some(ExecError::TooManyThreads { .. })
    ));

    let svc = FleetService::new(1, SharedCampaignCache::new()).expect("valid worker count");
    assert_eq!(
        svc.submit("lab", &spec(Corner::Ttt, 0, 0)).err(),
        Some(SpecError::NoChips)
    );
    let bad_core = FleetSpec {
        cores: vec![99],
        ..spec(Corner::Ttt, 0, 1)
    };
    assert_eq!(
        svc.submit("lab", &bad_core).err(),
        Some(SpecError::BadCore { core: 99 })
    );
}
