//! Integration checks of the §6 design enhancements and the PCP/SoC-rail
//! extension study.

use voltmargin::characterize::config::{CampaignConfig, SweptRail};
use voltmargin::characterize::effect::Effect;
use voltmargin::characterize::regions::{analyze, RegionKind};
use voltmargin::characterize::runner::Campaign;
use voltmargin::characterize::severity::{Mitigation, SeverityWeights};
use voltmargin::sim::{ChipSpec, CoreId, Corner, Enhancements, Millivolts};

#[test]
fn detectors_create_a_ce_first_band_like_section_6_predicts() {
    // §6: with hardware detectors, "SDC behavior with or without errors
    // will have significant probability to be transformed to corrected
    // errors behavior similarly to [9, 10]".
    let characterize = |enhancements: Enhancements| {
        let cfg = CampaignConfig::builder()
            .benchmarks(["bwaves"])
            .cores([CoreId::new(0)])
            .iterations(6)
            .start_voltage(Millivolts::new(925))
            .floor_voltage(Millivolts::new(865))
            .enhancements(enhancements)
            .seed(0x66)
            .build()
            .unwrap();
        let outcome = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg).execute_parallel(4);
        analyze(&outcome, &SeverityWeights::paper())
    };

    let stock = characterize(Enhancements::stock());
    let enhanced = characterize(Enhancements {
        residue_checks: true,
        ..Enhancements::stock()
    });

    let first_effects = |r: &voltmargin::characterize::CharacterizationResult| {
        r.summaries[0]
            .abnormal_steps()
            .next()
            .map(|st| st.observed())
            .expect("sweep reaches the unsafe region")
    };
    let stock_first = first_effects(&stock);
    let enhanced_first = first_effects(&enhanced);
    assert!(
        stock_first.contains(Effect::Sdc),
        "stock chip fails SDC-first: {stock_first}"
    );
    assert!(
        enhanced_first.contains(Effect::Ce) && !enhanced_first.contains(Effect::Sdc),
        "detectors must turn the first abnormal step into CE: {enhanced_first}"
    );

    // And the detectors shrink the SDC-bearing portion of the sweep.
    let sdc_steps = |r: &voltmargin::characterize::CharacterizationResult| {
        r.summaries[0]
            .steps
            .iter()
            .filter(|st| st.observed().contains(Effect::Sdc))
            .count()
    };
    assert!(sdc_steps(&enhanced) < sdc_steps(&stock));
}

#[test]
fn soc_rail_has_a_wide_ecc_proxy_band() {
    // Extension: sweeping the PCP/SoC rail with an L3-resident workload
    // shows the Itanium-style behaviour the paper contrasts against —
    // a wide corrected-errors-only band before the crash region.
    let cfg = CampaignConfig::builder()
        .benchmarks(["mcf"])
        .cores([CoreId::new(4)])
        .iterations(4)
        .rail(SweptRail::PcpSoc)
        .start_voltage(Millivolts::new(880))
        .floor_voltage(Millivolts::new(715))
        .seed(0x50C)
        .build()
        .unwrap();
    let outcome = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg).execute_parallel(2);
    let result = analyze(&outcome, &SeverityWeights::paper());
    let s = &result.summaries[0];

    let ce_only_steps: Vec<_> = s
        .steps
        .iter()
        .filter(|st| {
            st.region == RegionKind::Unsafe && {
                let o = st.observed();
                o.contains(Effect::Ce)
                    && !o.contains(Effect::Sdc)
                    && !o.contains(Effect::Ac)
                    && !o.contains(Effect::Ue)
            }
        })
        .collect();
    assert!(
        ce_only_steps.len() >= 10,
        "expected a wide CE-only band, got {} steps",
        ce_only_steps.len()
    );
    // Those steps sit in the §4.4 ECC-proxy regime.
    for st in &ce_only_steps {
        assert_eq!(st.severity.mitigation(st.observed()), Mitigation::EccProxy);
        assert!(st.severity.value() <= 1.5, "{} at {}mV", st.severity, st.mv);
    }
    // And the rail eventually crashes (SoC logic collapse).
    assert!(s.highest_crash.is_some());
    assert!(s.highest_crash.unwrap().get() < 745);
}

#[test]
fn extended_ecc_reduces_uncorrected_errors_on_the_cache_selftest() {
    // §6a: interleaved SECDED on every array upgrades parity losses and
    // double-bit patterns. The L1 march test at deep voltages shows it.
    let characterize = |enhancements: Enhancements| {
        let cfg = CampaignConfig::builder()
            .benchmarks(["selftest-l1d"])
            .cores([CoreId::new(4)])
            .iterations(4)
            .start_voltage(Millivolts::new(880))
            .floor_voltage(Millivolts::new(845))
            .crash_stop_steps(0)
            .enhancements(enhancements)
            .seed(0xECC)
            .build()
            .unwrap();
        let outcome = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg).execute_parallel(2);
        analyze(&outcome, &SeverityWeights::paper())
    };
    let stock = characterize(Enhancements::stock());
    let enhanced = characterize(Enhancements {
        extended_ecc: true,
        ..Enhancements::stock()
    });
    let ue_runs = |r: &voltmargin::characterize::CharacterizationResult| {
        r.summaries[0]
            .steps
            .iter()
            .map(|st| st.count(Effect::Ue))
            .sum::<usize>()
    };
    let (stock_ue, enhanced_ue) = (ue_runs(&stock), ue_runs(&enhanced));
    assert!(
        enhanced_ue <= stock_ue,
        "stronger ECC must not increase UEs: stock {stock_ue}, enhanced {enhanced_ue}"
    );
    let ce_runs = |r: &voltmargin::characterize::CharacterizationResult| {
        r.summaries[0]
            .steps
            .iter()
            .map(|st| st.count(Effect::Ce))
            .sum::<usize>()
    };
    assert!(
        ce_runs(&enhanced) >= ce_runs(&stock),
        "upgraded arrays correct what parity only detected"
    );
}
