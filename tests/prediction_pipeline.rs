//! Integration of characterization → dataset assembly → OLS/RFE prediction
//! (the Figure 6 flow), on a reduced but real pipeline.

use voltmargin::characterize::config::{BenchmarkRef, CampaignConfig};
use voltmargin::characterize::dataset::{severity_samples, to_matrix, vmin_samples};
use voltmargin::characterize::regions::analyze;
use voltmargin::characterize::runner::{profile, Campaign};
use voltmargin::characterize::severity::SeverityWeights;
use voltmargin::energy::predictor::{OnlinePredictor, BUDGET_CONSERVATIVE, BUDGET_SDC_TOLERANT};
use voltmargin::predict::{
    r2_score, rmse, train_test_split, NaiveMean, RecursiveFeatureElimination,
};
use voltmargin::sim::{ChipSpec, CoreId, Corner, Millivolts};
use voltmargin::workloads::Dataset;

fn benchmarks() -> Vec<BenchmarkRef> {
    [
        "bwaves",
        "leslie3d",
        "cactusADM",
        "zeusmp",
        "milc",
        "gromacs",
        "dealII",
        "namd",
        "soplex",
        "mcf",
    ]
    .into_iter()
    .map(|name| BenchmarkRef {
        name: name.to_owned(),
        dataset: Dataset::Ref,
    })
    .collect()
}

type Features = Vec<Vec<f64>>;
type Targets = Vec<f64>;

fn pipeline(core: CoreId) -> (Features, Targets, Features, Targets) {
    let chip = ChipSpec::new(Corner::Ttt, 0);
    let benches = benchmarks();
    let config = CampaignConfig::builder()
        .benchmark_refs(benches.iter().cloned())
        .cores([core])
        .iterations(6)
        .start_voltage(Millivolts::new(935))
        .floor_voltage(Millivolts::new(845))
        .seed(0x1407)
        .build()
        .unwrap();
    let outcome = Campaign::new(chip, config).execute_parallel(4);
    let result = analyze(&outcome, &SeverityWeights::paper());
    let profiles = profile(chip, &benches, core).expect("suite benchmark names");
    let sev = severity_samples(&result, &profiles, core);
    let vmin = vmin_samples(&result, &profiles, core);
    let (sx, sy) = to_matrix(&sev);
    let (vx, vy) = to_matrix(&vmin);
    (sx, sy, vx, vy)
}

#[test]
fn severity_model_beats_the_naive_baseline() {
    let (x, y, _, _) = pipeline(CoreId::new(0));
    assert!(
        y.len() >= 25,
        "expected a meaningful sample pool, got {}",
        y.len()
    );

    let split = train_test_split(y.len(), 0.8, 99);
    let rfe = RecursiveFeatureElimination::fit(&split.train_of(&x), &split.train_of(&y), 5, 5)
        .expect("dataset is well-formed");
    let y_test = split.test_of(&y);
    let pred = rfe.predict_many(&split.test_of(&x));
    let naive = NaiveMean::fit(&split.train_of(&y));
    let model_rmse = rmse(&y_test, &pred);
    let naive_rmse = rmse(&y_test, &naive.predict_many(y_test.len()));

    assert!(
        model_rmse < naive_rmse,
        "linear model ({model_rmse:.2}) must beat naive ({naive_rmse:.2})"
    );
    let r2 = r2_score(&y_test, &pred);
    assert!(r2 > 0.3, "severity R² too low: {r2:.2}");
    assert_eq!(rfe.selected_features().len(), 5);
}

#[test]
fn severity_model_works_on_the_robust_core_too() {
    // §4.4: "the linear regression model for severity values can be
    // effective regardless the core-to-core variation."
    let (x, y, _, _) = pipeline(CoreId::new(4));
    assert!(y.len() >= 20);
    let split = train_test_split(y.len(), 0.8, 7);
    let rfe =
        RecursiveFeatureElimination::fit(&split.train_of(&x), &split.train_of(&y), 5, 5).unwrap();
    let y_test = split.test_of(&y);
    let pred = rfe.predict_many(&split.test_of(&x));
    let naive = NaiveMean::fit(&split.train_of(&y));
    assert!(
        rmse(&y_test, &pred) < rmse(&y_test, &naive.predict_many(y_test.len())),
        "model must beat naive on the robust core"
    );
}

#[test]
fn online_predictor_tracks_measured_vmin_ordering() {
    // The full §4.4/§5 online flow: train the severity model on the
    // characterization, then let the OnlinePredictor pick per-workload
    // voltages from nominal-conditions counters alone.
    let chip = ChipSpec::new(Corner::Ttt, 0);
    let core = CoreId::new(0);
    let benches = benchmarks();
    let config = CampaignConfig::builder()
        .benchmark_refs(benches.iter().cloned())
        .cores([core])
        .iterations(6)
        .start_voltage(Millivolts::new(935))
        .floor_voltage(Millivolts::new(845))
        .seed(0x1407)
        .build()
        .unwrap();
    let outcome = Campaign::new(chip, config).execute_parallel(4);
    let result = analyze(&outcome, &SeverityWeights::paper());
    let profiles = profile(chip, &benches, core).expect("suite benchmark names");
    let samples = severity_samples(&result, &profiles, core);
    let (x, y) = to_matrix(&samples);
    let model = RecursiveFeatureElimination::fit(&x, &y, 5, 5).unwrap();
    let predictor = OnlinePredictor::new(model);

    let floor = Millivolts::new(845);
    let mut checked = 0;
    let mut deviations = Vec::new();
    for p in &profiles {
        let counters = p.counters.to_feature_vector();
        let conservative = predictor
            .safe_voltage(&counters, BUDGET_CONSERVATIVE, floor)
            .expect("nominal is always predicted safe");
        let tolerant = predictor
            .safe_voltage(&counters, BUDGET_SDC_TOLERANT, floor)
            .expect("nominal is always predicted safe");
        assert!(tolerant <= conservative, "{}", p.name);
        // Compare against the measured Vmin where available.
        if let Some(vmin) = result
            .summary(&p.name, &p.dataset, core)
            .and_then(|s| s.safe_vmin)
        {
            deviations.push(f64::from(conservative.get()) - f64::from(vmin.get()));
            checked += 1;
        }
    }
    assert!(checked >= 8, "most benchmarks have a measured Vmin");
    // The conservative prediction tracks the measured Vmin to ~2 steps in
    // the mean (individual workloads may deviate more — that is exactly the
    // paper's argument for predicting severity rather than a Vmin point).
    let mean_abs = deviations.iter().map(|d| d.abs()).sum::<f64>() / deviations.len() as f64;
    assert!(
        mean_abs <= 20.0,
        "mean |prediction − Vmin| = {mean_abs:.1} mV (deviations {deviations:?})"
    );
}

#[test]
fn vmin_targets_span_the_guardband_and_are_learnable_shapes() {
    let (_, _, vx, vy) = pipeline(CoreId::new(0));
    assert_eq!(vy.len(), 10, "one Vmin sample per benchmark");
    assert_eq!(vx[0].len(), 101, "counter features only");
    // Targets live in the sensitive core's Vmin band.
    for v in &vy {
        assert!((870.0..=935.0).contains(v), "vmin sample {v}");
    }
    // The workload spread is present in the targets.
    let min = vy.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = vy.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(max - min >= 15.0, "vmin spread {min}..{max}");
}
