//! Fleet streaming: subscriptions observe, they never perturb.
//!
//! The observability plane's contracts, proven against the in-process
//! [`FleetService`] (the daemon's TCP layer is a thin frame pump over
//! exactly this API):
//!
//! 1. **Replay byte-identity** — a fully-received subscription, its
//!    per-chip payloads re-sealed through `merge_streams`, reproduces the
//!    job's artifact trace byte for byte.
//! 2. **Backpressure with exact accounting** — a slow consumer loses
//!    events to its bounded queue but learns *exactly* how many via the
//!    `lagged` frame, and the campaign outcome is byte-identical with and
//!    without the slow subscriber attached.
//! 3. **Lifecycle** — cancelled jobs emit a terminal event with
//!    partial-results accounting, `status` reports queue position and
//!    progress, and mid-job unsubscribes never affect the job.
//! 4. **Metrics split** — the deterministic counter subset of the
//!    OpenMetrics exposition is identical across same-seed reruns.

use voltmargin::characterize::cache::SharedCampaignCache;
use voltmargin::characterize::search::SearchStrategy;
use voltmargin::fleet::{FleetEvent, FleetService, FleetSpec, JobOutcome};
use voltmargin::sim::Corner;
use voltmargin::trace::{merge_streams, read_jsonl, TraceRecord};

fn spec(corner: Corner, first_serial: u64, chips: u32) -> FleetSpec {
    FleetSpec {
        corner,
        first_serial,
        chips,
        benchmarks: vec!["namd".into()],
        cores: vec![0],
        iterations: 1,
        start_mv: 890,
        floor_mv: 880,
        seed: 0x00DD_BA11,
        search: SearchStrategy::Exhaustive,
    }
}

fn results_of(outcome: Option<JobOutcome>) -> voltmargin::fleet::FleetResults {
    match outcome {
        Some(JobOutcome::Done(r)) => r,
        other => panic!("expected a completed job, got {other:?}"),
    }
}

fn is_terminal(event: &FleetEvent) -> bool {
    matches!(
        event,
        FleetEvent::JobFinished { .. }
            | FleetEvent::JobCancelled { .. }
            | FleetEvent::JobFailed { .. }
    )
}

/// Drains a subscription until its terminal event, collecting everything.
fn collect_until_terminal(
    svc: &FleetService,
    sub: &voltmargin::fleet::Subscription,
) -> Vec<FleetEvent> {
    let mut events = Vec::new();
    'outer: while let Some(batch) = svc.next_events(sub) {
        for event in batch {
            let done = is_terminal(&event);
            events.push(event);
            if done {
                break 'outer;
            }
        }
    }
    events
}

/// Reassembles a job trace from the `chip-finished` payloads of a
/// subscription, in canonical (ascending chip index) order.
fn reassemble(events: &[FleetEvent]) -> String {
    let mut streams: std::collections::BTreeMap<u32, Vec<TraceRecord>> =
        std::collections::BTreeMap::new();
    for event in events {
        if let FleetEvent::ChipFinished { chip, trace, .. } = event {
            let records = read_jsonl(trace).expect("streamed per-chip traces parse");
            streams.insert(*chip, records);
        }
    }
    let merged = merge_streams(streams.values().map(Vec::as_slice));
    let mut out = String::new();
    for record in &merged {
        out.push_str(&record.to_json_line().expect("records encode"));
        out.push('\n');
    }
    out
}

#[test]
fn live_subscription_replay_is_byte_identical_to_the_artifact() {
    let fleet = spec(Corner::Ttt, 300, 4);
    let svc = FleetService::new(2, SharedCampaignCache::new()).expect("valid worker count");
    let (results, events) = svc.run(|| {
        let (job, chips) = svc.submit("lab", &fleet).expect("valid spec");
        assert_eq!(chips, 4);
        let sub = svc
            .subscribe("lab", job, 4096)
            .expect("job owner can subscribe");
        std::thread::scope(|scope| {
            let collector = scope.spawn(|| collect_until_terminal(&svc, &sub));
            let results = results_of(svc.wait("lab", job));
            (results, collector.join().expect("collector thread"))
        })
    });

    // Every event belongs to the watched job and none were dropped.
    assert!(events
        .iter()
        .all(|e| !matches!(e, FleetEvent::Lagged { .. })));
    assert!(matches!(events.first(), Some(FleetEvent::JobQueued { .. })));
    assert!(matches!(
        events.last(),
        Some(FleetEvent::JobFinished { .. })
    ));

    // All four chips reported in, each exactly once.
    let mut chips: Vec<u32> = events
        .iter()
        .filter_map(|e| match e {
            FleetEvent::ChipFinished { chip, .. } => Some(*chip),
            _ => None,
        })
        .collect();
    chips.sort_unstable();
    assert_eq!(chips, vec![0, 1, 2, 3]);

    // The replay contract: re-sealing the streamed per-chip payloads
    // reproduces the artifact trace byte for byte.
    assert_eq!(reassemble(&events), results.trace);

    // The streamed rollup numbers agree with the merged results.
    let Some(FleetEvent::JobFinished {
        chips: c,
        runs,
        power_cycles,
        ..
    }) = events.last()
    else {
        unreachable!("asserted above");
    };
    assert_eq!(u64::from(*c), 4);
    assert_eq!(*runs, results.runs);
    assert_eq!(*power_cycles, results.power_cycles);
}

#[test]
fn catch_up_subscription_replays_a_finished_job_identically() {
    let fleet = spec(Corner::Tff, 310, 3);
    let svc = FleetService::new(2, SharedCampaignCache::new()).expect("valid worker count");
    let (results, events) = svc.run(|| {
        let (job, _) = svc.submit("lab", &fleet).expect("valid spec");
        let results = results_of(svc.wait("lab", job));
        // Subscribing *after* completion replays the whole job from the
        // retained results — CI never races the scheduler.
        let sub = svc
            .subscribe("lab", job, 4096)
            .expect("finished jobs accept subscribers");
        (results, collect_until_terminal(&svc, &sub))
    });
    assert_eq!(reassemble(&events), results.trace);
    assert!(matches!(
        events.last(),
        Some(FleetEvent::JobFinished { .. })
    ));
}

#[test]
fn slow_consumer_gets_lagged_with_the_exact_drop_count() {
    let fleet = spec(Corner::Ttt, 320, 4);
    let svc = FleetService::new(2, SharedCampaignCache::new()).expect("valid worker count");
    let (fast_events, slow_events) = svc.run(|| {
        let (job, _) = svc.submit("lab", &fleet).expect("valid spec");
        let fast = svc.subscribe("lab", job, 4096).expect("subscribe");
        let slow = svc.subscribe("lab", job, 1).expect("subscribe");
        let _ = results_of(svc.wait("lab", job));
        // Neither subscriber drained during the run: the fast queue held
        // everything, the slow queue held one event and counted drops.
        (svc.try_events(&fast), svc.try_events(&slow))
    });

    assert!(fast_events
        .iter()
        .all(|e| !matches!(e, FleetEvent::Lagged { .. })));
    let published = fast_events.len() as u64;

    let Some(FleetEvent::Lagged { dropped, .. }) = slow_events.first() else {
        panic!("a slow consumer's first frame is `lagged`, got {slow_events:?}");
    };
    let kept = (slow_events.len() - 1) as u64;
    assert!(*dropped > 0, "a capacity-1 queue must have dropped events");
    assert_eq!(
        kept + dropped,
        published,
        "drop accounting is exact: kept {kept} + dropped {dropped} must equal {published}"
    );
}

#[test]
fn campaign_outcome_is_byte_identical_with_and_without_a_slow_subscriber() {
    let fleet = spec(Corner::Tss, 330, 3);

    let unobserved = {
        let svc = FleetService::new(2, SharedCampaignCache::new()).expect("valid worker count");
        svc.run(|| {
            let (job, _) = svc.submit("lab", &fleet).expect("valid spec");
            results_of(svc.wait("lab", job))
        })
    };
    let observed = {
        let svc = FleetService::new(2, SharedCampaignCache::new()).expect("valid worker count");
        svc.run(|| {
            let (job, _) = svc.submit("lab", &fleet).expect("valid spec");
            // A deliberately slow consumer: capacity 1, never drained.
            let _sub = svc.subscribe("lab", job, 1).expect("subscribe");
            results_of(svc.wait("lab", job))
        })
    };

    assert_eq!(
        observed.trace, unobserved.trace,
        "observation never perturbs"
    );
    assert_eq!(observed.metrics, unobserved.metrics);
    assert_eq!(observed.runs, unobserved.runs);
    assert_eq!(observed.executed_ops, unobserved.executed_ops);
}

#[test]
fn cancelling_a_queued_job_emits_a_terminal_event_with_accounting() {
    let fleet = spec(Corner::Ttt, 340, 5);
    let svc = FleetService::new(1, SharedCampaignCache::new()).expect("valid worker count");
    // No workers are running: the job stays queued, so the cancel's
    // partial-results accounting is exactly 0 of 5.
    let (job, _) = svc.submit("lab", &fleet).expect("valid spec");
    assert!(svc.cancel("lab", job));
    assert_eq!(svc.accounting("lab", job), Some((0, 5)));

    let sub = svc.subscribe("lab", job, 64).expect("subscribe");
    let events = svc.try_events(&sub);
    assert!(matches!(
        events.last(),
        Some(FleetEvent::JobCancelled {
            done: 0,
            total: 5,
            ..
        })
    ));

    let status = svc.status("lab", job).expect("known job");
    assert_eq!(status.state, "cancelled");
    assert!(matches!(svc.wait("lab", job), Some(JobOutcome::Cancelled)));
}

#[test]
fn status_reports_queue_position_and_progress() {
    let fleet_a = spec(Corner::Ttt, 350, 3);
    let fleet_b = spec(Corner::Ttt, 360, 2);
    let svc = FleetService::new(1, SharedCampaignCache::new()).expect("valid worker count");

    // Workers are not running yet: both jobs sit whole in the queue.
    let (job_a, _) = svc.submit("lab", &fleet_a).expect("valid spec");
    let (job_b, _) = svc.submit("lab", &fleet_b).expect("valid spec");

    let a = svc.status("lab", job_a).expect("known job");
    assert_eq!((a.state, a.queue_position, a.done), ("queued", 0, 0));
    assert!(a.progress.abs() < f64::EPSILON);

    // Job B's first pending unit waits behind all 3 of job A's chips.
    let b = svc.status("lab", job_b).expect("known job");
    assert_eq!((b.state, b.queue_position), ("queued", 3));

    svc.run(|| {
        let _ = results_of(svc.wait("lab", job_a));
        let _ = results_of(svc.wait("lab", job_b));
    });
    let a = svc.status("lab", job_a).expect("known job");
    assert_eq!(
        (a.state, a.queue_position, a.done, a.total),
        ("done", 0, 3, 3)
    );
    assert!((a.progress - 1.0).abs() < f64::EPSILON);
}

#[test]
fn unsubscribing_mid_job_never_affects_the_job() {
    let fleet = spec(Corner::Ttt, 370, 3);
    let svc = FleetService::new(2, SharedCampaignCache::new()).expect("valid worker count");
    let results = svc.run(|| {
        let (job, _) = svc.submit("lab", &fleet).expect("valid spec");
        let sub = svc.subscribe("lab", job, 4096).expect("subscribe");
        // Take one batch (at least the queued catch-up), then vanish —
        // like a watcher whose connection dropped mid-job.
        let first = svc.next_events(&sub).expect("live subscription");
        assert!(!first.is_empty());
        assert!(svc.unsubscribe(&sub));
        assert!(!svc.unsubscribe(&sub), "double unsubscribe is a no-op");
        assert!(svc.next_events(&sub).is_none(), "closed subs yield None");
        results_of(svc.wait("lab", job))
    });
    assert_eq!(results.chips, 3);
    assert!(!results.trace.is_empty());
}

/// The deterministic counter subset of an exposition: every `_total`
/// sample line, which by the counter-vs-gauge contract excludes all
/// wall-clock and observer-dependent state.
fn counter_subset(exposition: &str) -> String {
    exposition
        .lines()
        .filter(|l| l.contains("_total "))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn openmetrics_counter_subset_is_identical_across_same_seed_reruns() {
    let fleet = spec(Corner::Ttt, 380, 3);
    let run = |subscribe: bool| {
        let svc = FleetService::new(2, SharedCampaignCache::new()).expect("valid worker count");
        svc.run(|| {
            let (job, _) = svc.submit("lab", &fleet).expect("valid spec");
            let _sub = subscribe.then(|| svc.subscribe("lab", job, 1).expect("subscribe"));
            let _ = results_of(svc.wait("lab", job));
        });
        svc.openmetrics()
    };
    let first = run(false);
    let second = run(false);
    let observed = run(true);

    assert!(first.ends_with("# EOF\n"), "{first}");
    let counters = counter_subset(&first);
    assert!(
        counters.contains("voltmargin_fleet_jobs_completed_total 1"),
        "{counters}"
    );
    assert!(
        counters.contains("voltmargin_fleet_chips_completed_total 3"),
        "{counters}"
    );
    assert_eq!(
        counters,
        counter_subset(&second),
        "deterministic counters must be rerun-stable"
    );
    assert_eq!(
        counters,
        counter_subset(&observed),
        "subscriber presence must not leak into the counter subset"
    );

    // The observer-dependent tallies are exposed — but as gauges, outside
    // the CI-diffable subset.
    assert!(
        first.contains("voltmargin_fleet_events_enqueued"),
        "{first}"
    );
    assert!(
        first.contains("voltmargin_fleet_subscriber_lag_drops"),
        "{first}"
    );
}

#[test]
fn health_snapshot_tracks_the_job_lifecycle() {
    let fleet = spec(Corner::Ttt, 390, 2);
    let svc = FleetService::new(3, SharedCampaignCache::new()).expect("valid worker count");

    let idle = svc.health();
    assert_eq!((idle.workers, idle.busy, idle.jobs_done), (3, 0, 0));

    let (job, _) = svc.submit("lab", &fleet).expect("valid spec");
    let queued = svc.health();
    assert_eq!((queued.jobs_queued, queued.queued_units), (1, 2));

    svc.run(|| {
        let _ = results_of(svc.wait("lab", job));
    });
    let done = svc.health();
    assert_eq!(
        (
            done.jobs_queued,
            done.jobs_running,
            done.jobs_done,
            done.busy
        ),
        (0, 0, 1, 0)
    );
    assert_eq!(done.subscribers, 0);
}
