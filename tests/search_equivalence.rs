//! Conformance suite for the adaptive Vmin search engine: bisection and
//! warm-start campaigns must report the same characterization as the
//! exhaustive sweep, serial and sharded adaptive executions must be
//! indistinguishable, and cached reruns must replay the outcome exactly.
//!
//! The equivalence claim is scoped by the paper's §3 region model: on
//! every item whose full-grid step verdicts form contiguous regions (Safe
//! above Unsafe above Crash — the regions the paper's Figure 4 draws), an
//! adaptive search provably reports byte-identical boundaries, severity
//! and region classifications. Each test derives that domain in-process
//! from the exhaustive sweep itself, so the suite is robust to the exact
//! fault realizations of the environment it runs in: items where the
//! sampled verdicts violate contiguity (possible at low iteration counts
//! right at the stochastic boundary) carry no equivalence promise and are
//! excluded, and the suite asserts the domain is never empty.

use voltmargin::characterize::cache::CampaignCache;
use voltmargin::characterize::config::CampaignConfig;
use voltmargin::characterize::regions::{analyze, RegionKind, SweepSummary};
use voltmargin::characterize::runner::{Campaign, CampaignOutcome};
use voltmargin::characterize::search::{ItemPrior, SearchPriors, SearchStrategy};
use voltmargin::characterize::severity::SeverityWeights;
use voltmargin::sim::{ChipSpec, CoreId, Corner, Millivolts};
use voltmargin::trace::{MemorySink, MetricsRegistry, Sink};

/// Golden fixture set: one sensitive and one robust core on the typical
/// chip, plus one core each on the fast and slow corners.
const FIXTURES: [(Corner, u64, &str, u8); 4] = [
    (Corner::Ttt, 0, "bwaves", 0),
    (Corner::Ttt, 0, "namd", 4),
    (Corner::Tff, 1, "mcf", 2),
    (Corner::Tss, 2, "milc", 6),
];

/// Runs one single-item campaign over the full 930 → 850 mV grid (the
/// crash-stop is disabled so the exhaustive leg reveals every verdict)
/// and returns the outcome plus the machine-executed voltage steps.
fn run_fixture(
    spec: ChipSpec,
    bench: &str,
    core: u8,
    strategy: SearchStrategy,
    priors: Option<&SearchPriors>,
) -> (CampaignOutcome, u64) {
    let config = CampaignConfig::builder()
        .benchmarks([bench])
        .cores([CoreId::new(core)])
        .iterations(3)
        .start_voltage(Millivolts::new(930))
        .floor_voltage(Millivolts::new(850))
        .crash_stop_steps(99)
        .seed(0x5EA7C4)
        .search(strategy)
        .build()
        .expect("fixture configuration is valid");
    let campaign = Campaign::new(spec, config);
    let mut metrics = MetricsRegistry::new();
    let mut sinks: Vec<&mut dyn Sink> = vec![&mut metrics];
    let outcome = campaign.execute_with(2, &mut sinks, None, priors);
    (outcome, metrics.counter("voltage_steps"))
}

/// Whether a summary's step verdicts form contiguous regions — the
/// hypothesis under which adaptive search is provably exact.
fn contiguous_regions(summary: &SweepSummary) -> bool {
    let mut seen_abnormal = false;
    let mut seen_crash = false;
    for step in &summary.steps {
        match step.region {
            RegionKind::Safe => {
                if seen_abnormal {
                    return false;
                }
            }
            RegionKind::Unsafe => {
                if seen_crash {
                    return false;
                }
                seen_abnormal = true;
            }
            RegionKind::Crash => {
                seen_abnormal = true;
                seen_crash = true;
            }
        }
    }
    true
}

/// The warm-start prior a cache or predictor would derive from an
/// exhaustive characterization of the same item.
fn prior_from(summary: &SweepSummary) -> SearchPriors {
    let mut priors = SearchPriors::new();
    priors.insert(
        &summary.program,
        &summary.dataset,
        summary.core,
        ItemPrior {
            vmin_mv: summary.safe_vmin.map(|v| v.get().saturating_sub(5)),
            crash_mv: summary.highest_crash.map(Millivolts::get),
        },
    );
    priors
}

#[test]
fn bisection_and_warm_start_match_exhaustive_on_contiguous_items() {
    let mut comparable = 0usize;
    for (corner, serial, bench, core) in FIXTURES {
        let spec = ChipSpec::new(corner, serial);
        let (ex_out, ex_steps) = run_fixture(spec, bench, core, SearchStrategy::Exhaustive, None);
        let exhaustive = analyze(&ex_out, &SeverityWeights::paper());
        let reference = &exhaustive.summaries[0];
        let full_grid = reference.steps.len() == ex_out.config.step_count() as usize;
        if !(full_grid && contiguous_regions(reference)) {
            continue;
        }
        comparable += 1;

        let priors = prior_from(reference);
        let legs = [
            (SearchStrategy::Bisection, None),
            (SearchStrategy::WarmStart, Some(&priors)),
        ];
        for (strategy, priors) in legs {
            let (out, steps) = run_fixture(spec, bench, core, strategy, priors);
            let adaptive = analyze(&out, &SeverityWeights::paper());
            let summary = &adaptive.summaries[0];
            assert_eq!(
                summary.safe_vmin, reference.safe_vmin,
                "{strategy} Vmin diverged on {bench} core{core} ({corner:?})"
            );
            assert_eq!(
                summary.highest_crash, reference.highest_crash,
                "{strategy} crash boundary diverged on {bench} core{core}"
            );
            // Every step the adaptive search probed must carry the exact
            // per-iteration effects, severity and region classification
            // of the exhaustive sweep — the same grid point on a pristine
            // board yields the same runs regardless of the probe order.
            for step in &summary.steps {
                let expected = reference
                    .step(Millivolts::new(step.mv))
                    .expect("adaptive searches probe grid steps only");
                assert_eq!(step, expected, "{strategy} at {}mV", step.mv);
            }
            assert_eq!(
                out.goldens, ex_out.goldens,
                "golden digests must not depend on the strategy"
            );
            assert!(
                steps < ex_steps,
                "{strategy} probed {steps} steps, exhaustive {ex_steps}"
            );
        }
    }
    assert!(
        comparable >= 1,
        "no fixture produced a fully-swept contiguous-region item"
    );
}

#[test]
fn serial_and_sharded_adaptive_campaigns_are_identical() {
    let run = |threads: usize| {
        let config = CampaignConfig::builder()
            .benchmarks(["bwaves", "namd", "mcf", "milc"])
            .cores([CoreId::new(0), CoreId::new(4)])
            .iterations(2)
            .start_voltage(Millivolts::new(915))
            .floor_voltage(Millivolts::new(885))
            .seed(11)
            .search(SearchStrategy::Bisection)
            .build()
            .expect("valid configuration");
        let campaign = Campaign::new(ChipSpec::new(Corner::Ttt, 0), config);
        let mut memory = MemorySink::new();
        let mut sinks: Vec<&mut dyn Sink> = vec![&mut memory];
        let outcome = campaign.execute_with(threads, &mut sinks, None, None);
        (outcome, memory.records)
    };
    let (serial, serial_records) = run(1);
    let (sharded, sharded_records) = run(4);

    assert_eq!(serial.runs, sharded.runs);
    assert_eq!(serial.goldens, sharded.goldens);
    assert_eq!(serial.watchdog_power_cycles, sharded.watchdog_power_cycles);
    assert_eq!(
        serial_records, sharded_records,
        "adaptive trace streams must not depend on sharding"
    );
    // When the serializer is available, the JSONL rendering is
    // byte-identical too (the stream carries its own seq/clock stamps).
    let render = |records: &[voltmargin::trace::TraceRecord]| {
        records
            .iter()
            .map(voltmargin::trace::TraceRecord::to_json_line)
            .collect::<Result<Vec<String>, _>>()
    };
    if let (Ok(a), Ok(b)) = (render(&serial_records), render(&sharded_records)) {
        assert_eq!(a, b, "JSONL streams must be byte-identical");
    }
}

#[test]
fn adaptive_search_visits_at_most_40_percent_of_the_reference_grid() {
    let reference_config = |strategy: SearchStrategy| {
        CampaignConfig::builder()
            .benchmarks(voltmargin::workloads::suite::FIGURE4_NAMES.iter().copied())
            .cores(CoreId::all())
            .iterations(2)
            .start_voltage(Millivolts::new(945))
            .floor_voltage(Millivolts::new(830))
            .crash_stop_steps(2)
            .seed(0xF164)
            .search(strategy)
            .build()
            .expect("reference configuration is valid")
    };
    let run = |strategy: SearchStrategy, priors: Option<&SearchPriors>| {
        let campaign = Campaign::new(ChipSpec::new(Corner::Ttt, 0), reference_config(strategy));
        let mut metrics = MetricsRegistry::new();
        let mut sinks: Vec<&mut dyn Sink> = vec![&mut metrics];
        let outcome = campaign.execute_with(8, &mut sinks, None, priors);
        (outcome, metrics.counter("voltage_steps"))
    };

    let (ex_out, exhaustive_steps) = run(SearchStrategy::Exhaustive, None);
    let (_, bisection_steps) = run(SearchStrategy::Bisection, None);
    let mut priors = SearchPriors::new();
    for s in &analyze(&ex_out, &SeverityWeights::paper()).summaries {
        priors.insert(
            &s.program,
            &s.dataset,
            s.core,
            ItemPrior {
                vmin_mv: s.safe_vmin.map(|v| v.get().saturating_sub(5)),
                crash_mv: s.highest_crash.map(Millivolts::get),
            },
        );
    }
    let (_, warm_steps) = run(SearchStrategy::WarmStart, Some(&priors));

    assert!(exhaustive_steps > 0);
    assert!(
        bisection_steps * 100 <= exhaustive_steps * 40,
        "bisection visited {bisection_steps} of the exhaustive sweep's {exhaustive_steps} steps"
    );
    assert!(
        warm_steps * 100 <= exhaustive_steps * 40,
        "warm-start visited {warm_steps} of the exhaustive sweep's {exhaustive_steps} steps"
    );
    assert!(warm_steps <= bisection_steps);
}

#[test]
fn cached_rerun_reports_full_hits_and_identical_outcome() {
    let config = || {
        CampaignConfig::builder()
            .benchmarks(["bwaves", "namd"])
            .cores([CoreId::new(0), CoreId::new(4)])
            .iterations(2)
            .start_voltage(Millivolts::new(915))
            .floor_voltage(Millivolts::new(885))
            .seed(7)
            .search(SearchStrategy::Bisection)
            .build()
            .expect("valid configuration")
    };
    let mut cache = CampaignCache::new();

    let run = |cache: &mut CampaignCache| {
        let campaign = Campaign::new(ChipSpec::new(Corner::Ttt, 0), config());
        let mut metrics = MetricsRegistry::new();
        let mut sinks: Vec<&mut dyn Sink> = vec![&mut metrics];
        let outcome = campaign.execute_with(2, &mut sinks, Some(cache), None);
        (outcome, metrics)
    };

    let (cold, cold_metrics) = run(&mut cache);
    assert!(cold_metrics.counter("campaign_cache_misses") > 0);
    assert!(!cache.is_empty());

    let (warm, warm_metrics) = run(&mut cache);
    assert_eq!(warm.runs, cold.runs);
    assert_eq!(warm.goldens, cold.goldens);
    assert_eq!(warm.watchdog_power_cycles, cold.watchdog_power_cycles);
    assert_eq!(
        warm_metrics.counter("campaign_cache_misses"),
        0,
        "a warmed cache must answer every probe"
    );
    assert!(warm_metrics.counter("campaign_cache_hits") > 0);
    assert_eq!(
        warm_metrics.counter("voltage_steps"),
        0,
        "a fully-cached rerun must not execute any machine probe"
    );
}
