//! End-to-end tests of the `voltmargin` command-line tool.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};

fn voltmargin(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_voltmargin"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn list_benchmarks_names_the_whole_suite() {
    let out = voltmargin(&["list-benchmarks"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for name in voltmargin::workloads::suite::ALL_NAMES {
        assert!(stdout.contains(name), "missing {name}");
    }
    assert!(stdout.contains("selftest-fpu"));
}

#[test]
fn characterize_writes_csv_artifacts() {
    let dir = std::env::temp_dir().join(format!("voltmargin-cli-{}", std::process::id()));
    let out = voltmargin(&[
        "characterize",
        "--benchmarks",
        "namd",
        "--cores",
        "4",
        "--iterations",
        "2",
        "--start",
        "890",
        "--floor",
        "875",
        "--threads",
        "2",
        "--out-dir",
        dir.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("namd"));
    assert!(stdout.contains("vmin="));
    for file in ["runs.csv", "regions.csv", "severity.csv"] {
        let path = dir.join(file);
        let data = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert!(data.lines().count() > 1, "{file} has rows");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_usage_fails_with_help() {
    let out = voltmargin(&["explode"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage: voltmargin"));

    let out = voltmargin(&["characterize"]); // missing --benchmarks
    assert!(!out.status.success());

    let out = voltmargin(&["characterize", "--benchmarks", "nosuch"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown benchmark"));
}

#[test]
fn profile_prints_counter_columns() {
    let out = voltmargin(&["profile", "--benchmarks", "namd,mcf", "--cores", "0"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("INST_RETIRED"));
    assert!(stdout.contains("namd"));
    assert!(stdout.contains("mcf"));
}

#[test]
fn profile_unknown_benchmark_reports_a_clean_error() {
    let out = voltmargin(&["profile", "--benchmarks", "nosuch", "--cores", "0"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("unknown benchmark 'nosuch'"),
        "stderr: {stderr}"
    );
}

#[test]
fn profile_near_miss_suggests_the_closest_benchmark() {
    let out = voltmargin(&["profile", "--benchmarks", "namd2", "--cores", "0"]);
    assert_eq!(out.status.code(), Some(2), "usage errors exit with 2");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("unknown benchmark 'namd2'"),
        "stderr: {stderr}"
    );
    assert!(stderr.contains("did you mean 'namd'"), "stderr: {stderr}");
}

#[test]
fn characterize_cache_replays_a_second_run() {
    let dir = std::env::temp_dir().join(format!("voltmargin-cachecli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("vmin-cache.jsonl");
    let run = || {
        voltmargin(&[
            "characterize",
            "--benchmarks",
            "namd",
            "--cores",
            "4",
            "--iterations",
            "2",
            "--start",
            "890",
            "--floor",
            "875",
            "--threads",
            "2",
            "--search",
            "bisection",
            "--cache",
            cache.to_str().unwrap(),
        ])
    };
    let cold = run();
    assert!(
        cold.status.success(),
        "{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let cold_stderr = String::from_utf8(cold.stderr).unwrap();
    assert!(
        cold_stderr.contains("entries saved to"),
        "stderr: {cold_stderr}"
    );
    let persisted = std::fs::read_to_string(&cache).unwrap();
    assert!(persisted.lines().count() > 0, "cache file has entries");

    let warm = run();
    assert!(
        warm.status.success(),
        "{}",
        String::from_utf8_lossy(&warm.stderr)
    );
    let warm_stderr = String::from_utf8(warm.stderr).unwrap();
    assert!(
        warm_stderr.contains("entries loaded from"),
        "stderr: {warm_stderr}"
    );
    assert_eq!(
        String::from_utf8_lossy(&warm.stdout),
        String::from_utf8_lossy(&cold.stdout),
        "a cache replay must report the identical characterization"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn characterize_streams_trace_and_progress() {
    let dir = std::env::temp_dir().join(format!("voltmargin-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("campaign.jsonl");
    let out = voltmargin(&[
        "characterize",
        "--benchmarks",
        "namd",
        "--cores",
        "4",
        "--iterations",
        "2",
        "--start",
        "890",
        "--floor",
        "875",
        "--threads",
        "2",
        "--trace",
        trace.to_str().unwrap(),
        "--progress",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("sweeping namd on core4"),
        "stderr: {stderr}"
    );
    assert!(stderr.contains("campaign finished"), "stderr: {stderr}");
    assert!(stderr.contains("campaign metrics:"), "stderr: {stderr}");
    assert!(stderr.contains("runs_total"), "stderr: {stderr}");

    let data = std::fs::read_to_string(&trace).unwrap();
    let stats = voltmargin::trace::validate_jsonl(&data).expect("trace stream validates");
    assert_eq!(stats.campaigns, 1);
    assert_eq!(stats.sweeps, 1);
    assert!(stats.runs >= 2, "at least one voltage step of 2 iterations");
    assert_eq!(stats.records as usize, data.lines().count());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn characterize_metrics_out_writes_deterministic_openmetrics() {
    let dir = std::env::temp_dir().join(format!("voltmargin-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let run = |name: &str, threads: &str| {
        let path = dir.join(name);
        let out = voltmargin(&[
            "characterize",
            "--benchmarks",
            "namd",
            "--cores",
            "4",
            "--iterations",
            "2",
            "--start",
            "890",
            "--floor",
            "875",
            "--threads",
            threads,
            "--metrics-out",
            path.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(
            stderr.contains("wrote campaign metrics to"),
            "stderr: {stderr}"
        );
        std::fs::read_to_string(&path).unwrap()
    };
    let serial = run("serial.om", "1");
    assert!(serial.contains("voltmargin_campaigns_total 1"), "{serial}");
    assert!(serial.contains("voltmargin_runs_total"), "{serial}");
    assert!(serial.ends_with("# EOF\n"), "{serial}");
    // The registry rides the deterministic record stream, so the
    // exposition is byte-identical across reruns and thread counts.
    assert_eq!(serial, run("serial2.om", "1"));
    assert_eq!(serial, run("sharded.om", "4"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn govern_metrics_out_exposes_the_decision() {
    let dir = std::env::temp_dir().join(format!("voltmargin-govmetrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let metrics = dir.join("decision.om");
    let out = voltmargin(&[
        "govern",
        "--tasks",
        "namd,dealII",
        "--iterations",
        "2",
        "--threads",
        "8",
        "--max-loss",
        "0.25",
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let data = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        data.contains("voltmargin_governor_decisions_total 1"),
        "{data}"
    );
    assert!(data.ends_with("# EOF\n"), "{data}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn govern_trace_records_the_decision() {
    let dir = std::env::temp_dir().join(format!("voltmargin-govtrace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("decision.jsonl");
    let out = voltmargin(&[
        "govern",
        "--tasks",
        "namd,dealII",
        "--iterations",
        "2",
        "--threads",
        "8",
        "--max-loss",
        "0.25",
        "--trace",
        trace.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let data = std::fs::read_to_string(&trace).unwrap();
    assert_eq!(data.lines().count(), 1, "one decision record: {data}");
    assert!(
        data.contains("\"event\":\"VoltageDecision\""),
        "trace: {data}"
    );
    let stats = voltmargin::trace::validate_jsonl(&data).expect("decision stream validates");
    assert_eq!(stats.records, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn characterize_executors_write_byte_identical_traces() {
    let dir = std::env::temp_dir().join(format!("voltmargin-execcli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let run = |executor: &str, name: &str| {
        let path = dir.join(name);
        let out = voltmargin(&[
            "characterize",
            "--benchmarks",
            "namd",
            "--cores",
            "4",
            "--iterations",
            "2",
            "--start",
            "890",
            "--floor",
            "875",
            "--threads",
            "2",
            "--executor",
            executor,
            "--trace",
            path.to_str().unwrap(),
        ]);
        assert!(
            out.status.success(),
            "--executor {executor}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::fs::read_to_string(&path).unwrap()
    };
    let serial = run("serial", "serial.jsonl");
    let pool = run("pool", "pool.jsonl");
    assert!(!serial.is_empty());
    assert_eq!(
        serial, pool,
        "the executor choice must never reach the deterministic stream"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn characterize_rejects_bad_executor_configs() {
    let out = voltmargin(&[
        "characterize",
        "--benchmarks",
        "namd",
        "--executor",
        "quantum",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("unknown executor 'quantum'"),
        "stderr: {stderr}"
    );

    let out = voltmargin(&["characterize", "--benchmarks", "namd", "--threads", "0"]);
    assert!(!out.status.success(), "a zero-thread pool must be rejected");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("at least one"), "stderr: {stderr}");
}

#[test]
fn cache_compact_drops_duplicates_and_is_idempotent() {
    let dir = std::env::temp_dir().join(format!("voltmargin-compact-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("cache.jsonl");
    let out = voltmargin(&[
        "characterize",
        "--benchmarks",
        "namd",
        "--cores",
        "4",
        "--iterations",
        "2",
        "--start",
        "890",
        "--floor",
        "880",
        "--cache",
        cache.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let canonical = std::fs::read_to_string(&cache).unwrap();
    assert!(!canonical.is_empty());

    // An append-style log with every line duplicated: compaction must
    // restore the canonical bytes exactly.
    std::fs::write(&cache, format!("{canonical}{canonical}")).unwrap();
    let out = voltmargin(&["cache", "compact", cache.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("compacted"), "stdout: {stdout}");
    assert_eq!(std::fs::read_to_string(&cache).unwrap(), canonical);

    // Idempotent: a second pass changes nothing and says so.
    let out = voltmargin(&["cache", "compact", cache.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("already compact"), "stdout: {stdout}");
    assert_eq!(std::fs::read_to_string(&cache).unwrap(), canonical);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_compact_reports_clean_errors() {
    let out = voltmargin(&["cache", "compact", "/nonexistent/never.jsonl"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error:"));

    let dir = std::env::temp_dir().join(format!("voltmargin-compacterr-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corrupt.jsonl");
    std::fs::write(&path, "not json\n").unwrap();
    let out = voltmargin(&["cache", "compact", path.to_str().unwrap()]);
    assert!(!out.status.success(), "corrupt input must fail");
    // The corrupt file is left untouched.
    assert_eq!(std::fs::read_to_string(&path).unwrap(), "not json\n");

    let out = voltmargin(&["cache", "polish"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown cache subcommand"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn help_names_every_subcommand() {
    let out = voltmargin(&["help"]);
    assert!(out.status.success(), "help exits 0");
    let stdout = String::from_utf8(out.stdout).unwrap();
    for command in [
        "characterize",
        "profile",
        "govern",
        "serve",
        "watch",
        "cache compact",
        "list-benchmarks",
        "help",
    ] {
        assert!(stdout.contains(command), "help must name '{command}'");
    }
    // The error path prints the same usage text, so the two can never
    // drift apart.
    let err = voltmargin(&["explode"]);
    let stderr = String::from_utf8(err.stderr).unwrap();
    assert!(stderr.contains("serve"), "usage on stderr names serve");
}

#[test]
fn serve_rejects_zero_workers_with_a_typed_error() {
    let out = voltmargin(&["serve", "--addr", "127.0.0.1:0", "--workers", "0"]);
    assert_eq!(out.status.code(), Some(2), "usage errors exit with 2");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("error: serve:"), "stderr: {stderr}");
    assert!(stderr.contains("at least one"), "stderr: {stderr}");
}

#[test]
fn serve_reports_bind_failures() {
    // Occupy a port, then ask the daemon to bind it.
    let blocker = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = blocker.local_addr().unwrap().to_string();
    let out = voltmargin(&["serve", "--addr", &addr, "--workers", "1"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains(&format!("cannot bind {addr}")),
        "stderr: {stderr}"
    );
}

#[test]
fn serve_answers_clients_and_shuts_down_cleanly() {
    use voltmargin::characterize::search::SearchStrategy;
    use voltmargin::fleet::{FleetEvent, FleetSpec, Request, Response, PROTO_VERSION};
    use voltmargin::sim::Corner;
    use voltmargin::trace::{merge_streams, read_jsonl};

    let dir = std::env::temp_dir().join(format!("voltmargin-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("fleet-cache.jsonl");
    let out_dir = dir.join("artifacts");

    let mut child = Command::new(env!("CARGO_BIN_EXE_voltmargin"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--cache",
            cache.to_str().unwrap(),
            "--out-dir",
            out_dir.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon starts");

    // Port 0 means the daemon prints the address it actually bound.
    let mut child_stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut banner = String::new();
    child_stdout.read_line(&mut banner).unwrap();
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner:?}"))
        .to_owned();

    let stream = TcpStream::connect(&addr).expect("daemon accepts");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    fn exchange(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> Response {
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        Response::parse_line(&reply).expect("daemon frames decode")
    }

    // Hostile bytes never kill the connection — they are answered with
    // typed, versioned error frames.
    let Response::Error { proto, code, .. } =
        exchange(&mut writer, &mut reader, "this is not json")
    else {
        panic!("garbage must yield an error frame");
    };
    assert_eq!((proto, code.as_str()), (PROTO_VERSION, "malformed"));
    let Response::Error { code, .. } = exchange(&mut writer, &mut reader, "{\"kind\":\"reboot\"}")
    else {
        panic!("unknown kinds must yield an error frame");
    };
    assert_eq!(code, "unknown-kind");

    // A real characterization round trip.
    let spec = FleetSpec {
        corner: Corner::Ttt,
        first_serial: 7,
        chips: 2,
        benchmarks: vec!["namd".into()],
        cores: vec![0],
        iterations: 1,
        start_mv: 890,
        floor_mv: 885,
        seed: 5,
        search: SearchStrategy::Exhaustive,
    };
    let bad = Request::Submit {
        client: "ci".into(),
        spec: FleetSpec {
            chips: 0,
            ..spec.clone()
        },
    };
    let Response::Error { code, message, .. } = exchange(&mut writer, &mut reader, &bad.to_line())
    else {
        panic!("invalid specs must yield an error frame");
    };
    assert_eq!(code, "bad-spec");
    assert!(message.contains("at least one chip"), "{message}");

    let submit = Request::Submit {
        client: "ci".into(),
        spec,
    };
    let Response::Submitted { job, chips } = exchange(&mut writer, &mut reader, &submit.to_line())
    else {
        panic!("valid submits are acknowledged");
    };
    assert_eq!(chips, 2);

    let results = Request::Results {
        client: "ci".into(),
        job,
    };
    let Response::Results {
        chips,
        executed_ops,
        trace,
        metrics,
        ..
    } = exchange(&mut writer, &mut reader, &results.to_line())
    else {
        panic!("results arrive for a completed job");
    };
    assert_eq!(chips, 2);
    assert!(executed_ops > 0, "cold run probes boards");
    assert!(trace.contains("TTT#7") && trace.contains("TTT#8"));
    assert!(metrics.ends_with("# EOF\n"));

    // Daemon health and metrics exposition over the wire.
    let Response::Health(health) = exchange(&mut writer, &mut reader, &Request::Health.to_line())
    else {
        panic!("health requests are answered with a snapshot");
    };
    assert_eq!(health.workers, 2);
    assert_eq!(health.jobs_done, 1);
    let Response::Metrics { body } =
        exchange(&mut writer, &mut reader, &Request::Metrics.to_line())
    else {
        panic!("metrics requests are answered with an exposition");
    };
    assert!(body.ends_with("# EOF\n"), "{body}");
    assert!(
        body.contains("voltmargin_fleet_jobs_completed_total 1"),
        "{body}"
    );

    // Subscribing to the finished job replays it from the retained
    // results; re-sealing the streamed per-chip payloads reproduces the
    // artifact trace byte for byte.
    let sub = Request::Subscribe {
        client: "ci".into(),
        job,
    };
    let Response::Subscribed { job: sub_job } = exchange(&mut writer, &mut reader, &sub.to_line())
    else {
        panic!("owners can subscribe to their jobs");
    };
    assert_eq!(sub_job, job);
    let mut streams = std::collections::BTreeMap::new();
    loop {
        let mut frame = String::new();
        reader.read_line(&mut frame).unwrap();
        let Response::Event(event) = Response::parse_line(&frame).expect("event frames decode")
        else {
            panic!("only event frames flow after the subscribe ack: {frame}");
        };
        match event {
            FleetEvent::ChipFinished { chip, trace, .. } => {
                streams.insert(chip, read_jsonl(&trace).expect("streamed traces parse"));
            }
            FleetEvent::JobFinished { .. } => break,
            FleetEvent::Lagged { .. } => panic!("a drained subscriber never lags"),
            _ => {}
        }
    }
    let replay: String = merge_streams(streams.values().map(Vec::as_slice))
        .iter()
        .map(|r| r.to_json_line().expect("records encode") + "\n")
        .collect();
    assert_eq!(replay, trace, "subscription replay matches the artifact");
    let unsub = Request::Unsubscribe {
        client: "ci".into(),
        job,
    };
    writeln!(writer, "{}", unsub.to_line()).unwrap();
    writer.flush().unwrap();
    let mut ack = String::new();
    reader.read_line(&mut ack).unwrap();
    assert_eq!(
        Response::parse_line(&ack).expect("ack decodes"),
        Response::Unsubscribed { job }
    );

    // The `watch` subcommand follows the job to its terminal event and
    // re-seals the streamed per-chip payloads into a replay trace that
    // matches the artifact byte for byte.
    let replay_path = dir.join("watch-replay.jsonl");
    let watch = voltmargin(&[
        "watch",
        "--addr",
        &addr,
        "--client",
        "ci",
        "--job",
        &job.to_string(),
        "--trace-out",
        replay_path.to_str().unwrap(),
    ]);
    assert!(
        watch.status.success(),
        "{}",
        String::from_utf8_lossy(&watch.stderr)
    );
    let narration = String::from_utf8(watch.stdout).unwrap();
    assert!(narration.contains("finished"), "stdout: {narration}");
    assert_eq!(
        std::fs::read_to_string(&replay_path).unwrap(),
        trace,
        "watch --trace-out matches the artifact"
    );

    // A subscriber that vanishes mid-stream (socket dropped with its
    // backlog unread) never kills the daemon.
    {
        let abrupt = TcpStream::connect(&addr).expect("daemon accepts");
        let mut w = abrupt.try_clone().unwrap();
        let mut r = BufReader::new(abrupt);
        let sub = Request::Subscribe {
            client: "ci".into(),
            job,
        };
        writeln!(w, "{}", sub.to_line()).unwrap();
        w.flush().unwrap();
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert!(matches!(
            Response::parse_line(&line),
            Ok(Response::Subscribed { .. })
        ));
        // Dropped here with queued events still in flight.
    }

    assert_eq!(
        exchange(&mut writer, &mut reader, &Request::Shutdown.to_line()),
        Response::Bye
    );
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "clean shutdown exits 0");

    // The shared cache was persisted and per-client artifacts written.
    let persisted = std::fs::read_to_string(&cache).unwrap();
    assert!(persisted.lines().count() > 0, "cache file has entries");
    let artifact = out_dir.join("ci").join(format!("job{job}"));
    assert_eq!(
        std::fs::read_to_string(artifact.join("trace.jsonl")).unwrap(),
        trace
    );
    assert_eq!(
        std::fs::read_to_string(artifact.join("metrics.om")).unwrap(),
        metrics
    );
    let _ = std::fs::remove_dir_all(&dir);
}
