//! End-to-end tests of the `voltmargin` command-line tool.

use std::process::Command;

fn voltmargin(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_voltmargin"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn list_benchmarks_names_the_whole_suite() {
    let out = voltmargin(&["list-benchmarks"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for name in voltmargin::workloads::suite::ALL_NAMES {
        assert!(stdout.contains(name), "missing {name}");
    }
    assert!(stdout.contains("selftest-fpu"));
}

#[test]
fn characterize_writes_csv_artifacts() {
    let dir = std::env::temp_dir().join(format!("voltmargin-cli-{}", std::process::id()));
    let out = voltmargin(&[
        "characterize",
        "--benchmarks",
        "namd",
        "--cores",
        "4",
        "--iterations",
        "2",
        "--start",
        "890",
        "--floor",
        "875",
        "--threads",
        "2",
        "--out-dir",
        dir.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("namd"));
    assert!(stdout.contains("vmin="));
    for file in ["runs.csv", "regions.csv", "severity.csv"] {
        let path = dir.join(file);
        let data = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert!(data.lines().count() > 1, "{file} has rows");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_usage_fails_with_help() {
    let out = voltmargin(&["explode"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage: voltmargin"));

    let out = voltmargin(&["characterize"]); // missing --benchmarks
    assert!(!out.status.success());

    let out = voltmargin(&["characterize", "--benchmarks", "nosuch"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("unknown benchmark"));
}

#[test]
fn profile_prints_counter_columns() {
    let out = voltmargin(&["profile", "--benchmarks", "namd,mcf", "--cores", "0"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("INST_RETIRED"));
    assert!(stdout.contains("namd"));
    assert!(stdout.contains("mcf"));
}
