//! Cross-crate integration: the full characterization pipeline on a small
//! but real campaign, checking the paper's qualitative findings.

use voltmargin::characterize::config::CampaignConfig;
use voltmargin::characterize::effect::Effect;
use voltmargin::characterize::regions::{analyze, RegionKind};
use voltmargin::characterize::report;
use voltmargin::characterize::runner::Campaign;
use voltmargin::characterize::severity::SeverityWeights;
use voltmargin::sim::{ChipSpec, CoreId, Corner, Millivolts};

fn characterize(
    benches: &[&str],
    cores: &[u8],
    hi: u32,
    lo: u32,
    iters: u32,
) -> voltmargin::characterize::CharacterizationResult {
    let config = CampaignConfig::builder()
        .benchmarks(benches.iter().copied())
        .cores(cores.iter().map(|c| CoreId::new(*c)))
        .iterations(iters)
        .start_voltage(Millivolts::new(hi))
        .floor_voltage(Millivolts::new(lo))
        .seed(0xE2E)
        .build()
        .expect("valid config");
    let outcome = Campaign::new(ChipSpec::new(Corner::Ttt, 0), config).execute_parallel(4);
    analyze(&outcome, &SeverityWeights::paper())
}

#[test]
fn regions_are_ordered_safe_unsafe_crash() {
    let result = characterize(&["bwaves"], &[0], 925, 855, 5);
    let s = result.summary("bwaves", "ref", CoreId::new(0)).unwrap();
    // The sweep must exhibit all three regions.
    let kinds: Vec<RegionKind> = s.steps.iter().map(|st| st.region).collect();
    assert!(kinds.contains(&RegionKind::Safe));
    assert!(kinds.contains(&RegionKind::Unsafe));
    assert!(kinds.contains(&RegionKind::Crash));
    // Safe steps form a prefix (descending voltage).
    let first_abnormal = kinds.iter().position(|k| *k != RegionKind::Safe).unwrap();
    assert!(kinds[..first_abnormal]
        .iter()
        .all(|k| *k == RegionKind::Safe));
    // Vmin above highest crash.
    let vmin = s.safe_vmin.unwrap();
    let crash = s.highest_crash.unwrap();
    assert!(vmin > crash, "vmin {vmin} vs crash {crash}");
}

#[test]
fn workload_ordering_bwaves_above_mcf() {
    // The FP-dense bwaves needs more voltage than the pointer-chasing mcf
    // on the same core (Figure 3's workload-to-workload variation).
    let result = characterize(&["bwaves", "mcf"], &[4], 925, 845, 5);
    let bwaves = result
        .summary("bwaves", "ref", CoreId::new(4))
        .and_then(|s| s.safe_vmin)
        .expect("bwaves vmin");
    let mcf = result
        .summary("mcf", "ref", CoreId::new(4))
        .and_then(|s| s.safe_vmin)
        .expect("mcf vmin");
    assert!(bwaves > mcf, "bwaves {bwaves} vs mcf {mcf}");
}

#[test]
fn core_to_core_variation_pmd2_beats_pmd0() {
    // §3.3: PMD 2 (cores 4/5) is the most robust, PMD 0 the most sensitive.
    let result = characterize(&["milc"], &[0, 4], 930, 845, 6);
    let sensitive = result
        .summary("milc", "ref", CoreId::new(0))
        .and_then(|s| s.safe_vmin)
        .expect("core0 vmin");
    let robust = result
        .summary("milc", "ref", CoreId::new(4))
        .and_then(|s| s.safe_vmin)
        .expect("core4 vmin");
    assert!(
        robust < sensitive,
        "core4 {robust} must undervolt deeper than core0 {sensitive}"
    );
}

#[test]
fn sdc_appears_at_higher_voltage_than_ce_alone() {
    // §3.4's headline: on this chip SDCs appear before (above) corrected
    // errors; no CE-only band exists at the top of the unsafe region.
    let result = characterize(&["bwaves", "leslie3d"], &[0], 925, 850, 6);
    for s in &result.summaries {
        let mut first_abnormal_effects = None;
        for st in &s.steps {
            if st.region != RegionKind::Safe {
                first_abnormal_effects = Some(st.observed());
                break;
            }
        }
        let effects = first_abnormal_effects.expect("sweep reaches unsafe region");
        let ce_only = effects.contains(Effect::Ce)
            && !effects.contains(Effect::Sdc)
            && !effects.contains(Effect::Ac)
            && !effects.contains(Effect::Sc)
            && !effects.contains(Effect::Ue);
        assert!(
            !ce_only,
            "{}: first abnormal step must not be CE-only (got {})",
            s.program, effects
        );
    }
}

#[test]
fn severity_grows_towards_the_crash_region() {
    let result = characterize(&["bwaves"], &[0], 920, 850, 6);
    let s = result.summary("bwaves", "ref", CoreId::new(0)).unwrap();
    let abnormal: Vec<f64> = s.abnormal_steps().map(|st| st.severity.value()).collect();
    assert!(abnormal.len() >= 3, "need a few unsafe steps");
    let first = abnormal.first().copied().unwrap();
    let last = abnormal.last().copied().unwrap();
    assert!(last > first, "severity must grow with depth: {abnormal:?}");
    // The deepest step is SC-dominated (severity near 16), the first is
    // SDC-dominated (severity around a few units).
    assert!(last >= 10.0, "deepest severity {last}");
    assert!(first <= 8.0, "onset severity {first}");
}

#[test]
fn csv_reports_round_trip_the_run_count() {
    let config = CampaignConfig::builder()
        .benchmarks(["namd"])
        .cores([CoreId::new(4)])
        .iterations(3)
        .start_voltage(Millivolts::new(890))
        .floor_voltage(Millivolts::new(875))
        .seed(1)
        .build()
        .unwrap();
    let outcome = Campaign::new(ChipSpec::new(Corner::Ttt, 0), config).execute();
    let csv = report::runs_csv(&outcome);
    assert_eq!(csv.lines().count() - 1, outcome.runs.len());
    let result = analyze(&outcome, &SeverityWeights::paper());
    let severity_csv = report::severity_csv(&result);
    assert!(severity_csv.lines().count() > 1);
}

#[test]
fn campaign_replays_bit_identically() {
    let a = characterize(&["gromacs"], &[2], 900, 870, 4);
    let b = characterize(&["gromacs"], &[2], 900, 870, 4);
    assert_eq!(a.summaries, b.summaries, "same seed ⇒ same campaign");
}
