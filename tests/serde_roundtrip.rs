//! Serde round-trips of the externally visible result types: campaign
//! configurations and characterization results must survive
//! serialize → deserialize unchanged (they are the artifacts a user would
//! archive from a six-month campaign, §3.2).

use voltmargin::characterize::config::CampaignConfig;
use voltmargin::characterize::regions::{analyze, CharacterizationResult};
use voltmargin::characterize::runner::Campaign;
use voltmargin::characterize::severity::SeverityWeights;
use voltmargin::energy::VminTable;
use voltmargin::sim::{ChipSpec, CoreId, Corner, Millivolts};

fn small_result() -> (CampaignConfig, CharacterizationResult) {
    let cfg = CampaignConfig::builder()
        .benchmarks(["namd"])
        .cores([CoreId::new(4)])
        .iterations(2)
        .start_voltage(Millivolts::new(890))
        .floor_voltage(Millivolts::new(870))
        .seed(0x5E)
        .build()
        .unwrap();
    let outcome = Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg.clone()).execute();
    (cfg, analyze(&outcome, &SeverityWeights::paper()))
}

#[test]
fn campaign_config_roundtrips_through_json() {
    let (cfg, _) = small_result();
    let json = serde_json::to_string(&cfg).expect("config serializes");
    let back: CampaignConfig = serde_json::from_str(&json).expect("config deserializes");
    assert_eq!(cfg, back);
}

#[test]
fn characterization_result_roundtrips_through_json() {
    let (_, result) = small_result();
    let json = serde_json::to_string(&result).expect("result serializes");
    let back: CharacterizationResult = serde_json::from_str(&json).expect("result deserializes");
    assert_eq!(result, back);
    // The archived artifact still answers queries.
    assert_eq!(
        back.summary("namd", "ref", CoreId::new(4))
            .and_then(|s| s.safe_vmin),
        result
            .summary("namd", "ref", CoreId::new(4))
            .and_then(|s| s.safe_vmin),
    );
}

#[test]
fn vmin_table_roundtrips_through_json() {
    let (_, result) = small_result();
    let table = VminTable::from_characterization(&result);
    let json = serde_json::to_string(&table).expect("table serializes");
    let back: VminTable = serde_json::from_str(&json).expect("table deserializes");
    assert_eq!(table, back);
}
