//! Executor conformance: every [`CampaignExecutor`] drives the one
//! shard-partition → per-item staging → reorder-merge → finalize pipeline,
//! so the entire observability surface — JSONL trace, OpenMetrics
//! exposition, profile rollups, CSV reports — must be **byte-identical**
//! across executors. The suite also pins the failure half of the
//! contract: thread-count validation is a typed error, and an executor
//! that violates the canonical delivery order is rejected instead of
//! silently corrupting a stream.

use voltmargin::characterize::cache::SharedCampaignCache;
use voltmargin::characterize::config::CampaignConfig;
use voltmargin::characterize::exec::{
    CacheHandle, CampaignExecutor, ExecContext, ExecError, ItemOutput, ItemTask, SerialExecutor,
    ThreadPoolExecutor,
};
use voltmargin::characterize::profile::PhaseTallies;
use voltmargin::characterize::regions::analyze;
use voltmargin::characterize::report;
use voltmargin::characterize::runner::Campaign;
use voltmargin::characterize::severity::SeverityWeights;
use voltmargin::sim::{ChipSpec, CoreId, Corner, Millivolts};
use voltmargin::trace::{JsonlSink, MetricsRegistry, Sink};

fn campaign() -> Campaign {
    let cfg = CampaignConfig::builder()
        .benchmarks(["bwaves", "namd"])
        .cores([CoreId::new(0), CoreId::new(4)])
        .iterations(2)
        .start_voltage(Millivolts::new(915))
        .floor_voltage(Millivolts::new(885))
        .seed(0x00DD_BA11)
        .profile(true)
        .build()
        .expect("static campaign config is valid");
    Campaign::new(ChipSpec::new(Corner::Ttt, 0), cfg)
}

/// Runs the reference campaign under `exec` with the full observability
/// surface attached: (JSONL trace, OpenMetrics exposition, profile
/// rollups, runs CSV).
fn observe(exec: &dyn CampaignExecutor) -> (String, String, PhaseTallies, String) {
    let mut jsonl = JsonlSink::new(Vec::new());
    let mut metrics = MetricsRegistry::new();
    let mut tallies = PhaseTallies::new();
    let outcome = {
        let mut sinks: [&mut dyn Sink; 1] = [&mut jsonl];
        campaign()
            .run(
                exec,
                ExecContext {
                    sinks: &mut sinks,
                    cache: None,
                    priors: None,
                    metrics: Some(&mut metrics),
                    profile_out: Some(&mut tallies),
                },
            )
            .expect("built-in executors uphold the delivery contract")
    };
    let bytes = jsonl.into_inner().expect("Vec writer cannot fail");
    let trace = String::from_utf8(bytes).expect("JSONL is UTF-8");
    (
        trace,
        metrics.to_openmetrics(),
        tallies,
        report::runs_csv(&outcome),
    )
}

#[test]
fn executors_are_byte_identical_across_the_observability_surface() {
    let reference = observe(&SerialExecutor);
    assert!(!reference.0.is_empty(), "traced run must emit records");
    assert!(
        reference.2.executed_ops() > 0,
        "cold campaign executes machine probes"
    );
    for pool in [
        ThreadPoolExecutor::new(1).expect("1 is a valid thread count"),
        ThreadPoolExecutor::new(4).expect("4 is a valid thread count"),
    ] {
        let threads = pool.threads();
        let under = observe(&pool);
        assert_eq!(
            reference.0, under.0,
            "JSONL trace differs under {threads}-thread pool"
        );
        assert_eq!(
            reference.1, under.1,
            "OpenMetrics exposition differs under {threads}-thread pool"
        );
        assert_eq!(
            reference.2, under.2,
            "profile rollups differ under {threads}-thread pool"
        );
        assert_eq!(
            reference.3, under.3,
            "runs CSV differs under {threads}-thread pool"
        );
    }
}

#[test]
fn pool_thread_counts_are_validated_not_panicked_on() {
    assert!(matches!(
        ThreadPoolExecutor::new(0),
        Err(ExecError::ZeroThreads)
    ));
    let absurd = ThreadPoolExecutor::new(usize::MAX);
    assert!(matches!(absurd, Err(ExecError::TooManyThreads { .. })));
    let msg = ThreadPoolExecutor::new(0).unwrap_err().to_string();
    assert!(msg.contains("at least one"), "actionable message: {msg}");
    // The clamping constructor keeps the historical `execute_parallel`
    // semantics for callers that want best-effort widths.
    assert_eq!(ThreadPoolExecutor::clamped(0).threads(), 1);
}

/// A deliberately non-conformant executor: delivers items in reverse
/// canonical order.
struct ReversedExecutor;

impl CampaignExecutor for ReversedExecutor {
    fn label(&self) -> &'static str {
        "reversed"
    }

    fn run_items(
        &self,
        task: &ItemTask<'_>,
        deliver: &mut dyn FnMut(ItemOutput),
    ) -> Result<(), ExecError> {
        for item in task.items().iter().rev() {
            deliver(task.run_item(item));
        }
        Ok(())
    }
}

/// A deliberately non-conformant executor: delivers nothing at all.
struct SilentExecutor;

impl CampaignExecutor for SilentExecutor {
    fn label(&self) -> &'static str {
        "silent"
    }

    fn run_items(
        &self,
        _task: &ItemTask<'_>,
        _deliver: &mut dyn FnMut(ItemOutput),
    ) -> Result<(), ExecError> {
        Ok(())
    }
}

#[test]
fn delivery_contract_violations_are_typed_errors() {
    let err = campaign()
        .run(&ReversedExecutor, ExecContext::new())
        .expect_err("reverse delivery must be rejected");
    assert!(
        matches!(
            err,
            ExecError::OutOfOrderDelivery {
                expected: 0,
                delivered: 3
            }
        ),
        "{err}"
    );

    let err = campaign()
        .run(&SilentExecutor, ExecContext::new())
        .expect_err("dropped items must be rejected");
    assert!(
        matches!(
            err,
            ExecError::IncompleteDelivery {
                delivered: 0,
                expected: 4
            }
        ),
        "{err}"
    );
}

#[test]
fn shared_cache_serves_concurrent_campaigns_and_saves_deterministically() {
    // Two identical campaigns race against one shared store; each runs
    // from its own immutable snapshot, appends what it executed, and
    // publishes at the end. However the appends interleave, the published
    // store must serialize exactly like the cache an owned, serial
    // campaign would have produced.
    let shared = SharedCampaignCache::new();
    let pool = ThreadPoolExecutor::new(2).expect("2 is a valid thread count");
    std::thread::scope(|s| {
        for _ in 0..2 {
            let shared = &shared;
            let pool = &pool;
            s.spawn(move || {
                campaign()
                    .run(
                        pool,
                        ExecContext {
                            cache: Some(CacheHandle::Shared(shared)),
                            ..ExecContext::new()
                        },
                    )
                    .expect("built-in executors uphold the delivery contract");
            });
        }
    });

    let mut owned = voltmargin::characterize::cache::CampaignCache::new();
    campaign()
        .run(
            &SerialExecutor,
            ExecContext {
                cache: Some(CacheHandle::Owned(&mut owned)),
                ..ExecContext::new()
            },
        )
        .expect("built-in executors uphold the delivery contract");
    assert!(!owned.is_empty(), "cold campaign populates its cache");
    assert_eq!(
        shared.to_jsonl(),
        owned.to_jsonl(),
        "shared store must serialize independently of append interleaving"
    );

    // And the on-disk artifact is the same bytes as the serialization.
    let path = std::env::temp_dir().join(format!("voltmargin-shared-{}.jsonl", std::process::id()));
    shared.save(&path).expect("cache saves");
    assert_eq!(
        std::fs::read_to_string(&path).expect("cache file reads"),
        owned.to_jsonl()
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn fully_warm_shared_cache_executes_zero_machine_probes() {
    let shared = SharedCampaignCache::new();
    campaign()
        .run(
            &SerialExecutor,
            ExecContext {
                cache: Some(CacheHandle::Shared(&shared)),
                ..ExecContext::new()
            },
        )
        .expect("built-in executors uphold the delivery contract");

    let mut tallies = PhaseTallies::new();
    let warm = campaign()
        .run(
            &ThreadPoolExecutor::new(4).expect("4 is a valid thread count"),
            ExecContext {
                cache: Some(CacheHandle::Shared(&shared)),
                profile_out: Some(&mut tallies),
                ..ExecContext::new()
            },
        )
        .expect("built-in executors uphold the delivery contract");
    assert_eq!(
        tallies.executed_ops(),
        0,
        "a fully warm shared cache must replay without machine probes"
    );

    // Replay is exact: outcome and analysis match a cold execution.
    let cold = campaign().execute();
    assert_eq!(report::runs_csv(&cold), report::runs_csv(&warm));
    let weights = SeverityWeights::paper();
    assert_eq!(
        report::regions_csv(&analyze(&cold, &weights)),
        report::regions_csv(&analyze(&warm, &weights))
    );
}
