//! Integration checks of §3.2 (divided clock regime) and §3.4 (self-tests).

use voltmargin::characterize::config::CampaignConfig;
use voltmargin::characterize::regions::{analyze, RegionKind};
use voltmargin::characterize::runner::Campaign;
use voltmargin::characterize::severity::SeverityWeights;
use voltmargin::sim::{ChipSpec, CoreId, Corner, Megahertz, Millivolts};

#[test]
fn divided_regime_is_uniform_760_and_crash_only() {
    let config = CampaignConfig::builder()
        .benchmarks(["bwaves", "mcf"])
        .cores([CoreId::new(0), CoreId::new(4)])
        .iterations(5)
        .target_frequency(Megahertz::new(1200))
        .start_voltage(Millivolts::new(780))
        .floor_voltage(Millivolts::new(745))
        .seed(0x0D10)
        .build()
        .unwrap();
    let outcome = Campaign::new(ChipSpec::new(Corner::Ttt, 0), config).execute_parallel(4);
    let result = analyze(&outcome, &SeverityWeights::paper());
    assert_eq!(result.summaries.len(), 4);
    for s in &result.summaries {
        // §3.2: uniform Vmin at 760 mV for every benchmark and core…
        assert_eq!(
            s.safe_vmin,
            Some(Millivolts::new(760)),
            "{} core{}",
            s.program,
            s.core.index()
        );
        // …and nothing but system crashes below it.
        for st in &s.steps {
            assert_ne!(
                st.region,
                RegionKind::Unsafe,
                "{} core{} at {}mV: divided regime must be crash-only",
                s.program,
                s.core.index(),
                st.mv
            );
        }
        assert!(s.highest_crash.is_some(), "sweep reaches the crash region");
    }
}

#[test]
fn intermediate_frequencies_behave_like_their_regime() {
    // §3.2: >1.2 GHz behaves like 2.4 GHz. At 1.8 GHz a benchmark keeps its
    // full-speed Vmin (far above 760 mV).
    let config = CampaignConfig::builder()
        .benchmarks(["milc"])
        .cores([CoreId::new(4)])
        .iterations(4)
        .target_frequency(Megahertz::new(1800))
        .start_voltage(Millivolts::new(920))
        .floor_voltage(Millivolts::new(855))
        .seed(0x0180)
        .build()
        .unwrap();
    let outcome = Campaign::new(ChipSpec::new(Corner::Ttt, 0), config).execute();
    let result = analyze(&outcome, &SeverityWeights::paper());
    let vmin = result.summaries[0].safe_vmin.expect("vmin measurable");
    assert!(
        vmin.get() >= 860,
        "1.8 GHz must show full-speed margins, got {vmin}"
    );
}

#[test]
fn fpu_selftest_fails_well_above_the_cache_selftest() {
    let config = CampaignConfig::builder()
        .benchmarks(["selftest-fpu", "selftest-l2"])
        .cores([CoreId::new(4)])
        .iterations(6)
        .start_voltage(Millivolts::new(935))
        .floor_voltage(Millivolts::new(840))
        .seed(0x5E1F)
        .build()
        .unwrap();
    let outcome = Campaign::new(ChipSpec::new(Corner::Ttt, 0), config).execute_parallel(2);
    let result = analyze(&outcome, &SeverityWeights::paper());
    let fpu = result
        .summary("selftest-fpu", "ref", CoreId::new(4))
        .and_then(|s| s.safe_vmin)
        .expect("fpu vmin");
    let cache = result
        .summary("selftest-l2", "ref", CoreId::new(4))
        .and_then(|s| s.safe_vmin)
        .expect("cache vmin");
    assert!(
        fpu > cache,
        "§3.4: the FPU test ({fpu}) must lose margin above the cache test ({cache})"
    );
}
