//! Integration of characterization → VminTable → scheduler/governor (§5):
//! the measured Figure 9 behaviour, end to end.

use voltmargin::characterize::config::CampaignConfig;
use voltmargin::characterize::regions::analyze;
use voltmargin::characterize::runner::Campaign;
use voltmargin::characterize::severity::SeverityWeights;
use voltmargin::energy::schedule::{binding_vmin, Assignment, Scheduler};
use voltmargin::energy::tradeoff::{pareto_curve, DIVIDED_SAFE};
use voltmargin::energy::{Governor, Policy, VminTable};
use voltmargin::sim::{ChipSpec, CoreId, Corner, Millivolts};

fn measured_table() -> VminTable {
    // The characterization is expensive; share it across the tests in this
    // binary.
    static TABLE: std::sync::OnceLock<VminTable> = std::sync::OnceLock::new();
    TABLE.get_or_init(build_table).clone()
}

fn build_table() -> VminTable {
    let config = CampaignConfig::builder()
        .benchmarks([
            "bwaves", "leslie3d", "milc", "namd", "mcf", "gromacs", "dealII", "soplex",
        ])
        .cores(CoreId::all())
        .iterations(3)
        .start_voltage(Millivolts::new(935))
        .floor_voltage(Millivolts::new(850))
        .seed(0x90_0D)
        .build()
        .unwrap();
    let outcome = Campaign::new(ChipSpec::new(Corner::Ttt, 0), config).execute_parallel(8);
    VminTable::from_characterization(&analyze(&outcome, &SeverityWeights::paper()))
}

#[test]
fn measured_staircase_matches_the_paper_shape() {
    let table = measured_table();
    // A couple of (benchmark, core) pairs may lack a measurable Vmin when
    // an iteration misbehaves at the sweep start; near-complete is enough.
    assert!(
        table.len() >= 60,
        "8 benchmarks × 8 cores, got {}",
        table.len()
    );

    // The paper's in-order multiprogram workload.
    let assignments: Vec<Assignment> = [
        "bwaves", "leslie3d", "milc", "namd", "mcf", "gromacs", "dealII", "soplex",
    ]
    .iter()
    .enumerate()
    .map(|(i, w)| Assignment {
        core: CoreId::new(i as u8),
        workload: (*w).to_owned(),
    })
    .collect();

    let points = pareto_curve(&assignments, &table).expect("complete table");
    assert_eq!(points.len(), 6, "nominal + 4 full-speed levels + divided");

    // Voltage descends, savings ascend, performance steps down by 12.5%.
    for w in points.windows(2) {
        assert!(w[1].voltage <= w[0].voltage);
        assert!(w[1].energy_savings >= w[0].energy_savings - 1e-12);
        assert!(w[1].relative_performance <= w[0].relative_performance);
    }
    assert_eq!(points.last().unwrap().voltage, DIVIDED_SAFE);
    let final_savings = points.last().unwrap().energy_savings;
    assert!(
        (final_savings - 0.699).abs() < 0.002,
        "divided floor savings {final_savings}"
    );

    // The no-loss point sits in the measured Vmin band (≈900–930 mV on the
    // sensitive PMDs) and saves ≥10%.
    let no_loss = &points[1];
    assert!(no_loss.relative_performance >= 1.0);
    assert!(
        (890..=935).contains(&no_loss.voltage.get()),
        "{}",
        no_loss.voltage
    );
    assert!(no_loss.energy_savings >= 0.08);

    // The paper's ~25% loss point saves more than the no-loss point by a
    // wide margin (38.8% vs 12.8% in the paper).
    let quarter = points
        .iter()
        .filter(|p| p.relative_performance >= 0.75 - 1e-9)
        .map(|p| p.energy_savings)
        .fold(0.0f64, f64::max);
    assert!(quarter > no_loss.energy_savings + 0.1);
}

#[test]
fn robust_first_scheduling_never_hurts() {
    let table = measured_table();
    let workloads: Vec<String> = ["bwaves", "leslie3d", "milc", "namd"]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    let scheduler = Scheduler::new();
    let smart = scheduler
        .assign_robust_first(&workloads, &table)
        .expect("complete table");
    let naive = scheduler.assign_in_order(&workloads);
    let (Some(smart_v), Some(naive_v)) =
        (binding_vmin(&smart, &table), binding_vmin(&naive, &table))
    else {
        panic!("both schedules are resolvable");
    };
    assert!(
        smart_v <= naive_v,
        "robust-first ({smart_v}) must not bind higher than in-order ({naive_v})"
    );
}

#[test]
fn governor_respects_performance_budgets() {
    let table = measured_table();
    let assignments: Vec<Assignment> = ["bwaves", "milc", "namd", "mcf"]
        .iter()
        .enumerate()
        .map(|(i, w)| Assignment {
            core: CoreId::new((i * 2) as u8),
            workload: (*w).to_owned(),
        })
        .collect();
    let mut last_savings = -1.0;
    for loss in [0.0, 0.25, 0.5] {
        let governor = Governor::new(
            table.clone(),
            Policy {
                guardband_steps: 0,
                max_performance_loss: loss,
            },
        );
        let d = governor.decide(&assignments).expect("complete table");
        assert!(
            d.relative_performance + 1e-9 >= 1.0 - loss,
            "budget violated at loss {loss}"
        );
        assert!(
            d.energy_savings >= last_savings - 1e-9,
            "looser budgets must not reduce savings"
        );
        last_savings = d.energy_savings;
    }
}
